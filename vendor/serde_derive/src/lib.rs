//! Offline shim for `serde_derive`: the workspace derives
//! `Serialize`/`Deserialize` on wire/report types for forward
//! compatibility but never actually serializes through serde (reports are
//! hand-rendered). The derives therefore expand to nothing; `#[serde(...)]`
//! helper attributes are accepted and ignored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
