//! Offline shim for the subset of `parking_lot` 0.12 used by this
//! workspace: `Mutex`/`RwLock` with the non-poisoning `lock()`/`read()`/
//! `write()` API, implemented over `std::sync`. A poisoned std lock (a
//! panicked holder) is recovered rather than propagated, matching
//! parking_lot's semantics.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
