//! Deterministic RNG and per-block configuration for the shim runner.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Upstream defaults to 256; the simulation-heavy suites here get
        // good coverage at a quarter of that in a fraction of the time.
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 seeded from a test's name: the same test always sees the
/// same input sequence, on every machine and every run.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        // FNV-1a over the fully qualified test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_stable_and_distinct() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        let mut c = TestRng::from_name("x::z");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
