//! Offline shim for the subset of `proptest` 1.x this workspace uses.
//!
//! The registry is unreachable from the build environment, so the
//! workspace vendors a std-only mini property-testing engine with the same
//! surface syntax: the `proptest!` macro, `any::<T>()`, integer-range and
//! tuple strategies, `prop_map`, `prop_oneof!`, `proptest::collection::vec`,
//! `prop::sample::Index`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports the panic message only.
//! - **Deterministic by construction.** Each test's RNG is seeded from the
//!   test's module path and name, so a failure reproduces on every run —
//!   the property lib·erate itself needs from its measurement pipeline
//!   (and what the `liberate-lint` determinism rule enforces elsewhere).
//! - **Default cases = 64** (upstream 256), keeping the packet-level
//!   simulation suites fast; override per-block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`.

pub mod strategy;

pub mod string;

pub mod arbitrary;

pub mod collection;

pub mod sample;

pub mod test_runner;

pub mod prelude {
    /// Upstream's prelude aliases the crate itself as `prop`, enabling
    /// `prop::sample::Index` and friends.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define a block of property tests. Each `fn name(pat in strategy, ...)`
/// expands to a `#[test]` that generates `cases` inputs from a
/// deterministic per-test RNG and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}

/// Upstream returns an `Err` to the runner; without shrinking a plain
/// `assert!` carries the same information.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Choose uniformly among the given strategies (upstream also supports
/// weighted arms; the workspace only uses the unweighted form).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_compose() {
        let mut rng = crate::test_runner::TestRng::from_name("compose");
        let strat = crate::collection::vec((0u64..100, 5usize..10), 1..4);
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((1..4).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 100);
                assert!((5..10).contains(&b));
            }
        }
    }

    #[test]
    fn oneof_and_map() {
        let mut rng = crate::test_runner::TestRng::from_name("oneof");
        let strat = prop_oneof![Just(6u8), Just(17u8)].prop_map(|p| p as u16);
        for _ in 0..50 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v == 6 || v == 17);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            bytes in crate::collection::vec(any::<u8>(), 0..16),
            which in 0usize..3,
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(bytes.len() < 16);
            prop_assert!(which < 3);
            let _ = idx.index(bytes.len() + 1);
        }
    }
}
