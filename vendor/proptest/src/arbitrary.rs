//! `any::<T>()` and the `Arbitrary` impls the workspace needs.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy producing arbitrary values of `T`.
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),* $(,)?) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_cover_domain_edges_eventually() {
        let mut rng = TestRng::from_name("any");
        let mut small = false;
        let mut large = false;
        for _ in 0..200 {
            let v = u8::arbitrary(&mut rng);
            small |= v < 64;
            large |= v >= 192;
        }
        assert!(small && large);
    }
}
