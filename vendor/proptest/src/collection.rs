//! `proptest::collection::vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Acceptable length specifications for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Exclusive.
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            min: *r.start(),
            max: r.end().saturating_add(1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Generate a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    let size = size.into();
    assert!(size.min < size.max, "empty vec size range");
    VecStrategy { elem, size }
}

#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_span_the_range() {
        let mut rng = TestRng::from_name("vec");
        let strat = vec(any::<u8>(), 0..4);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[strat.generate(&mut rng).len()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
