//! String strategies from regex-like patterns.
//!
//! Upstream treats any `&str` as a full regex generator. The shim supports
//! the subset the workspace's patterns use: literal characters, character
//! classes `[a-z0-9_.-]`, non-capturing sequence groups `(...)`, and the
//! quantifiers `{m,n}`, `{m}`, `*`, `+`, `?` applied to the preceding
//! element. Unsupported syntax (alternation, anchors, backreferences)
//! panics at generation time so a new pattern fails loudly rather than
//! producing wrong data.

use std::iter::Peekable;
use std::str::Chars;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    /// One char drawn from `choices`, repeated per the quantifier.
    Class {
        choices: Vec<char>,
        min: u32,
        max: u32,
    },
    /// A sub-sequence repeated per the quantifier.
    Group {
        nodes: Vec<Node>,
        min: u32,
        max: u32,
    },
}

fn parse_class(chars: &mut Peekable<Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let Some(c) = chars.next() else {
            panic!("unterminated character class in pattern {pattern:?}");
        };
        match c {
            ']' => break,
            '\\' => {
                let c = chars.next().expect("dangling escape");
                set.push(c);
                prev = Some(c);
            }
            '-' => {
                // A range if flanked; a literal '-' otherwise.
                match (prev, chars.peek()) {
                    (Some(lo), Some(&hi)) if hi != ']' => {
                        chars.next();
                        assert!(lo <= hi, "bad range in pattern {pattern:?}");
                        // `lo` is already in the set.
                        let mut cur = lo;
                        while cur < hi {
                            cur =
                                char::from_u32(cur as u32 + 1).expect("range crosses invalid char");
                            set.push(cur);
                        }
                        prev = None;
                    }
                    _ => {
                        set.push('-');
                        prev = Some('-');
                    }
                }
            }
            c => {
                set.push(c);
                prev = Some(c);
            }
        }
    }
    assert!(
        !set.is_empty(),
        "empty character class in pattern {pattern:?}"
    );
    set
}

fn parse_quantifier(chars: &mut Peekable<Chars<'_>>, pattern: &str) -> (u32, u32) {
    let (min, max) = match chars.peek() {
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad quantifier"),
                    n.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let m: u32 = spec.trim().parse().expect("bad quantifier");
                    (m, m)
                }
            }
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        _ => (1, 1),
    };
    assert!(min <= max, "bad quantifier in pattern {pattern:?}");
    (min, max)
}

/// Parse a sequence until end of input or an unmatched `)` (consumed by
/// the caller for groups).
fn parse_seq(chars: &mut Peekable<Chars<'_>>, pattern: &str, in_group: bool) -> Vec<Node> {
    let mut nodes = Vec::new();
    while let Some(&c) = chars.peek() {
        if c == ')' {
            assert!(in_group, "unmatched ')' in pattern {pattern:?}");
            return nodes;
        }
        chars.next();
        let node = match c {
            '[' => {
                let choices = parse_class(chars, pattern);
                let (min, max) = parse_quantifier(chars, pattern);
                Node::Class { choices, min, max }
            }
            '(' => {
                let inner = parse_seq(chars, pattern, true);
                assert_eq!(chars.next(), Some(')'), "unterminated group in {pattern:?}");
                let (min, max) = parse_quantifier(chars, pattern);
                Node::Group {
                    nodes: inner,
                    min,
                    max,
                }
            }
            '\\' => {
                let c = chars.next().expect("dangling escape");
                let (min, max) = parse_quantifier(chars, pattern);
                Node::Class {
                    choices: vec![c],
                    min,
                    max,
                }
            }
            '|' | '^' | '$' => {
                panic!("unsupported regex syntax {c:?} in shim pattern {pattern:?}")
            }
            c => {
                let (min, max) = parse_quantifier(chars, pattern);
                Node::Class {
                    choices: vec![c],
                    min,
                    max,
                }
            }
        };
        nodes.push(node);
    }
    assert!(!in_group, "unterminated group in pattern {pattern:?}");
    nodes
}

fn generate_seq(nodes: &[Node], rng: &mut TestRng, out: &mut String) {
    for node in nodes {
        match node {
            Node::Class { choices, min, max } => {
                let n = min + rng.below(u64::from(max - min) + 1) as u32;
                for _ in 0..n {
                    out.push(choices[rng.below(choices.len() as u64) as usize]);
                }
            }
            Node::Group { nodes, min, max } => {
                let n = min + rng.below(u64::from(max - min) + 1) as u32;
                for _ in 0..n {
                    generate_seq(nodes, rng, out);
                }
            }
        }
    }
}

impl<'a> Strategy for &'a str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let nodes = parse_seq(&mut self.chars().peekable(), self, false);
        let mut out = String::new();
        generate_seq(&nodes, rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_patterns_generate_in_class() {
        let mut rng = TestRng::from_name("string");
        for _ in 0..200 {
            let p = Strategy::generate(&"/[a-z0-9/._-]{0,40}", &mut rng);
            assert!(p.starts_with('/'));
            assert!(p.len() <= 41);
            assert!(p[1..]
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || "/._-".contains(c)));

            let ua = Strategy::generate(&"[a-zA-Z0-9/. -]{1,30}", &mut rng);
            assert!((1..=30).contains(&ua.len()));
            assert!(ua
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || "/. -".contains(c)));
        }
    }

    #[test]
    fn hostname_pattern_with_groups() {
        let mut rng = TestRng::from_name("host");
        for _ in 0..200 {
            let host = Strategy::generate(&"[a-z]{1,12}(\\.[a-z]{2,10}){1,3}", &mut rng);
            let labels: Vec<&str> = host.split('.').collect();
            assert!((2..=4).contains(&labels.len()), "{host}");
            assert!(labels
                .iter()
                .all(|l| !l.is_empty() && l.chars().all(|c| c.is_ascii_lowercase())));
        }
    }

    #[test]
    fn literals_and_simple_quantifiers() {
        let mut rng = TestRng::from_name("lit");
        assert_eq!(Strategy::generate(&"abc", &mut rng), "abc");
        let v = Strategy::generate(&"x[01]{3}", &mut rng);
        assert_eq!(v.len(), 4);
        assert!(v.starts_with('x'));
    }
}
