//! The `Strategy` trait and the combinators the workspace uses: integer
//! ranges, tuples, `Just`, `prop_map`, and `prop_oneof!` unions.

use crate::test_runner::TestRng;

/// A recipe for generating values. Upstream separates strategies from
/// value trees to support shrinking; the shim generates values directly.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `strategy.prop_map(f)`.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.arms.len() as u64) as usize;
        self.arms[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return start.wrapping_add(rng.next_u64() as $ty);
                }
                start.wrapping_add(rng.below(span) as $ty)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategy_bounds() {
        let mut rng = TestRng::from_name("range");
        for _ in 0..500 {
            let v = (10u16..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let mut rng = TestRng::from_name("union");
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
