//! `prop::sample::Index` — an arbitrary index scalable to any collection.

use crate::arbitrary::Arbitrary;
use crate::test_runner::TestRng;

/// Raw entropy that callers project onto a concrete collection length.
#[derive(Debug, Clone, Copy)]
pub struct Index(u64);

impl Index {
    /// Project onto `[0, size)`. Panics if `size == 0`, as upstream does.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on empty collection");
        (self.0 % size as u64) as usize
    }
}

impl Arbitrary for Index {
    fn arbitrary(rng: &mut TestRng) -> Index {
        Index(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_in_bounds() {
        let mut rng = TestRng::from_name("index");
        for size in 1..50usize {
            let idx = Index::arbitrary(&mut rng);
            assert!(idx.index(size) < size);
        }
    }
}
