//! Offline shim for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a std-only stand-in. It provides a deterministic, seedable generator
//! (`rngs::StdRng`, SplitMix64 under the hood) and the `Rng`/`SeedableRng`
//! trait surface the crates call: `gen_range` over integer ranges,
//! `fill` over byte slices, and `seed_from_u64`.
//!
//! Determinism is a feature here, not a bug: lib·erate's measurement
//! pipeline requires reproducible replays (same seed ⇒ same bytes), and
//! the `liberate-lint` determinism rule forbids ambient entropy sources in
//! simulation code outright. This shim deliberately exposes no
//! `thread_rng`/`from_entropy` constructors.

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A range that can be sampled uniformly. Mirrors
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide);
                let offset = rng.next_u64() as $wide % span;
                self.start.wrapping_add(offset as $ty)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                if span == 0 {
                    // Full-domain range: every value is fair game.
                    return start.wrapping_add(rng.next_u64() as $ty);
                }
                let offset = rng.next_u64() as $wide % span;
                start.wrapping_add(offset as $ty)
            }
        }
    )*};
}

impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64,
);

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Fill a byte slice with random data (the only `Fill` target the
    /// workspace uses).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds. Only `seed_from_u64` is exposed: every RNG in
/// this workspace must be explicitly and reproducibly seeded.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64). Not the upstream
    /// ChaCha12 `StdRng`, but statistically fine for traffic synthesis and
    /// fully reproducible from its seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u8..20);
            assert!((10..20).contains(&v));
            let s = rng.gen_range(-50_000i64..50_000);
            assert!((-50_000..50_000).contains(&s));
            let w = rng.gen_range(1u8..=255);
            assert!(w >= 1);
        }
    }

    #[test]
    fn fill_is_deterministic_and_covers_tail() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let mut x = vec![0u8; 13];
        let mut y = vec![0u8; 13];
        a.fill(&mut x[..]);
        b.fill(&mut y[..]);
        assert_eq!(x, y);
        assert!(x.iter().any(|&v| v != 0));
    }
}
