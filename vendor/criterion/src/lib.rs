//! Offline shim for the subset of `criterion` 0.5 used by the
//! `liberate-bench` micro-benchmarks: `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! It is a real (if simple) harness: each benchmark is warmed up, then
//! timed over a fixed batch of iterations, and a single mean-per-iteration
//! line is printed. No statistics, plots, or saved baselines.

use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Per-iteration payload hint; echoed as derived throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
            sample_iters: DEFAULT_SAMPLE_ITERS,
        }
    }

    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_one(&id, None, DEFAULT_SAMPLE_ITERS, f);
    }
}

const DEFAULT_SAMPLE_ITERS: u64 = 100;

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_iters: u64,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Upstream's `sample_size` counts statistical samples; here it scales
    /// the timed iteration batch.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_iters = (n as u64).max(10);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.throughput, self.sample_iters, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up round, untimed.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(id: &str, throughput: Option<Throughput>, iters: u64, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter_ns = b.elapsed.as_nanos() as f64 / iters.max(1) as f64;
    match throughput {
        Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
            let mbps = n as f64 / per_iter_ns * 953.674_316; // B/ns -> MiB/s
            println!("bench {id}: {per_iter_ns:.1} ns/iter, {mbps:.1} MiB/s");
        }
        Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
            let meps = n as f64 / per_iter_ns * 1000.0;
            println!("bench {id}: {per_iter_ns:.1} ns/iter, {meps:.2} Melem/s");
        }
        _ => println!("bench {id}: {per_iter_ns:.1} ns/iter"),
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_routines() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("shim");
            g.throughput(Throughput::Bytes(8)).sample_size(20);
            g.bench_function("count", |b| b.iter(|| calls += 1));
            g.finish();
        }
        // warm-up + timed batch
        assert!(calls >= 21);
    }
}
