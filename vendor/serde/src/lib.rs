//! Offline shim for the slice of `serde` this workspace touches. Types
//! derive `Serialize`/`Deserialize` but nothing serializes through serde
//! yet, so the traits are markers and the derives (re-exported from the
//! sibling `serde_derive` shim) expand to nothing. If a future PR needs
//! real serialization, replace `vendor/serde` with the upstream crate and
//! nothing else has to change.

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization marker, mirroring serde's blanket rule.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
