//! Deployment test battery for the pool-backed proxy (§4.4 at scale).
//!
//! Pins the tentpole contracts of `DeploymentPool`:
//!
//! - a classifier change seen by N workers in one wave triggers exactly
//!   ONE re-characterization, not N;
//! - the published generation is monotonic and snapshots are never torn
//!   (a reader can never pair generation g with generation g-1's
//!   technique);
//! - a burned published technique degrades onto the fallback ladder in
//!   ladder order;
//! - the adapted technique at 1, 2, and 4 workers is identical to what
//!   the sequential `LiberateProxy` re-learns from the same rule flip;
//! - same seed, same worker count ⇒ byte-identical merged journals.
//!
//! The scripted classifier change used throughout: the testbed's "web"
//! rule (keyword `example.org`, a decoy class with a no-op policy) is
//! re-classed to "video", so the decoy request the low-TTL inert
//! technique leans on suddenly draws the video throttle. That burns the
//! initial technique (`InertLowTtl`) while leaving the video keyword
//! fields themselves intact — a genuine rule-set swap, not a policy
//! tweak.

use std::sync::Arc;

use liberate::prelude::*;
use liberate_obs::{to_jsonl, validate_jsonl, Counter, Journal};
use liberate_traces::apps;

fn trace() -> liberate_traces::recorded::RecordedTrace {
    apps::amazon_prime_http(1_200_000)
}

/// The scripted rule flip: re-class the testbed's decoy "web" rule as
/// "video" so decoy traffic draws the throttle.
fn flipped_rules(rules: &liberate_dpi::rules::RuleSet) -> liberate_dpi::rules::RuleSet {
    let mut rules = rules.clone();
    for r in &mut rules.rules {
        if r.id == "web" {
            r.class = "video".to_string();
        }
    }
    rules
}

fn testbed_pool(workers: usize) -> DeploymentPool {
    DeploymentPool::new(
        EnvKind::Testbed,
        OsKind::Linux,
        LiberateConfig::default(),
        workers,
        CharacterizeOpts::default(),
    )
}

/// (a) N workers observing the same classifier flip in one wave cause
/// exactly one re-characterization, and stale change reports from the
/// flip wave never trigger a second one.
#[test]
fn one_recharacterization_per_flip_despite_many_witnesses() {
    let trace = trace();
    let workers = 4;
    let users = workers * 2;
    let mut pool = testbed_pool(workers);

    let wave1 = pool.run_flows(&trace, users).expect("initial wave");
    assert_eq!(pool.characterizations, 1, "initial learn only");
    assert_eq!(wave1.generation, 1);
    assert!(wave1.all_evaded());
    assert_eq!(wave1.change_signals(), 0);

    let rules = {
        let dpi = pool.pool_mut().session_mut(0).env.dpi_mut().unwrap();
        flipped_rules(&dpi.config.rules)
    };
    pool.hot_swap_rules(&rules);

    let wave2 = pool.run_flows(&trace, users).expect("flip wave");
    assert_eq!(
        wave2.change_signals(),
        users,
        "every user's flow should witness the burned technique"
    );
    assert!(wave2.recharacterized);
    assert_eq!(
        pool.characterizations, 2,
        "eight change signals, ONE re-characterization"
    );
    assert_eq!(wave2.generation, 2, "one publish per acknowledged change");
    // Every report in the wave read the pre-flip generation.
    assert!(wave2.reports.iter().all(|r| r.generation == 1));

    // The next wave runs on the refreshed technique: no residual change
    // signals, no further re-learning.
    let wave3 = pool.run_flows(&trace, users).expect("recovery wave");
    assert!(wave3.all_evaded());
    assert_eq!(wave3.change_signals(), 0);
    assert!(!wave3.recharacterized);
    assert_eq!(pool.characterizations, 2);
    assert_eq!(wave3.generation, 2);

    // The journal agrees with the driver's own accounting.
    let merged = Arc::new(Journal::new());
    pool.merge_journals_into(&merged);
    assert_eq!(merged.metrics.get(Counter::RecharacterizeWaves), 2);
    assert_eq!(
        merged.metrics.get(Counter::DeployFlows),
        (users * 3) as u64,
        "every flow of every wave runs inside a Deploy span"
    );
    assert_eq!(
        merged.metrics.get(Counter::RuleSwaps),
        workers as u64,
        "the scripted flip touches each worker's device once"
    );
}

/// (b) Generation monotonicity and torn-read freedom: concurrent readers
/// hammering `PublishedState::snapshot` while a publisher installs new
/// techniques must always see a generation that never goes backwards and
/// a technique that matches the generation it is paired with.
#[test]
fn published_state_is_monotonic_and_never_torn() {
    // Borrow a real ActiveEvasion from a tiny pool run, then re-publish
    // mutated clones whose technique encodes the expected generation.
    let trace = trace();
    let mut pool = testbed_pool(1);
    pool.run_flows(&trace, 1).expect("initial wave");
    let base = pool
        .published()
        .snapshot()
        .evasion
        .expect("initial technique published");

    let state = PublishedState::new();
    assert_eq!(state.generation(), 0);
    assert!(state.snapshot().evasion.is_none());

    const PUBLISHES: usize = 500;
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let state = state.clone();
            scope.spawn(move || {
                let mut last = 0u64;
                loop {
                    let snap = state.snapshot();
                    assert!(
                        snap.generation >= last,
                        "generation went backwards: {} -> {}",
                        last,
                        snap.generation
                    );
                    last = snap.generation;
                    match snap.evasion {
                        None => assert_eq!(snap.generation, 0, "technique without a generation"),
                        Some(e) => assert_eq!(
                            e.technique.effective,
                            Technique::DummyPrefixData {
                                bytes: snap.generation as usize
                            },
                            "torn read: generation {} paired with {:?}",
                            snap.generation,
                            e.technique.effective
                        ),
                    }
                    if last >= PUBLISHES as u64 {
                        break;
                    }
                }
            });
        }

        for i in 1..=PUBLISHES {
            let mut e = (*base).clone();
            e.technique.effective = Technique::DummyPrefixData { bytes: i };
            let generation = state.publish(Arc::new(e));
            assert_eq!(generation, i as u64, "publish stamps are sequential");
        }
    });
    assert_eq!(state.generation(), PUBLISHES as u64);
}

/// (c) Mid-wave degradation walks the fallback ladder in order: a burned
/// first rung is skipped, the first surviving rung catches the flow, and
/// reordering the ladder changes which rung parks the traffic.
#[test]
fn fallback_ladder_is_walked_in_order() {
    let trace = trace();
    // `InertLowTtl` is the initial published technique, which the flip
    // burns; `InertTcpInvalidFlags` survives the flip (it is what the
    // re-learn converges to — see adapted-parity test below).
    let burned = Technique::InertLowTtl;
    let survivor = Technique::InertTcpInvalidFlags;

    for (ladder, expect_parked) in [
        (vec![burned.clone(), survivor.clone()], survivor.clone()),
        (vec![survivor.clone(), burned.clone()], survivor.clone()),
    ] {
        let first_rung = ladder[0].clone();
        let mut pool = testbed_pool(2).with_fallback_ladder(ladder);
        pool.run_flows(&trace, 4).expect("initial wave");
        assert_eq!(pool.active_technique().unwrap(), burned);

        let rules = {
            let dpi = pool.pool_mut().session_mut(0).env.dpi_mut().unwrap();
            flipped_rules(&dpi.config.rules)
        };
        pool.hot_swap_rules(&rules);
        let wave = pool.run_flows(&trace, 4).expect("flip wave");

        for r in &wave.reports {
            assert!(r.change_signal, "published technique should burn");
            assert_eq!(
                r.parked_on_fallback.as_ref(),
                Some(&expect_parked),
                "ladder {first_rung:?}-first should park on {expect_parked:?}"
            );
            assert!(r.evaded, "parked traffic keeps moving");
            assert_eq!(r.technique.as_ref(), Some(&expect_parked));
        }

        let merged = Arc::new(Journal::new());
        pool.merge_journals_into(&merged);
        assert_eq!(
            merged.metrics.get(Counter::FallbackParks),
            wave.reports.len() as u64,
            "each degraded flow records one park"
        );
    }
}

/// (c') A ladder whose every rung is burned parks nothing: the flow
/// reports the change but does not evade until the re-learn lands.
#[test]
fn exhausted_ladder_parks_nothing() {
    let trace = trace();
    let mut pool = testbed_pool(1).with_fallback_ladder(vec![Technique::InertLowTtl]);
    pool.run_flows(&trace, 2).expect("initial wave");

    let rules = {
        let dpi = pool.pool_mut().session_mut(0).env.dpi_mut().unwrap();
        flipped_rules(&dpi.config.rules)
    };
    pool.hot_swap_rules(&rules);
    let wave = pool.run_flows(&trace, 2).expect("flip wave");
    for r in &wave.reports {
        assert!(r.change_signal);
        assert!(r.parked_on_fallback.is_none(), "sole rung is burned too");
        assert!(!r.evaded);
    }
    // The re-learn still lands, so the next wave evades without parking.
    let recovery = pool.run_flows(&trace, 2).expect("recovery wave");
    assert!(recovery.all_evaded());
    assert_eq!(recovery.change_signals(), 0);
}

/// (d) Worker-count parity: after the same scripted flip, the pool at 1,
/// 2, and 4 workers publishes exactly the technique the sequential
/// `LiberateProxy` adapts to — fanning deployment out never changes what
/// is deployed.
#[test]
fn adapted_technique_matches_sequential_proxy_at_1_2_4_workers() {
    let trace = trace();

    // Sequential baseline.
    let session = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
    let mut proxy = LiberateProxy::new(session, CharacterizeOpts::default());
    let first = proxy.run_flow(&trace).expect("initial learn");
    assert!(first.recharacterized);
    let seq_initial = proxy.active_technique().unwrap().effective.clone();

    let rules = flipped_rules(&proxy.session.env.dpi_mut().unwrap().config.rules);
    proxy
        .session
        .env
        .dpi_mut()
        .unwrap()
        .hot_swap_rules(rules.clone());
    let adapted = proxy.run_flow(&trace).expect("re-learn");
    assert!(adapted.recharacterized, "flip should force a re-learn");
    let seq_adapted = proxy.active_technique().unwrap().effective.clone();
    assert_ne!(
        seq_initial, seq_adapted,
        "the flip burns the initial technique"
    );

    for workers in [1usize, 2, 4] {
        let mut pool = testbed_pool(workers);
        let wave1 = pool.run_flows(&trace, workers * 2).expect("initial wave");
        assert!(wave1.all_evaded());
        assert_eq!(
            pool.active_technique().unwrap(),
            seq_initial,
            "initial parity at {workers} workers"
        );

        pool.hot_swap_rules(&rules);
        let wave2 = pool.run_flows(&trace, workers * 2).expect("flip wave");
        assert!(wave2.recharacterized);
        assert_eq!(
            pool.active_technique().unwrap(),
            seq_adapted,
            "adapted parity at {workers} workers"
        );

        let wave3 = pool.run_flows(&trace, workers * 2).expect("recovery wave");
        assert!(wave3.all_evaded(), "refreshed technique carries all users");
    }
}

/// (e) Same seed, same worker count ⇒ byte-identical merged journals,
/// even through a scripted flip, a fallback ladder, and a re-learn.
#[test]
fn same_seed_deployment_journals_are_byte_identical() {
    let trace = trace();
    let run = || {
        let mut pool = testbed_pool(2).with_fallback_ladder(vec![Technique::InertTcpInvalidFlags]);
        pool.run_flows(&trace, 4).expect("initial wave");
        let rules = {
            let dpi = pool.pool_mut().session_mut(0).env.dpi_mut().unwrap();
            flipped_rules(&dpi.config.rules)
        };
        pool.hot_swap_rules(&rules);
        pool.run_flows(&trace, 4).expect("flip wave");
        pool.run_flows(&trace, 4).expect("recovery wave");
        let merged = Arc::new(Journal::new());
        pool.merge_journals_into(&merged);
        to_jsonl(&merged)
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty());
    validate_jsonl(&a).expect("merged deployment journal is valid JSONL");
    assert_eq!(a, b, "same seed must replay to byte-identical journals");
}

/// (f) The seqlock contention property at the API level: 8 reader
/// threads hammering `PublishedState` while a writer publishes 500
/// generations observe only fully-published states — the generation
/// stamp always agrees with the marker baked into the technique it is
/// paired with, and no reader's view ever goes backwards.
#[test]
fn published_state_readers_never_see_torn_generations() {
    const PUBLISHES: u64 = 500;

    // An evasion whose `rounds` field carries the generation it was
    // published under; a torn snapshot would pair generation g with a
    // marker != g.
    let marked = |generation: u64| {
        let technique = Technique::InertLowTtl;
        Arc::new(liberate::deploy::ActiveEvasion {
            technique: liberate::evaluate::TechniqueResult {
                technique: technique.clone(),
                cc: Some(false),
                rs: Reach::No,
                app_intact: true,
                rounds: generation,
                effective: technique,
            },
            ctx: liberate::evasion::EvasionContext::blind(Vec::new(), 2),
            signal: Signal::Readout,
        })
    };

    let published = PublishedState::new();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let published = published.clone();
            scope.spawn(move || {
                let mut last = 0u64;
                loop {
                    let snap = published.snapshot();
                    match &snap.evasion {
                        None => {
                            assert_eq!(snap.generation, 0, "an empty cell can only be generation 0")
                        }
                        Some(e) => assert_eq!(
                            e.technique.rounds, snap.generation,
                            "torn snapshot: generation paired with a foreign technique"
                        ),
                    }
                    assert!(snap.generation >= last, "generation went backwards");
                    last = snap.generation;
                    if last >= PUBLISHES {
                        break;
                    }
                }
            });
        }
        for g in 1..=PUBLISHES {
            assert_eq!(published.publish(marked(g)), g, "publish stamps are exact");
        }
    });
    assert_eq!(published.generation(), PUBLISHES);
}
