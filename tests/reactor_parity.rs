//! Reactor-engine parity: characterizing through a `SessionPool` with
//! `Engine::Reactor` (lane-virtualized, event-driven) must be
//! *byte-identical* — merged-journal JSONL and all — to `Engine::Threads`
//! running the same jobs at the same worker count, and must report the
//! same `Characterization` as the sequential reference at 1, 2, and 4
//! workers.
//!
//! Why byte-identical is even possible: both engines bucket job `i` onto
//! worker `i % n` and the reactor splices each lane's staged journal
//! back in bucket order with timestamps rebased by the sum of earlier
//! lanes' virtual durations — exactly the timeline the threads engine
//! produces by running the bucket job-after-job. See the determinism
//! contract in `liberate::reactor`.

use std::sync::Arc;

use liberate::characterize::{characterize, Characterization, CharacterizeOpts};
use liberate::config::LiberateConfig;
use liberate::deploy::DeploymentPool;
use liberate::detect::Signal;
use liberate::engine::{characterize_parallel, Engine, SessionPool};
use liberate::evasion::Technique;
use liberate::replay::Session;
use liberate_dpi::profiles::EnvKind;
use liberate_netsim::os::OsKind;
use liberate_obs::{to_jsonl, Journal};
use liberate_traces::apps;
use liberate_traces::recorded::RecordedTrace;

struct Scenario {
    name: &'static str,
    kind: EnvKind,
    trace: RecordedTrace,
    signal: Signal,
    opts: CharacterizeOpts,
}

/// The three profiles the issue pins: an HTTP video trace and a UDP STUN
/// trace on the testbed (readout signal), and a blocked HTTP fetch
/// through the GFC model (blocking signal, rotated server ports so the
/// residual server:port penalty never couples probes).
fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "amazon-prime-http",
            kind: EnvKind::Testbed,
            trace: apps::amazon_prime_http(20_000),
            signal: Signal::Readout,
            opts: CharacterizeOpts::default(),
        },
        Scenario {
            name: "skype-stun",
            kind: EnvKind::Testbed,
            trace: apps::skype_stun(4),
            signal: Signal::Readout,
            opts: CharacterizeOpts::default(),
        },
        Scenario {
            name: "economist-gfc",
            kind: EnvKind::Gfc,
            trace: apps::economist_http(),
            signal: Signal::Blocking,
            opts: CharacterizeOpts {
                rotate_server_ports: true,
                ..Default::default()
            },
        },
    ]
}

/// One pooled characterization; returns the report and the merged
/// journal's canonical JSONL export.
fn run(s: &Scenario, engine: Engine, workers: usize) -> (Characterization, String) {
    let mut pool = SessionPool::new(s.kind, OsKind::Linux, LiberateConfig::default(), workers)
        .with_engine(engine);
    let c = characterize_parallel(&mut pool, &s.trace, &s.signal, &s.opts);
    let merged = Arc::new(Journal::new());
    pool.merge_journals_into(&merged);
    (c, to_jsonl(&merged))
}

#[test]
fn reactor_journals_are_byte_identical_to_threads() {
    for s in scenarios() {
        for workers in [1usize, 2, 4] {
            let (ct, jt) = run(&s, Engine::Threads, workers);
            let (cr, jr) = run(&s, Engine::Reactor, workers);
            assert_eq!(
                cr.fields, ct.fields,
                "{}: fields diverge across engines at {workers} workers",
                s.name
            );
            assert_eq!(
                cr.rounds, ct.rounds,
                "{}: rounds diverge across engines at {workers} workers",
                s.name
            );
            if jt != jr {
                // Point at the first diverging line rather than dumping
                // two full journals.
                for (i, (a, b)) in jt.lines().zip(jr.lines()).enumerate() {
                    assert_eq!(
                        a, b,
                        "{}: journal line {i} diverges at {workers} workers",
                        s.name
                    );
                }
                assert_eq!(
                    jt.lines().count(),
                    jr.lines().count(),
                    "{}: journal lengths diverge at {workers} workers",
                    s.name
                );
            }
        }
    }
}

/// Deployment parity: a `DeploymentPool` riding an `Engine::Reactor`
/// session pool must produce the same per-flow reports AND a
/// byte-identical merged journal as the threads engine — through the
/// full lifecycle: initial learn, a scripted classifier flip that burns
/// the published technique onto the fallback ladder, and the re-learned
/// recovery wave.
#[test]
fn reactor_deployment_matches_threads_through_flip_and_fallback() {
    let trace = apps::amazon_prime_http(1_200_000);
    let run = |engine: Engine, workers: usize| {
        let sessions = SessionPool::new(
            EnvKind::Testbed,
            OsKind::Linux,
            LiberateConfig::default(),
            workers,
        )
        .with_engine(engine);
        let mut pool = DeploymentPool::over(sessions, CharacterizeOpts::default())
            .with_fallback_ladder(vec![Technique::InertTcpInvalidFlags]);
        let users = workers * 2;
        let mut waves = vec![pool.run_flows(&trace, users).expect("initial wave")];

        // Re-class the testbed's decoy "web" rule as "video": burns the
        // published low-TTL technique, forcing the fallback + re-learn.
        let rules = {
            let dpi = pool.pool_mut().session_mut(0).env.dpi_mut().unwrap();
            let mut rules = dpi.config.rules.clone();
            for r in &mut rules.rules {
                if r.id == "web" {
                    r.class = "video".to_string();
                }
            }
            rules
        };
        pool.hot_swap_rules(&rules);
        waves.push(pool.run_flows(&trace, users).expect("flip wave"));
        waves.push(pool.run_flows(&trace, users).expect("recovery wave"));

        let merged = Arc::new(Journal::new());
        pool.merge_journals_into(&merged);
        let reports: Vec<String> = waves
            .iter()
            .flat_map(|w| {
                w.reports.iter().map(|r| {
                    format!(
                        "u{} w{} g{} {:?} evaded={} parked={:?} change={} sent={} blocked={}",
                        r.user,
                        r.worker,
                        r.generation,
                        r.technique,
                        r.evaded,
                        r.parked_on_fallback,
                        r.change_signal,
                        r.outcome.bytes_sent,
                        r.outcome.blocked(),
                    )
                })
            })
            .collect();
        (reports, to_jsonl(&merged))
    };

    for workers in [1usize, 2, 4] {
        let (rt, jt) = run(Engine::Threads, workers);
        let (rr, jr) = run(Engine::Reactor, workers);
        assert_eq!(
            rr, rt,
            "flow reports diverge across engines at {workers} workers"
        );
        if jt != jr {
            for (i, (a, b)) in jt.lines().zip(jr.lines()).enumerate() {
                assert_eq!(
                    a, b,
                    "deployment journal line {i} diverges at {workers} workers"
                );
            }
            assert_eq!(
                jt.lines().count(),
                jr.lines().count(),
                "deployment journal lengths diverge at {workers} workers"
            );
        }
    }
}

#[test]
fn reactor_report_matches_sequential_at_1_2_4_workers() {
    for s in scenarios() {
        let mut solo = Session::new(s.kind, OsKind::Linux, LiberateConfig::default());
        let seq = characterize(&mut solo, &s.trace, &s.signal, &s.opts);
        assert!(
            !seq.fields.is_empty(),
            "{}: sequential run must find matching fields",
            s.name
        );
        for workers in [1usize, 2, 4] {
            let (c, _) = run(&s, Engine::Reactor, workers);
            assert_eq!(c.fields, seq.fields, "{} at {workers} workers", s.name);
            assert_eq!(c.rounds, seq.rounds, "{} at {workers} workers", s.name);
            assert_eq!(c.position, seq.position, "{} at {workers} workers", s.name);
            assert_eq!(
                c.bytes_sent, seq.bytes_sent,
                "{} at {workers} workers",
                s.name
            );
            assert_eq!(
                c.bytes_received, seq.bytes_received,
                "{} at {workers} workers",
                s.name
            );
            assert_eq!(c.elapsed, seq.elapsed, "{} at {workers} workers", s.name);
        }
    }
}
