//! NftSubstrate golden fixtures: the six §6 profile rule sets lower to
//! pinned nftables program text, and the counter→verdict mapping back
//! from the (recording loopback) sink is pinned alongside.
//!
//! Goldens live under `tests/fixtures/nft/`:
//!
//! - `<profile>.nft` — the program `RuleProgramSink::apply` receives
//! - `<profile>.verdicts.txt` — one `cnt_<rule> class=<c> effective=<b>`
//!   line per match rule, as `counter_verdicts` reports them once every
//!   rule counter has moved
//!
//! Regenerate after a deliberate lowering change with:
//!
//! ```text
//! UPDATE_FIXTURES=1 cargo test --test nft_fixtures
//! ```
//!
//! CI diffs both against the checked-in goldens, so an accidental change
//! to the wire programs (table names, match expressions, policy rules,
//! marks) fails the gate even though the sim path never exercises them.

use std::fs;
use std::path::{Path, PathBuf};

use liberate_dpi::profiles::{wire_ruleset, EnvKind};
use liberate_substrate::nft::{NftSubstrate, RecordingSink, RuleProgramSink};

const PROFILES: [EnvKind; 6] = [
    EnvKind::Testbed,
    EnvKind::TMobile,
    EnvKind::Att,
    EnvKind::Sprint,
    EnvKind::Gfc,
    EnvKind::Iran,
];

fn profile_slug(kind: EnvKind) -> &'static str {
    match kind {
        EnvKind::Testbed => "testbed",
        EnvKind::TMobile => "t_mobile",
        EnvKind::Att => "at_t",
        EnvKind::Sprint => "sprint",
        EnvKind::Gfc => "china",
        EnvKind::Iran => "iran",
    }
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/nft")
}

fn check_golden(path: &Path, got: &str, mismatches: &mut Vec<String>) {
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, got).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        return;
    }
    let want = fs::read_to_string(path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; regenerate with UPDATE_FIXTURES=1",
            path.display()
        )
    });
    if want != got {
        mismatches.push(format!(
            "{}:\n--- want\n{want}\n--- got\n{got}",
            path.display()
        ));
    }
}

/// The emitted rule program for every profile matches its golden, and the
/// recording sink received exactly that program.
#[test]
fn rule_programs_match_their_goldens() {
    let mut mismatches = Vec::new();
    for kind in PROFILES {
        let sink = RecordingSink::new();
        let state = sink.state();
        let sub = NftSubstrate::with_sink(wire_ruleset(kind), Box::new(sink))
            .expect("recording sink never fails to apply");
        assert_eq!(
            state.lock().programs,
            vec![sub.program().to_string()],
            "{kind:?}: the sink must receive the lowered program verbatim"
        );
        let golden = fixtures_dir().join(format!("{}.nft", profile_slug(kind)));
        check_golden(&golden, sub.program(), &mut mismatches);
    }
    assert!(
        mismatches.is_empty(),
        "nft program drift (UPDATE_FIXTURES=1 to accept):\n{}",
        mismatches.join("\n")
    );
}

/// Once every rule counter has moved, `counter_verdicts` maps each back
/// to its class and policy effectiveness — pinned per profile.
#[test]
fn counter_verdict_mapping_matches_its_goldens() {
    let mut mismatches = Vec::new();
    for kind in PROFILES {
        let sink = RecordingSink::new();
        let mut feeder = sink.clone();
        let mut sub = NftSubstrate::with_sink(wire_ruleset(kind), Box::new(sink))
            .expect("recording sink never fails to apply");
        // The loopback fixture counts only what it is told about: mark
        // every declared rule counter as having seen one packet.
        let rule_counters: Vec<String> = sub
            .program()
            .lines()
            .filter_map(|l| l.strip_prefix(&format!("add counter inet {} ", sub.ruleset().table())))
            .filter(|n| n.starts_with("cnt_"))
            .map(str::to_string)
            .collect();
        for c in &rule_counters {
            feeder.record_match(c, 1460);
        }
        let verdicts = sub.counter_verdicts().expect("recording sink reads back");
        assert_eq!(
            verdicts.len(),
            rule_counters.len(),
            "{kind:?}: every moved rule counter yields a verdict"
        );
        let mut text = String::new();
        for (counter, v) in &verdicts {
            text.push_str(&format!(
                "{counter} class={} effective={}\n",
                v.class, v.effective
            ));
        }
        let golden = fixtures_dir().join(format!("{}.verdicts.txt", profile_slug(kind)));
        check_golden(&golden, &text, &mut mismatches);
    }
    assert!(
        mismatches.is_empty(),
        "counter->verdict drift (UPDATE_FIXTURES=1 to accept):\n{}",
        mismatches.join("\n")
    );
}

/// Untouched counters never produce verdicts: a freshly programmed
/// substrate reports an empty mapping for every profile.
#[test]
fn idle_counters_yield_no_verdicts() {
    for kind in PROFILES {
        let mut sub = NftSubstrate::with_sink(wire_ruleset(kind), Box::new(RecordingSink::new()))
            .expect("recording sink never fails to apply");
        assert!(
            sub.counter_verdicts().unwrap().is_empty(),
            "{kind:?}: zero counters must map to zero verdicts"
        );
    }
}

/// The README quickstart, end to end: a Session over the GFC wire rules
/// sees its censored fetch RST while an innocuous fetch completes.
#[test]
fn readme_quickstart_blocks_a_censored_fetch() {
    use liberate::prelude::*;

    let nft = NftSubstrate::new(wire_ruleset(EnvKind::Gfc)).expect("program applies");
    assert!(nft.program().contains("add table inet liberate_china"));
    let mut session = Session::over(nft, LiberateConfig::default());
    let outcome = session.replay_trace(
        &liberate_traces::apps::economist_http(),
        &ReplayOpts::default(),
    );
    assert!(outcome.blocked(), "{outcome:?}");

    let nft = NftSubstrate::new(wire_ruleset(EnvKind::Gfc)).unwrap();
    let mut session = Session::over(nft, LiberateConfig::default());
    let control = session.replay_trace(
        &liberate_traces::apps::control_http(),
        &ReplayOpts::default(),
    );
    assert!(!control.blocked() && control.complete, "{control:?}");
}
