//! Fault-path and scheduling battery for the replay reactor: panicking
//! tasks are contained, mid-wave teardown leaks nothing, admission-order
//! shuffles cannot perturb the spliced journal, and waves smaller than
//! the pool leave surplus workers untouched.

use std::sync::Arc;
use std::time::Duration;

use liberate::config::LiberateConfig;
use liberate::engine::{Engine, SessionPool};
use liberate::reactor::Reactor;
use liberate::replay::{ReplayOpts, Session};
use liberate::task::{FlowTask, TaskPoll, Wake};
use liberate_dpi::profiles::EnvKind;
use liberate_netsim::os::OsKind;
use liberate_obs::{to_jsonl, Counter, EventKind, Journal};
use liberate_substrate::Substrate;
use liberate_traces::apps;

fn session() -> Session {
    Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default())
}

/// A task that records one tagged event per poll on its lane journal,
/// sleeping a per-task gap between polls — tasks finish in an order
/// different from their admission order, which is exactly what the
/// splice must absorb.
struct ChattyTask {
    id: usize,
    gap: Duration,
    steps: u32,
    step: u32,
}

impl ChattyTask {
    fn wave(n: usize) -> Vec<ChattyTask> {
        (0..n)
            .map(|id| ChattyTask {
                id,
                // Later admissions sleep less: completion order is the
                // reverse of admission order.
                gap: Duration::from_micros(1_000 * (n - id) as u64),
                steps: 3,
                step: 0,
            })
            .collect()
    }
}

impl FlowTask<liberate::sim::SimSubstrate> for ChattyTask {
    type Output = usize;

    fn poll(&mut self, session: &mut Session) -> TaskPoll<usize> {
        if self.step >= self.steps {
            return TaskPoll::Done(self.id);
        }
        session.journal().record(
            session.env.clock().as_micros(),
            EventKind::FallbackEngaged {
                technique: format!("task-{}-step-{}", self.id, self.step),
            },
        );
        self.step += 1;
        TaskPoll::Pending(Wake::Timer(self.gap))
    }

    fn replays_done(&self) -> u64 {
        0
    }
}

/// Run a `ChattyTask` wave under a given admission order and splice the
/// lanes exactly the way `run_wave_tasks` does: task order, rebased by
/// the running sum of earlier lanes' virtual durations.
fn spliced_run(order: Option<&[usize]>) -> (Vec<Option<usize>>, String) {
    let mut session = session();
    let telemetry = Journal::disabled();
    let t0 = session.env.clock();
    let mut reactor = Reactor::new(&session, ChattyTask::wave(6), &telemetry);
    if let Some(order) = order {
        reactor.set_admission_order(order);
    }
    reactor.run(&mut session, &telemetry);
    let outcome = reactor.into_outcome();
    let merged = Arc::new(Journal::new());
    let mut dt_us = 0u64;
    for (i, lane) in outcome.lanes.iter().enumerate() {
        if outcome.results[i].is_some() {
            merged.splice_staged(&lane.journal, dt_us, 0);
            dt_us += (lane.clock - t0).as_micros() as u64;
        }
    }
    (outcome.results, to_jsonl(&merged))
}

/// Shuffling the ready-queue admission order cannot change the spliced
/// journal: lanes are private, and the splice runs in task order no
/// matter who ran first.
#[test]
fn admission_order_shuffles_do_not_change_the_spliced_journal() {
    let (base_results, base_journal) = spliced_run(None);
    assert!(base_results.iter().all(|r| r.is_some()));
    assert!(base_journal.contains("task-5-step-2"));

    for order in [
        vec![5usize, 4, 3, 2, 1, 0],
        vec![1, 3, 5, 0, 2, 4],
        vec![3, 4, 5, 0, 1, 2],
    ] {
        let (results, journal) = spliced_run(Some(&order));
        assert_eq!(results, base_results, "results diverge under {order:?}");
        assert_eq!(
            journal, base_journal,
            "spliced journal diverges under admission order {order:?}"
        );
    }
}

/// A task that panics on its second poll, mid-wave, with a timer parked
/// by its first poll already consumed.
struct BoomTask {
    id: usize,
    boom: bool,
    polled: bool,
}

impl FlowTask<liberate::sim::SimSubstrate> for BoomTask {
    type Output = usize;

    fn poll(&mut self, session: &mut Session) -> TaskPoll<usize> {
        if !self.polled {
            self.polled = true;
            return TaskPoll::Pending(Wake::Timer(Duration::from_micros(500)));
        }
        if self.boom {
            panic!("scripted task panic");
        }
        // Touch the shared flow table through a real replay before
        // finishing, so a poisoned shard lock could not hide.
        let trace = apps::economist_http();
        session.replay_trace(&trace, &ReplayOpts::default());
        TaskPoll::Done(self.id)
    }

    fn replays_done(&self) -> u64 {
        u64::from(self.polled && !self.boom)
    }
}

/// Containment: one panicking task out of six must not take the wave
/// down — the other five finish and report, the panicked flow comes back
/// `None`, the panic is counted, and the pool (shared flow table
/// included) stays fully usable for the next wave.
#[test]
fn panicking_task_is_contained_and_the_wave_completes() {
    // Silence the scripted panic's default stderr backtrace.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut pool = SessionPool::new(
        EnvKind::Testbed,
        OsKind::Linux,
        LiberateConfig::default(),
        2,
    )
    .with_engine(Engine::Reactor);
    let tasks: Vec<BoomTask> = (0..6)
        .map(|id| BoomTask {
            id,
            boom: id == 2,
            polled: false,
        })
        .collect();
    let results = pool.run_wave_tasks(tasks);
    std::panic::set_hook(prev);

    assert_eq!(results.len(), 6);
    for (id, r) in results.iter().enumerate() {
        if id == 2 {
            assert!(r.is_none(), "panicked flow must report as failed");
        } else {
            assert_eq!(*r, Some(id), "surviving flow lost its result");
        }
    }
    assert_eq!(
        pool.reactor_telemetry()
            .metrics
            .get(Counter::ReactorTaskPanics),
        1
    );

    // No poisoned shard locks, no wedged worker state: the shared table
    // still takes batch sweeps and the pool still runs full waves.
    pool.session_mut(0).env.reclaim_flows();
    let again = pool.run_wave_tasks(
        (0..4)
            .map(|id| BoomTask {
                id,
                boom: false,
                polled: false,
            })
            .collect::<Vec<_>>(),
    );
    assert!(
        again.iter().all(|r| r.is_some()),
        "pool wedged after a contained panic"
    );
}

/// A task that parks itself on the far future and never finishes.
struct ParkedForever;

impl FlowTask<liberate::sim::SimSubstrate> for ParkedForever {
    type Output = ();

    fn poll(&mut self, _session: &mut Session) -> TaskPoll<()> {
        TaskPoll::Pending(Wake::Timer(Duration::from_secs(3_600)))
    }

    fn replays_done(&self) -> u64 {
        0
    }
}

/// Tearing a reactor down with in-flight timers leaks nothing into the
/// worker: the journal and clock are exactly as before the wave, and the
/// session replays normally afterwards.
#[test]
fn dropping_a_reactor_with_parked_timers_leaks_no_task_state() {
    let mut session = session();
    let clock_before = session.env.clock();
    let journal_before = to_jsonl(session.journal());

    let telemetry = Journal::disabled();
    let mut reactor = Reactor::new(&session, vec![ParkedForever, ParkedForever], &telemetry);
    // First two steps poll each task once; both park on the wheel.
    assert!(reactor.step(&mut session, &telemetry));
    assert!(reactor.step(&mut session, &telemetry));
    assert_eq!(reactor.parked(), 2);
    assert_eq!(reactor.live(), 2);
    drop(reactor);

    assert_eq!(session.env.clock(), clock_before, "worker clock moved");
    assert_eq!(
        to_jsonl(session.journal()),
        journal_before,
        "abandoned lanes leaked events into the worker journal"
    );
    let outcome = session.replay_trace(&apps::economist_http(), &ReplayOpts::default());
    assert!(outcome.bytes_sent > 0, "session unusable after teardown");
}

/// A wave smaller than the pool leaves the surplus workers completely
/// untouched — no wave span, no events — under both engines and both
/// wave entry points.
#[test]
fn surplus_workers_see_no_wave_when_jobs_are_scarce() {
    for engine in [Engine::Threads, Engine::Reactor] {
        let mut pool = SessionPool::new(
            EnvKind::Testbed,
            OsKind::Linux,
            LiberateConfig::default(),
            4,
        )
        .with_engine(engine);
        let baselines: Vec<String> = (0..4)
            .map(|w| to_jsonl(pool.sessions()[w].journal()))
            .collect();

        let results = pool.run_wave(vec![10usize, 20], &|_s: &mut Session, job: usize| job * 2);
        assert_eq!(results, vec![20, 40]);

        let task_results = pool.run_wave_tasks(ChattyTask::wave(2));
        assert_eq!(task_results, vec![Some(0), Some(1)]);

        for w in [2usize, 3] {
            assert_eq!(
                to_jsonl(pool.sessions()[w].journal()),
                baselines[w],
                "{engine:?}: worker {w} had no jobs but its journal moved"
            );
        }
        for w in [0usize, 1] {
            assert!(
                to_jsonl(pool.sessions()[w].journal()).contains("\"phase\":\"wave\""),
                "{engine:?}: worker {w} should have run a wave"
            );
        }
    }
}
