//! Observability guarantees: journal determinism (identical seeds yield
//! byte-identical JSONL; different seeds differ) and metric correctness
//! (a scripted replay produces exactly the counter values the packets
//! warrant).

use liberate::cache::{CachedRules, RuleCache};
use liberate::characterize::{characterize, Characterization, CharacterizeOpts};
use liberate::config::LiberateConfig;
use liberate::detect::Signal;
use liberate::replay::{ReplayOpts, Session};
use liberate_dpi::profiles::EnvKind;
use liberate_netsim::os::OsKind;
use liberate_obs::{to_jsonl, validate_jsonl, Counter, EventKind, Journal};
use liberate_traces::recorded::{RecordedTrace, Sender, TraceMessage, TraceProtocol};

/// A minimal Skype-like UDP trace: three client datagrams, the first a
/// STUN-shaped packet (0x0001 binding-request prefix passes the testbed
/// gate) carrying the 0x8055 MS-SERVICE-QUALITY attribute the skype-sq
/// rule keys on.
fn scripted_trace() -> RecordedTrace {
    let mut t = RecordedTrace::new("scripted", TraceProtocol::Udp, 3478);
    let mut stun = vec![0x00, 0x01, 0x00, 0x08, 0x21, 0x12, 0xa4, 0x42];
    stun.extend_from_slice(&[0u8; 12]); // transaction id
    stun.extend_from_slice(&[0x80, 0x55, 0x00, 0x04, 0x00, 0x01, 0x00, 0x00]);
    t.push_message(TraceMessage {
        sender: Sender::Client,
        payload: stun,
        gap_micros: 0,
    });
    for i in 0..2u8 {
        t.push_message(TraceMessage {
            sender: Sender::Client,
            payload: vec![0xa0 + i; 120],
            gap_micros: 20_000,
        });
    }
    t
}

fn run_scripted(seed: u64) -> (String, Characterization) {
    let config = LiberateConfig {
        seed,
        ..LiberateConfig::default()
    };
    let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, config);
    let trace = scripted_trace();
    let c = characterize(
        &mut session,
        &trace,
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );
    (to_jsonl(session.journal()), c)
}

#[test]
fn same_seed_journals_are_byte_identical() {
    let (a, ca) = run_scripted(7);
    let (b, cb) = run_scripted(7);
    assert_eq!(ca.rounds, cb.rounds);
    assert_eq!(a, b, "identical seeds must produce byte-identical JSONL");
    let lines = validate_jsonl(&a).expect("journal JSONL is well-formed");
    assert!(
        lines > 10,
        "expected a non-trivial journal, got {lines} lines"
    );
}

#[test]
fn different_seeds_produce_different_journals() {
    let (a, _) = run_scripted(7);
    let (b, _) = run_scripted(8);
    assert_ne!(a, b, "the seed is part of the session_started event");
}

#[test]
fn scripted_replay_counts_exactly() {
    let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
    let trace = scripted_trace();
    let out = session.replay_trace(&trace, &ReplayOpts::default());
    // No server bytes are scripted, so `complete` cannot hold; the flow
    // must simply not be blocked (voip is throttled, not dropped).
    assert!(!out.blocked());

    let m = &session.journal().metrics;
    // Three client datagrams entered the network...
    assert_eq!(m.get(Counter::PacketsInjected), 3);
    // ...each dispatched through DPI, the silent lab router, and final
    // delivery: three event-loop steps per packet.
    assert_eq!(m.get(Counter::PacketsStepped), 9);
    // One replay, lowered to one step per datagram plus one wait step
    // per inter-message gap (two 20 ms gaps).
    assert_eq!(m.get(Counter::ReplaysExecuted), 1);
    assert_eq!(m.get(Counter::StepsLowered), 5);
    // The STUN packet matched skype-sq exactly once; one flow entry, no
    // eviction within the replay window.
    assert_eq!(m.get(Counter::Verdicts), 1);
    assert_eq!(m.get(Counter::FlowsCreated), 1);
    assert_eq!(m.get(Counter::FlowsEvicted), 0);
    // Nothing was blinded and no technique ran in a bare replay.
    assert_eq!(m.get(Counter::BytesBlinded), 0);
    assert_eq!(m.get(Counter::TechniquesTried), 0);

    let events = session.journal().events();
    let verdicts = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::ClassifierVerdict { class, rule_id } => {
                Some((class.clone(), rule_id.clone()))
            }
            _ => None,
        })
        .collect::<Vec<_>>();
    assert_eq!(verdicts, vec![("voip".to_string(), "skype-sq".to_string())]);
}

#[test]
fn blinding_is_metered_during_characterization() {
    let (_, c) = run_scripted(3);
    assert!(!c.fields.is_empty(), "the 0x8055 attribute must be found");
    let config = LiberateConfig {
        seed: 3,
        ..LiberateConfig::default()
    };
    let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, config);
    characterize(
        &mut session,
        &scripted_trace(),
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );
    let m = &session.journal().metrics;
    assert!(m.get(Counter::BytesBlinded) > 0);
    assert_eq!(m.get(Counter::ReplaysExecuted), c.rounds);
}

#[test]
fn observed_cache_lookups_emit_hit_and_miss() {
    let journal = Journal::new();
    let mut cache = RuleCache::new();

    let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
    let trace = scripted_trace();
    let c = characterize(
        &mut session,
        &trace,
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );
    cache.publish(
        "testbed",
        &trace.app,
        CachedRules::from_characterization(&c, 0),
    );

    assert!(cache
        .lookup_observed("testbed", &trace.app, &journal, 10)
        .is_some());
    assert!(cache
        .lookup_observed("elsewhere", &trace.app, &journal, 20)
        .is_none());

    assert_eq!(journal.metrics.get(Counter::CacheHits), 1);
    assert_eq!(journal.metrics.get(Counter::CacheMisses), 1);
    let kinds: Vec<&'static str> = journal.events().iter().map(|e| e.kind.name()).collect();
    assert_eq!(kinds, vec!["cache_hit", "cache_miss"]);
}
