//! Observability guarantees: journal determinism (identical seeds yield
//! byte-identical JSONL; different seeds differ) and metric correctness
//! (a scripted replay produces exactly the counter values the packets
//! warrant).

use liberate::cache::{CachedRules, RuleCache};
use liberate::characterize::{characterize, Characterization, CharacterizeOpts};
use liberate::config::LiberateConfig;
use liberate::detect::Signal;
use liberate::replay::{ReplayOpts, Session};
use liberate_dpi::profiles::EnvKind;
use liberate_netsim::os::OsKind;
use liberate_obs::{
    build_span_forest, critical_path, folded_stacks, parse_journal, to_jsonl, validate_jsonl,
    Counter, EventKind, Hist, Journal, Phase,
};
use liberate_traces::recorded::{RecordedTrace, Sender, TraceMessage, TraceProtocol};

/// A minimal Skype-like UDP trace: three client datagrams, the first a
/// STUN-shaped packet (0x0001 binding-request prefix passes the testbed
/// gate) carrying the 0x8055 MS-SERVICE-QUALITY attribute the skype-sq
/// rule keys on.
fn scripted_trace() -> RecordedTrace {
    let mut t = RecordedTrace::new("scripted", TraceProtocol::Udp, 3478);
    let mut stun = vec![0x00, 0x01, 0x00, 0x08, 0x21, 0x12, 0xa4, 0x42];
    stun.extend_from_slice(&[0u8; 12]); // transaction id
    stun.extend_from_slice(&[0x80, 0x55, 0x00, 0x04, 0x00, 0x01, 0x00, 0x00]);
    t.push_message(TraceMessage {
        sender: Sender::Client,
        payload: stun,
        gap_micros: 0,
    });
    for i in 0..2u8 {
        t.push_message(TraceMessage {
            sender: Sender::Client,
            payload: vec![0xa0 + i; 120],
            gap_micros: 20_000,
        });
    }
    t
}

fn run_scripted(seed: u64) -> (String, Characterization) {
    let config = LiberateConfig {
        seed,
        ..LiberateConfig::default()
    };
    let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, config);
    let trace = scripted_trace();
    let c = characterize(
        &mut session,
        &trace,
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );
    (to_jsonl(session.journal()), c)
}

#[test]
fn same_seed_journals_are_byte_identical() {
    let (a, ca) = run_scripted(7);
    let (b, cb) = run_scripted(7);
    assert_eq!(ca.rounds, cb.rounds);
    assert_eq!(a, b, "identical seeds must produce byte-identical JSONL");
    let lines = validate_jsonl(&a).expect("journal JSONL is well-formed");
    assert!(
        lines > 10,
        "expected a non-trivial journal, got {lines} lines"
    );
}

#[test]
fn different_seeds_produce_different_journals() {
    let (a, _) = run_scripted(7);
    let (b, _) = run_scripted(8);
    assert_ne!(a, b, "the seed is part of the session_started event");
}

#[test]
fn scripted_replay_counts_exactly() {
    let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
    let trace = scripted_trace();
    let out = session.replay_trace(&trace, &ReplayOpts::default());
    // No server bytes are scripted, so `complete` cannot hold; the flow
    // must simply not be blocked (voip is throttled, not dropped).
    assert!(!out.blocked());

    let m = &session.journal().metrics;
    // Three client datagrams entered the network...
    assert_eq!(m.get(Counter::PacketsInjected), 3);
    // ...each dispatched through DPI, the silent lab router, and final
    // delivery: three event-loop steps per packet.
    assert_eq!(m.get(Counter::PacketsStepped), 9);
    // One replay, lowered to one step per datagram plus one wait step
    // per inter-message gap (two 20 ms gaps).
    assert_eq!(m.get(Counter::ReplaysExecuted), 1);
    assert_eq!(m.get(Counter::StepsLowered), 5);
    // The STUN packet matched skype-sq exactly once; one flow entry, no
    // eviction within the replay window.
    assert_eq!(m.get(Counter::Verdicts), 1);
    assert_eq!(m.get(Counter::FlowsCreated), 1);
    assert_eq!(m.get(Counter::FlowsEvicted), 0);
    // Nothing was blinded and no technique ran in a bare replay.
    assert_eq!(m.get(Counter::BytesBlinded), 0);
    assert_eq!(m.get(Counter::TechniquesTried), 0);

    let events = session.journal().events();
    let verdicts = events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::ClassifierVerdict { class, rule_id } => {
                Some((class.clone(), rule_id.clone()))
            }
            _ => None,
        })
        .collect::<Vec<_>>();
    assert_eq!(verdicts, vec![("voip".to_string(), "skype-sq".to_string())]);
}

#[test]
fn blinding_is_metered_during_characterization() {
    let (_, c) = run_scripted(3);
    assert!(!c.fields.is_empty(), "the 0x8055 attribute must be found");
    let config = LiberateConfig {
        seed: 3,
        ..LiberateConfig::default()
    };
    let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, config);
    characterize(
        &mut session,
        &scripted_trace(),
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );
    let m = &session.journal().metrics;
    assert!(m.get(Counter::BytesBlinded) > 0);
    assert_eq!(m.get(Counter::ReplaysExecuted), c.rounds);
}

#[test]
fn same_seed_span_ids_and_hist_snapshots_are_pinned() {
    let (a, _) = run_scripted(7);
    let (b, _) = run_scripted(7);

    // Span boundaries — ids, parents, order — must be byte-identical
    // lines, not merely equivalent trees.
    let span_lines = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| {
                l.contains("\"event\":\"span_start\"") || l.contains("\"event\":\"span_end\"")
            })
            .map(String::from)
            .collect()
    };
    assert_eq!(span_lines(&a), span_lines(&b));
    assert!(!span_lines(&a).is_empty());

    // Histogram snapshot lines too: same buckets, counts, sums.
    let hist_lines = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.contains("\"event\":\"hist\""))
            .map(String::from)
            .collect()
    };
    assert_eq!(hist_lines(&a), hist_lines(&b));
    assert!(
        !hist_lines(&a).is_empty(),
        "characterization must export histograms"
    );

    // The non-deterministic host-clock histogram must never reach the
    // export, or same-seed byte identity would be a coin flip.
    assert!(!a.contains(Hist::ReplayHostMicros.name()));
}

#[test]
fn span_tree_reconstructs_with_replays_under_probe_phases() {
    let (text, c) = run_scripted(7);
    let parsed = parse_journal(&text).expect("exported journal parses");
    let forest = build_span_forest(&parsed.events);

    // Every replay span nests under a Fig. 3 probe phase, never at the
    // top level: the parent chain is what obs-query `top` reports.
    let mut replay_spans = 0;
    for node in &forest.nodes {
        if node.phase == Phase::Replay {
            replay_spans += 1;
            let parent = node.parent.expect("replay spans have parents");
            assert!(
                !forest.nodes[parent].phase.is_micro(),
                "replay nests directly under a Fig. 3 phase"
            );
        }
    }
    assert_eq!(replay_spans as u64, c.rounds, "one replay span per round");

    // The critical path of each root starts at the root and only
    // descends: durations never increase along the chain.
    for &root in &forest.roots {
        let path = critical_path(&forest, root);
        assert_eq!(path[0], root);
        for w in path.windows(2) {
            assert!(forest.nodes[w[0]].duration_us() >= forest.nodes[w[1]].duration_us());
        }
    }

    // Folded stacks conserve time: total self time equals the total
    // root duration.
    let folded_total: u64 = folded_stacks(&forest).iter().map(|(_, us)| us).sum();
    let root_total: u64 = forest
        .roots
        .iter()
        .map(|&r| forest.nodes[r].duration_us())
        .sum();
    assert_eq!(folded_total, root_total);
}

#[test]
fn exported_hist_quantiles_match_live_histograms() {
    let config = LiberateConfig {
        seed: 7,
        ..LiberateConfig::default()
    };
    let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, config);
    characterize(
        &mut session,
        &scripted_trace(),
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );
    let live = session
        .journal()
        .metrics
        .hist(Hist::StepSimMicros)
        .snapshot();
    assert!(live.count > 0);

    let parsed = parse_journal(&to_jsonl(session.journal())).expect("journal parses");
    let exported = parsed
        .hist(Hist::StepSimMicros.name())
        .expect("step-sim-micros exported");
    assert_eq!(exported, &live, "export round-trips the full snapshot");
    for q in [0.5, 0.9, 0.99] {
        assert_eq!(exported.quantile(q), live.quantile(q));
    }
}

#[test]
fn disabled_journal_suppresses_events_but_not_counters() {
    let config = LiberateConfig::default();
    let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, config);
    session.attach_journal(std::sync::Arc::new(Journal::disabled()));
    let out = session.replay_trace(&scripted_trace(), &ReplayOpts::default());
    assert!(!out.blocked());

    let j = session.journal();
    assert_eq!(j.len(), 0, "no events while disabled");
    let empty_hists = Hist::ALL
        .iter()
        .all(|&h| j.metrics.hist(h).snapshot().count == 0);
    assert!(empty_hists, "no histogram samples while disabled");
    // Counters are the cheap always-on surface; they keep moving.
    assert_eq!(j.metrics.get(Counter::PacketsInjected), 3);
}

#[test]
fn observed_cache_lookups_emit_hit_and_miss() {
    let journal = Journal::new();
    let mut cache = RuleCache::new();

    let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
    let trace = scripted_trace();
    let c = characterize(
        &mut session,
        &trace,
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );
    cache.publish(
        "testbed",
        &trace.app,
        CachedRules::from_characterization(&c, 0),
    );

    assert!(cache
        .lookup_observed("testbed", &trace.app, &journal, 10)
        .is_some());
    assert!(cache
        .lookup_observed("elsewhere", &trace.app, &journal, 20)
        .is_none());

    assert_eq!(journal.metrics.get(Counter::CacheHits), 1);
    assert_eq!(journal.metrics.get(Counter::CacheMisses), 1);
    let kinds: Vec<&'static str> = journal.events().iter().map(|e| e.kind.name()).collect();
    assert_eq!(kinds, vec!["cache_hit", "cache_miss"]);
}
