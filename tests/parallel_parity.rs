//! Engine parity: characterizing a testbed profile through a
//! `SessionPool` at 1, 2, or 4 workers must discover byte-identical
//! `MatchingField`s and bill the exact same metric totals as the
//! sequential characterizer. The pool reorders probes across workers but
//! never changes *which* probes run — see the determinism contract in
//! `liberate::engine`.

use liberate::characterize::{characterize, CharacterizeOpts};
use liberate::config::LiberateConfig;
use liberate::detect::Signal;
use liberate::engine::{characterize_parallel, SessionPool};
use liberate::replay::Session;
use liberate_dpi::profiles::EnvKind;
use liberate_netsim::os::OsKind;
use liberate_obs::{Counter, Journal};
use liberate_traces::apps;
use liberate_traces::recorded::RecordedTrace;

/// Sequential reference: fields, rounds, and the final counter totals of
/// the session's own journal.
fn sequential(trace: &RecordedTrace) -> (Vec<String>, u64, Vec<(Counter, u64)>) {
    let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
    let c = characterize(
        &mut session,
        trace,
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );
    let fields = c.fields.iter().map(|f| f.as_text()).collect();
    (fields, c.rounds, session.journal().metrics.snapshot())
}

/// Pool run at `workers`: fields, rounds, and the counter totals after
/// merging every worker journal into one.
fn parallel(trace: &RecordedTrace, workers: usize) -> (Vec<String>, u64, Vec<(Counter, u64)>) {
    let mut pool = SessionPool::new(
        EnvKind::Testbed,
        OsKind::Linux,
        LiberateConfig::default(),
        workers,
    );
    let c = characterize_parallel(
        &mut pool,
        trace,
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );
    let merged = std::sync::Arc::new(Journal::new());
    pool.merge_journals_into(&merged);
    let fields = c.fields.iter().map(|f| f.as_text()).collect();
    (fields, c.rounds, merged.metrics.snapshot())
}

fn assert_parity(name: &str, trace: &RecordedTrace) {
    let (seq_fields, seq_rounds, seq_counters) = sequential(trace);
    assert!(
        !seq_fields.is_empty(),
        "{name}: sequential run must find matching fields"
    );
    // `automaton-states` is recorded once per compiled device, so merged
    // totals scale with the worker count by construction — it describes
    // the rule set, not the traffic. Every traffic-derived counter must
    // stay worker-invariant.
    let structural = |snap: Vec<(Counter, u64)>| {
        snap.into_iter()
            .filter(|(c, _)| *c != Counter::AutomatonStates)
            .collect::<Vec<_>>()
    };
    let seq_counters = structural(seq_counters);
    for workers in [1usize, 2, 4] {
        let (fields, rounds, counters) = parallel(trace, workers);
        let counters = structural(counters);
        assert_eq!(
            fields, seq_fields,
            "{name}: matching fields diverge at {workers} workers"
        );
        assert_eq!(
            rounds, seq_rounds,
            "{name}: replay count diverges at {workers} workers"
        );
        assert_eq!(
            counters, seq_counters,
            "{name}: merged counter totals diverge at {workers} workers"
        );
    }
}

#[test]
fn http_profile_is_parallelism_invariant() {
    assert_parity("amazon-prime-http", &apps::amazon_prime_http(20_000));
}

#[test]
fn stun_profile_is_parallelism_invariant() {
    assert_parity("skype-stun", &apps::skype_stun(4));
}
