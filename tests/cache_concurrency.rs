//! Concurrency battery for the shared rule cache (§4.2's "well known
//! public location", now hit by many sessions at once): exact hit/miss
//! accounting under concurrent lookups, publish/lookup races that never
//! tear an entry, verify-against-a-snapshot semantics while publishers
//! churn, and the headline economics — two users, one characterization —
//! through one `SharedRuleCache` handle.

use std::sync::Arc;

use liberate::prelude::*;
use liberate_obs::{Counter, Journal};
use liberate_traces::apps;

fn entry(marker: u64) -> CachedRules {
    CachedRules {
        fields: vec![],
        prepend_break: None,
        packet_based: true,
        matches_all_packets: false,
        // The two marker fields must always agree; a torn read would
        // surface as a mismatched pair.
        learned_at_secs: marker,
        rounds_spent: marker,
        signal: liberate::cache::CachedSignal::Readout,
    }
}

/// Hit and miss counters stay exact when many threads share one journal:
/// N threads x M lookups each against a present and an absent key must
/// land exactly N*M hits and N*M misses, no lost updates.
#[test]
fn concurrent_lookup_counters_are_exact() {
    const THREADS: usize = 8;
    const LOOKUPS: usize = 200;

    let cache = SharedRuleCache::new();
    cache.publish("testbed", "prime", entry(1));
    let journal = Arc::new(Journal::new());

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let cache = cache.clone();
            let journal = journal.clone();
            scope.spawn(move || {
                for i in 0..LOOKUPS {
                    let t_us = (t * LOOKUPS + i) as u64;
                    let hit = cache.lookup_observed("testbed", "prime", &journal, t_us);
                    assert!(hit.is_some());
                    let miss = cache.lookup_observed("testbed", "absent", &journal, t_us);
                    assert!(miss.is_none());
                }
            });
        }
    });

    assert_eq!(
        journal.metrics.get(Counter::CacheHits),
        (THREADS * LOOKUPS) as u64
    );
    assert_eq!(
        journal.metrics.get(Counter::CacheMisses),
        (THREADS * LOOKUPS) as u64
    );
}

/// Publish/lookup staleness race: while one thread re-publishes an entry
/// with ever-newer markers, 8 readers must only ever observe complete
/// entries (marker fields agree) with markers that never go backwards —
/// an entry is replaced atomically or not at all. Readers go through the
/// seqlock snapshot path, so this doubles as its torn-read gate.
#[test]
fn republish_race_never_tears_an_entry() {
    const PUBLISHES: u64 = 2_000;

    let cache = SharedRuleCache::new();
    cache.publish("net", "app", entry(0));

    std::thread::scope(|scope| {
        for _ in 0..8 {
            let cache = cache.clone();
            scope.spawn(move || {
                let mut last = 0u64;
                loop {
                    let e = cache.lookup("net", "app").expect("entry never vanishes");
                    assert_eq!(
                        e.learned_at_secs, e.rounds_spent,
                        "torn entry: markers disagree"
                    );
                    assert!(
                        e.learned_at_secs >= last,
                        "entry went backwards: {} -> {}",
                        last,
                        e.learned_at_secs
                    );
                    last = e.learned_at_secs;
                    if last >= PUBLISHES {
                        break;
                    }
                }
            });
        }
        for i in 1..=PUBLISHES {
            cache.publish("net", "app", entry(i));
        }
    });
    assert_eq!(cache.len(), 1);
    assert_eq!(
        cache.snapshot().lookup("net", "app").unwrap().rounds_spent,
        PUBLISHES
    );
}

/// `SharedRuleCache::verify` runs against a point-in-time snapshot: a
/// publisher churning the store mid-verification must not panic, deadlock
/// (the lock is not held across replays), or change the verdict for the
/// entry the verifier cloned out.
#[test]
fn verify_races_concurrent_publishes_safely() {
    let trace = apps::amazon_prime_http(30_000);
    let cache = SharedRuleCache::new();

    // A real characterization so verify has genuine fields to blind.
    let mut contributor = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
    let c = liberate::characterize::characterize(
        &mut contributor,
        &trace,
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );
    cache.publish(
        "testbed",
        &trace.app,
        CachedRules::from_characterization(&c, 0),
    );

    std::thread::scope(|scope| {
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let publisher = {
            let cache = cache.clone();
            let done = done.clone();
            scope.spawn(move || {
                let mut i = 0u64;
                while !done.load(std::sync::atomic::Ordering::Relaxed) {
                    cache.publish("othernet", "otherapp", entry(i));
                    i += 1;
                }
            })
        };

        let mut verifier = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
        for _ in 0..3 {
            let fresh = cache
                .verify(
                    "testbed",
                    &trace.app,
                    &mut verifier,
                    &trace,
                    &Signal::Readout,
                )
                .expect("entry exists");
            assert!(fresh, "untouched rules stay fresh under publisher churn");
        }
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        publisher.join().unwrap();
    });
}

/// The §4.2 economics through one shared handle (the asserted version of
/// `examples/beyond_the_paper.rs` part 3): user A characterizes and
/// publishes; user B — a separate proxy holding a clone of the same
/// handle — verifies in one round per field and reuses the entry.
#[test]
fn two_users_one_characterization_via_shared_handle() {
    let flow = apps::facebook_http();
    let shared = SharedRuleCache::new();

    let mut user_a = LiberateProxy::new(
        Session::new(EnvKind::Iran, OsKind::Linux, LiberateConfig::default()),
        CharacterizeOpts::default(),
    )
    .with_shared_cache(shared.clone(), "iran");
    let report_a = user_a.run_flow(&flow).expect("user A evades");
    assert!(
        report_a.recharacterized,
        "cold cache: A pays the full search"
    );
    assert_eq!(user_a.cache_hits, 0);
    let rounds_a = user_a.session.replays;
    assert_eq!(shared.len(), 1, "A's characterization is published");

    let mut user_b = LiberateProxy::new(
        Session::new(EnvKind::Iran, OsKind::Linux, LiberateConfig::default()),
        CharacterizeOpts::default(),
    )
    .with_shared_cache(shared.clone(), "iran");
    let report_b = user_b.run_flow(&flow).expect("user B evades");
    let rounds_b = user_b.session.replays;

    assert_eq!(user_b.cache_hits, 1, "B reuses A's entry");
    assert!(
        rounds_b * 2 < rounds_a,
        "shared entry must save most of the search: A={rounds_a} B={rounds_b}"
    );
    assert!(report_a.evaded && report_b.evaded);
    assert_eq!(
        user_b.active_technique().map(|t| t.effective.clone()),
        user_a.active_technique().map(|t| t.effective.clone()),
        "both users deploy the same technique"
    );

    // Both handles still address the same store.
    assert_eq!(shared.len(), 1);
    assert!(user_b
        .take_cache()
        .unwrap()
        .lookup("iran", &flow.app)
        .is_some());
}
