//! Robustness: every packet-consuming component in the system must be a
//! total function over arbitrary wire bytes — middleboxes and endpoints
//! face attacker-controlled input by definition.

use proptest::prelude::*;
use std::net::Ipv4Addr;

use liberate_dpi::device::DpiDevice;
use liberate_dpi::profiles::{gfc_device, iran_device, testbed_device, tmus_device};
use liberate_dpi::proxy::{ProxyConfig, TransparentProxy};
use liberate_netsim::element::{Effects, PathElement};
use liberate_netsim::filter::FilterPolicy;
use liberate_netsim::firewall::StatefulFirewall;
use liberate_netsim::hop::RouterHop;
use liberate_netsim::os::{OsKind, OsProfile};
use liberate_netsim::server::{ServerHost, SinkApp};
use liberate_netsim::time::SimTime;
use liberate_packet::flow::Direction;

/// Arbitrary bytes, with a bias toward things that *almost* parse: real
/// packet prefixes with tails fuzzed.
fn wire_bytes() -> impl Strategy<Value = Vec<u8>> {
    let raw = proptest::collection::vec(any::<u8>(), 0..200);
    let near_ip = proptest::collection::vec(any::<u8>(), 20..120).prop_map(|mut v| {
        v[0] = 0x45; // looks like IPv4 with IHL 5
        v[9] = if v[9] % 2 == 0 { 6 } else { 17 };
        v
    });
    let real_mutated = (
        proptest::collection::vec(any::<u8>(), 1..64),
        any::<u16>(),
        any::<u8>(),
    )
        .prop_map(|(payload, ports, flip)| {
            let mut wire = liberate_packet::packet::Packet::tcp(
                Ipv4Addr::new(10, 0, 0, 2),
                Ipv4Addr::new(203, 0, 113, 10),
                ports | 1,
                80,
                1,
                1,
                payload,
            )
            .serialize();
            let idx = flip as usize % wire.len();
            wire[idx] ^= 0xa5;
            wire
        });
    prop_oneof![raw, near_ip, real_mutated]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dpi_devices_total_on_garbage(
        packets in proptest::collection::vec((wire_bytes(), any::<bool>()), 1..24)
    ) {
        for config in [testbed_device(), tmus_device(), gfc_device(0), iran_device()] {
            let mut dev = DpiDevice::new(config);
            let mut fx = Effects::default();
            for (i, (wire, c2s)) in packets.iter().enumerate() {
                let dir = if *c2s {
                    Direction::ClientToServer
                } else {
                    Direction::ServerToClient
                };
                let _ = dev.process(SimTime::from_micros(i as u64), dir, wire.clone().into(), &mut fx);
            }
        }
    }

    #[test]
    fn proxy_total_on_garbage(
        packets in proptest::collection::vec((wire_bytes(), any::<bool>()), 1..24)
    ) {
        let mut proxy = TransparentProxy::new(ProxyConfig::stream_saver());
        let mut fx = Effects::default();
        for (i, (wire, c2s)) in packets.iter().enumerate() {
            let dir = if *c2s {
                Direction::ClientToServer
            } else {
                Direction::ServerToClient
            };
            let _ = proxy.process(SimTime::from_micros(i as u64), dir, wire.clone().into(), &mut fx);
        }
    }

    #[test]
    fn endpoints_and_hops_total_on_garbage(
        packets in proptest::collection::vec(wire_bytes(), 1..24)
    ) {
        let mut server = ServerHost::new(
            Ipv4Addr::new(203, 0, 113, 10),
            OsProfile::new(OsKind::Windows),
            Box::<SinkApp>::default(),
        );
        let mut hop = RouterHop::new(
            "fw",
            Ipv4Addr::new(172, 16, 0, 1),
            FilterPolicy::strict_normalizer(),
        );
        let mut firewall = StatefulFirewall::new("sf", 65_535);
        let mut fx = Effects::default();
        for (i, wire) in packets.iter().enumerate() {
            let t = SimTime::from_micros(i as u64);
            server.receive(t, wire);
            let _ = hop.process(t, Direction::ClientToServer, wire.clone().into(), &mut fx);
            let _ = firewall.process(t, Direction::ServerToClient, wire.clone().into(), &mut fx);
        }
    }
}
