//! Property battery for the reactor's hierarchical timer wheel
//! (`liberate::reactor::TimerWheel`) — the structure the event-driven
//! replay engine's determinism leans on.
//!
//! The contract pinned here (and referenced from the wheel's docs):
//!
//! - `advance_to(t)` fires exactly the live entries with
//!   `deadline_us <= t` — **never early**, even for sub-tick stragglers
//!   whose tick has been reached but whose microsecond deadline has not;
//! - every batch comes back sorted by `(deadline_us, seq)`: deadline
//!   order first, insertion (FIFO) order among ties, regardless of how
//!   many slot cascades or level jumps happened in between;
//! - cancellation is exact: a cancelled entry never fires, a fired or
//!   cancelled token reports `false` on re-cancel;
//! - no entry is ever stranded: after advancing past every deadline the
//!   wheel is empty.
//!
//! Each property runs a randomized insert/cancel/advance interleaving
//! against a naive reference model (a flat vector, filtered and sorted),
//! with deadline and advance magnitudes drawn from every level of the
//! hierarchy plus the overflow list.

use std::time::Duration;

use proptest::prelude::*;

use liberate::reactor::{TimerWheel, TICK_US};

/// One scripted wheel operation.
#[derive(Debug, Clone)]
enum Op {
    /// Park a timer `offset_us` past the highest advance target so far.
    Insert(u64),
    /// Cancel the i-th token ever issued (mod tokens issued).
    Cancel(usize),
    /// Advance the wheel `delta_us` past the previous target.
    Advance(u64),
}

/// Offsets spanning every level of the hierarchy: sub-tick, level 0,
/// mid-levels, the deepest level, and past-the-top overflow. (Level `k`
/// slots span `TICK_US * 64^k` µs; six levels top out near 2^46 µs.)
fn offset() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..4 * TICK_US,
        4 * TICK_US..(1u64 << 18),
        (1u64 << 18)..(1u64 << 26),
        (1u64 << 26)..(1u64 << 34),
        (1u64 << 42)..(1u64 << 47),
    ]
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        offset().prop_map(Op::Insert),
        offset().prop_map(Op::Insert),
        (0usize..64).prop_map(Op::Cancel),
        offset().prop_map(Op::Advance),
        offset().prop_map(Op::Advance),
    ]
}

/// The reference model: issued tokens with their deadlines, minus what
/// fired or was cancelled.
#[derive(Default)]
struct Model {
    /// Live `(deadline_us, seq)` entries.
    live: Vec<(u64, u64)>,
    issued: Vec<u64>,
    target: u64,
}

impl Model {
    fn fire_until(&mut self, t: u64) -> Vec<(u64, u64)> {
        let (mut fired, keep): (Vec<_>, Vec<_>) = self
            .live
            .drain(..)
            .partition(|&(deadline, _)| deadline <= t);
        self.live = keep;
        fired.sort_unstable();
        fired
    }
}

proptest! {
    /// Any interleaving of inserts, cancels, and advances fires exactly
    /// the model's entries, in `(deadline, seq)` order, never early —
    /// and a final advance past every deadline drains the wheel dry.
    #[test]
    fn wheel_matches_reference_model(ops in proptest::collection::vec(op(), 1..48)) {
        let mut wheel = TimerWheel::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::Insert(offset) => {
                    let deadline = model.target + offset;
                    let seq = wheel.insert(deadline, model.issued.len(), Duration::ZERO);
                    model.live.push((deadline, seq));
                    model.issued.push(seq);
                }
                Op::Cancel(i) => {
                    if model.issued.is_empty() {
                        continue;
                    }
                    let seq = model.issued[i % model.issued.len()];
                    let was_live = model.live.iter().any(|&(_, s)| s == seq);
                    prop_assert_eq!(
                        wheel.cancel(seq),
                        was_live,
                        "cancel({}) disagrees with the model", seq
                    );
                    model.live.retain(|&(_, s)| s != seq);
                }
                Op::Advance(delta) => {
                    model.target += delta;
                    let fired: Vec<(u64, u64)> = wheel
                        .advance_to(model.target)
                        .iter()
                        .map(|f| (f.deadline_us, f.seq))
                        .collect();
                    for &(deadline, _) in &fired {
                        prop_assert!(
                            deadline <= model.target,
                            "fired early: deadline {} > target {}", deadline, model.target
                        );
                    }
                    prop_assert_eq!(fired, model.fire_until(model.target));
                }
            }
            prop_assert_eq!(wheel.len(), model.live.len(), "live-count drift");
        }
        // Nothing strands: one jump past every deadline drains the wheel.
        let fired = wheel.advance_to(u64::MAX / 2);
        let mut rest = model.fire_until(u64::MAX / 2);
        rest.sort_unstable();
        let got: Vec<(u64, u64)> = fired.iter().map(|f| (f.deadline_us, f.seq)).collect();
        prop_assert_eq!(got, rest);
        prop_assert!(wheel.is_empty(), "entries stranded after the final drain");
    }

    /// FIFO tie-breaking is stable: N entries parked on one shared
    /// deadline fire in exactly their insertion order, wherever that
    /// deadline lands in the hierarchy and however the advance reaches it.
    #[test]
    fn equal_deadlines_fire_in_insertion_order(
        deadline in offset(),
        n in 2usize..24,
        stop_short in any::<bool>(),
    ) {
        let mut wheel = TimerWheel::new();
        let seqs: Vec<u64> = (0..n)
            .map(|task| wheel.insert(deadline, task, Duration::ZERO))
            .collect();
        if stop_short && deadline > 0 {
            // Walk up to just before the deadline first: crossing ticks
            // and cascades must not reorder or release anything.
            prop_assert!(wheel.advance_to(deadline - 1).is_empty());
        }
        let fired = wheel.advance_to(deadline);
        prop_assert_eq!(fired.len(), n);
        for (f, &seq) in fired.iter().zip(&seqs) {
            prop_assert_eq!(f.seq, seq, "FIFO order broken at a shared deadline");
        }
        prop_assert!(wheel.is_empty());
    }
}

/// Cascade boundaries, exhaustively: entries parked at `64^k`-tick block
/// edges (the instants where a slot's entries re-file one level down)
/// must fire exactly on time when the advance stops one microsecond
/// short, exactly on, and just past each edge.
#[test]
fn cascade_edges_never_fire_early_or_strand() {
    for k in 1..6u32 {
        let edge = 64u64.pow(k) * TICK_US;
        for delta in [0u64, 1, 17, TICK_US - 1, TICK_US] {
            let deadline = edge + delta;
            let mut wheel = TimerWheel::new();
            wheel.insert(deadline, 0, Duration::ZERO);
            assert!(
                wheel.advance_to(deadline - 1).is_empty(),
                "level-{k} edge +{delta}: fired a microsecond early"
            );
            let fired = wheel.advance_to(deadline);
            assert_eq!(
                fired.len(),
                1,
                "level-{k} edge +{delta}: stranded across the cascade"
            );
            assert_eq!(fired[0].deadline_us, deadline);
            assert!(wheel.is_empty());
        }
    }
}
