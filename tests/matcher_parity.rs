//! Matcher parity: the compiled Aho–Corasick automaton must be
//! byte-identical to the naive rescanning matcher — same verdicts, same
//! events, same injected effects, same accounting — across every DPI
//! profile (all three `ReassemblyMode` families) and through the pooled
//! engine at 1 and 4 workers. The automaton is the default; the naive
//! scanner survives as the reference model this test compares against.

use std::net::Ipv4Addr;

use liberate::characterize::{characterize, CharacterizeOpts};
use liberate::config::LiberateConfig;
use liberate::detect::Signal;
use liberate::engine::{characterize_parallel, SessionPool};
use liberate::replay::Session;
use liberate_dpi::automaton::MatcherKind;
use liberate_dpi::device::{DpiConfig, DpiDevice};
use liberate_dpi::profiles::{gfc_device, iran_device, testbed_device, tmus_device, EnvKind};
use liberate_netsim::element::{Effects, PathElement};
use liberate_netsim::os::OsKind;
use liberate_netsim::time::SimTime;
use liberate_packet::flow::Direction;
use liberate_packet::packet::Packet;
use liberate_packet::tcp::TcpFlags;
use liberate_traces::apps;

const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const S: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);

/// One scripted wire packet: (seconds, direction, bytes).
type Step = (u64, Direction, Vec<u8>);

fn syn(port: u16, seq: u32) -> Step {
    (
        0,
        Direction::ClientToServer,
        Packet::tcp(C, S, port, 80, seq, 0, vec![])
            .with_flags(TcpFlags::SYN)
            .serialize(),
    )
}

fn data_at(t: u64, port: u16, seq: u32, payload: &[u8]) -> Step {
    (
        t,
        Direction::ClientToServer,
        Packet::tcp(C, S, port, 80, seq, 1, payload.to_vec()).serialize(),
    )
}

fn server_data(t: u64, port: u16, seq: u32, payload: &[u8]) -> Step {
    (
        t,
        Direction::ServerToClient,
        Packet::tcp(S, C, 80, port, seq, 1, payload.to_vec()).serialize(),
    )
}

fn rst(t: u64, port: u16, seq: u32) -> Step {
    (
        t,
        Direction::ClientToServer,
        Packet::tcp(C, S, port, 80, seq, 0, vec![])
            .with_flags(TcpFlags::RST)
            .serialize(),
    )
}

/// The adversarial traffic menu: every reassembly edge the streaming
/// matcher must survive, over several flows (one client port each).
/// The matching keyword is `cloudfront.net` (testbed/T-Mobile),
/// `economist.com` (GFC), `facebook.com` (Iran) — each scenario embeds
/// all three so the same script exercises every profile.
fn scenarios() -> Vec<(&'static str, Vec<Step>)> {
    let host = b"GET /v HTTP/1.1\r\nHost: x.cloudfront.net economist.com facebook.com\r\n\r\n";
    let mut out = Vec::new();

    // In-order, single segment.
    out.push((
        "in-order",
        vec![syn(40_000, 100), data_at(1, 40_000, 101, host)],
    ));

    // Keyword split across a segment boundary (mid-"cloudfront.net",
    // mid-"economist.com", mid-"facebook.com" all covered by the cut).
    let cut = 30usize;
    out.push((
        "split-keyword",
        vec![
            syn(40_001, 200),
            data_at(1, 40_001, 201, &host[..cut]),
            data_at(2, 40_001, 201 + cut as u32, &host[cut..]),
        ],
    ));

    // Out-of-order: the tail arrives first, the head fills the hole.
    out.push((
        "out-of-order-hole",
        vec![
            syn(40_002, 300),
            data_at(1, 40_002, 301 + cut as u32, &host[cut..]),
            data_at(2, 40_002, 301, &host[..cut]),
        ],
    ));

    // Duplicate retransmissions, including a same-offset rewrite attempt.
    out.push((
        "duplicate-retransmit",
        vec![
            syn(40_003, 400),
            data_at(1, 40_003, 401, &host[..cut]),
            data_at(2, 40_003, 401, &host[..cut]),
            data_at(3, 40_003, 401, &vec![b'Z'; cut]),
            data_at(4, 40_003, 401 + cut as u32, &host[cut..]),
        ],
    ));

    // First-wins overlap decoy: an inert segment claims the keyword's
    // sequence range before the real bytes arrive (§4.3), plus a
    // retroactive overlap that rewrites already-contiguous bytes.
    out.push((
        "overlap-decoy",
        vec![
            syn(40_004, 500),
            data_at(1, 40_004, 501, b"GET /v HTTP/1.1\r\nHost: x."),
            data_at(
                2,
                40_004,
                526 + 10,
                b"ont.net economist.com facebook.com\r\n\r\n",
            ),
            data_at(3, 40_004, 526, b"XXXXXXXXXXXXXX"), // overlaps both neighbors
            data_at(4, 40_004, 526, b"cloudfr"),        // loses to the decoy
        ],
    ));

    // Gate breaker: one junk byte first, protocol bytes afterwards.
    out.push((
        "gate-fail",
        vec![
            syn(40_005, 600),
            data_at(1, 40_005, 601, b"X"),
            data_at(2, 40_005, 602, host),
        ],
    ));

    // Long non-matching flow with server chatter: nothing ever fires.
    let mut steps = vec![syn(40_006, 700)];
    let mut seq = 701u32;
    for i in 0..8u64 {
        let filler = format!("GET /chunk{i} HTTP/1.1\r\nHost: benign.example.net\r\n\r\n");
        steps.push(data_at(1 + i, 40_006, seq, filler.as_bytes()));
        seq += filler.len() as u32;
        steps.push(server_data(
            1 + i,
            40_006,
            9_000 + 100 * i as u32,
            b"HTTP/1.1 200 OK\r\n\r\n",
        ));
    }
    out.push(("non-matching-stream", steps));

    // RST mid-flow before the keyword arrives (flushes or shortens state
    // depending on the profile).
    out.push((
        "rst-mid-flow",
        vec![
            syn(40_007, 800),
            data_at(1, 40_007, 801, &host[..cut]),
            rst(2, 40_007, 801 + cut as u32),
            data_at(3, 40_007, 801 + cut as u32, &host[cut..]),
        ],
    ));

    // Position-constrained rule: the STUN attribute in the first client
    // payload packet (fires on the testbed only), then again too late.
    out.push((
        "position-rule",
        vec![
            syn(40_008, 900),
            data_at(1, 40_008, 901, &[0x00, 0x01, 0x00, 0x00, 0x80, 0x55]),
        ],
    ));
    out.push((
        "position-rule-too-late",
        vec![
            syn(40_009, 1000),
            data_at(1, 40_009, 1001, &[0x00, 0x01, 0x00, 0x00]),
            data_at(2, 40_009, 1005, &[0x80, 0x55]),
        ],
    ));

    // Out-of-window sequence jump (wrong-seq inert packet) then in-window.
    out.push((
        "out-of-window-seq",
        vec![
            syn(40_010, 1100),
            data_at(1, 40_010, 1101u32.wrapping_add(1_000_000), b"GET /evil"),
            data_at(2, 40_010, 1101, host),
        ],
    ));

    out
}

/// Feed every scenario through a naive and an automaton device built
/// from the same profile; verdicts, injected effects, events, accounting
/// and the final classification must be identical packet for packet.
fn assert_device_parity(profile: &str, config: DpiConfig) {
    let mut naive_cfg = config.clone();
    naive_cfg.matcher = MatcherKind::NaiveRescan;
    let mut auto_cfg = config;
    auto_cfg.matcher = MatcherKind::Automaton;
    let mut naive = DpiDevice::new(naive_cfg);
    let mut auto = DpiDevice::new(auto_cfg);

    for (name, steps) in scenarios() {
        for (i, (secs, dir, wire)) in steps.into_iter().enumerate() {
            let at = SimTime::from_secs(secs);
            let mut fx_n = Effects::default();
            let mut fx_a = Effects::default();
            let v_n = naive.process(at, dir, wire.clone().into(), &mut fx_n);
            let v_a = auto.process(at, dir, wire.into(), &mut fx_a);
            assert_eq!(v_n, v_a, "{profile}/{name}: verdict diverges at packet {i}");
            assert_eq!(
                format!("{fx_n:?}"),
                format!("{fx_a:?}"),
                "{profile}/{name}: injected effects diverge at packet {i}"
            );
        }
        assert_eq!(
            naive.events, auto.events,
            "{profile}/{name}: classification events diverge"
        );
        assert_eq!(
            (naive.billed_bytes, naive.zero_rated_bytes),
            (auto.billed_bytes, auto.zero_rated_bytes),
            "{profile}/{name}: accounting diverges"
        );
    }
    assert!(
        !auto.events.is_empty(),
        "{profile}: the scenario menu should classify something somewhere"
    );
}

#[test]
fn testbed_gated_per_packet_parity() {
    assert_device_parity("testbed", testbed_device());
}

#[test]
fn tmobile_gated_stream_parity() {
    assert_device_parity("tmobile", tmus_device());
}

#[test]
fn gfc_full_stream_parity() {
    assert_device_parity("gfc", gfc_device(3 * 3600));
}

#[test]
fn iran_per_packet_parity() {
    assert_device_parity("iran", iran_device());
}

/// Engine-level parity: within each execution mode (solo session, pool
/// at 1 worker, pool at 4 workers), characterization discovers the same
/// matching fields in the same number of rounds whichever matcher runs,
/// for every profiled environment. Modes are compared matcher-vs-matcher
/// rather than against each other: the pooled characterizer is allowed
/// to segment fields differently from the solo one, but the matcher
/// swap must never change the outcome of any mode.
///
/// The GFC environment is pinned solo and at 1 worker only: its pooled
/// multi-worker characterization is scheduling-dependent run to run
/// (reproducible on the pre-automaton tree with the naive matcher, so
/// it is an engine property, not a matcher one) and therefore cannot be
/// compared head-to-head across matchers. Re-measured post-automaton
/// (2026-08): six back-to-back 4-worker runs still drift by a few
/// hundred rounds, so the caveat stands; see DESIGN.md "Deployment at
/// scale" for the penalty-box interleaving mechanism, and
/// `gfc_pooled_fields_are_valid_at_4_workers` below for the invariant
/// that IS stable.
#[test]
fn characterization_is_matcher_invariant_at_1_and_4_workers() {
    let envs = [
        (
            EnvKind::Testbed,
            apps::amazon_prime_http(8_000),
            &[1usize, 4][..],
        ),
        (EnvKind::TMobile, apps::spotify_http(8_000), &[1, 4][..]),
        (EnvKind::Gfc, apps::economist_http(), &[1][..]),
        (EnvKind::Iran, apps::facebook_http(), &[1, 4][..]),
    ];
    let opts = CharacterizeOpts::default();
    let solo =
        |kind: EnvKind, trace: &liberate_traces::recorded::RecordedTrace, matcher: MatcherKind| {
            let mut session = Session::new(kind, OsKind::Linux, LiberateConfig::default());
            session
                .env
                .dpi_mut()
                .expect("profiled env has a DPI device")
                .config
                .matcher = matcher;
            let c = characterize(&mut session, trace, &Signal::Readout, &opts);
            let fields: Vec<String> = c.fields.iter().map(|f| f.as_text()).collect();
            (fields, c.rounds)
        };
    let pooled = |kind: EnvKind,
                  trace: &liberate_traces::recorded::RecordedTrace,
                  matcher: MatcherKind,
                  workers: usize| {
        let mut pool = SessionPool::new(kind, OsKind::Linux, LiberateConfig::default(), workers);
        for w in 0..workers {
            pool.session_mut(w)
                .env
                .dpi_mut()
                .expect("profiled env has a DPI device")
                .config
                .matcher = matcher;
        }
        let c = characterize_parallel(&mut pool, trace, &Signal::Readout, &opts);
        let fields: Vec<String> = c.fields.iter().map(|f| f.as_text()).collect();
        (fields, c.rounds)
    };
    for (kind, trace, worker_counts) in envs {
        let naive = solo(kind, &trace, MatcherKind::NaiveRescan);
        assert!(
            !naive.0.is_empty(),
            "{}: characterization should find matching fields",
            kind.name()
        );
        assert_eq!(
            solo(kind, &trace, MatcherKind::Automaton),
            naive,
            "{}: solo characterization diverges between matchers",
            kind.name()
        );
        for &workers in worker_counts {
            assert_eq!(
                pooled(kind, &trace, MatcherKind::Automaton, workers),
                pooled(kind, &trace, MatcherKind::NaiveRescan, workers),
                "{}: pooled characterization at {workers} workers diverges between matchers",
                kind.name()
            );
        }
    }
}

/// GFC at 4 workers, the regression test that survives the scheduling
/// caveat above: whichever exact field segmentation a pooled run lands
/// on, the *published entry as a whole* must be valid — a fresh session
/// replaying the trace with every cached field blinded together must
/// escape classification, while the unmodified trace still classifies —
/// for both matchers. (Per-field gating is NOT the invariant here: GFC's
/// keyword coverage is redundant, so blinding any one field leaves the
/// rule firing even for a solo characterization. `RuleCache::verify`'s
/// per-field check therefore reports GFC entries stale by design; the
/// collective blind below is the contract community rule sharing
/// actually needs from a published entry.)
#[test]
fn gfc_pooled_fields_are_valid_at_4_workers() {
    use liberate::cache::{CachedRules, RuleCache};
    use liberate::detect::probe;
    use liberate::replay::ReplayOpts;

    let trace = apps::economist_http();
    let opts = CharacterizeOpts::default();
    for matcher in [MatcherKind::NaiveRescan, MatcherKind::Automaton] {
        let mut pool = SessionPool::new(EnvKind::Gfc, OsKind::Linux, LiberateConfig::default(), 4);
        for w in 0..4 {
            pool.session_mut(w).env.dpi_mut().unwrap().config.matcher = matcher;
        }
        let c = characterize_parallel(&mut pool, &trace, &Signal::Readout, &opts);
        assert!(
            !c.fields.is_empty(),
            "{matcher:?}: pooled GFC characterization should find fields"
        );

        // Round-trip through the cache so the check covers what a second
        // user would actually fetch, not the in-memory characterization.
        let mut cache = RuleCache::new();
        cache.publish("gfc", &trace.app, CachedRules::from_characterization(&c, 0));
        let cached = cache.lookup("gfc", &trace.app).expect("just published");
        let mut blinded = trace.clone();
        for f in &cached.fields {
            assert!(
                f.end <= blinded.messages[f.message].payload.len(),
                "{matcher:?}: cached field {}..{} overruns message {}",
                f.start,
                f.end,
                f.message
            );
            liberate_packet::mutate::invert_range(
                &mut blinded.messages[f.message].payload,
                f.start..f.end,
            );
        }

        let mut fresh = Session::new(EnvKind::Gfc, OsKind::Linux, LiberateConfig::default());
        fresh.env.dpi_mut().unwrap().config.matcher = matcher;
        let (_, clean_classified) = probe(
            &mut fresh,
            &blinded,
            &ReplayOpts::default(),
            &Signal::Readout,
        );
        assert!(
            !clean_classified,
            "{matcher:?}: blinding every cached field together must defeat the rule"
        );
        let (_, still_classified) =
            probe(&mut fresh, &trace, &ReplayOpts::default(), &Signal::Readout);
        assert!(
            still_classified,
            "{matcher:?}: the unmodified trace must still classify (the rule is real)"
        );
    }
}
