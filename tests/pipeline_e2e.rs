//! End-to-end pipeline tests: lib·erate's four phases run unmodified
//! against each environment and land on the outcomes §6 reports.

use liberate::prelude::*;
use liberate_traces::apps;

fn session(kind: EnvKind) -> Session {
    Session::new(kind, OsKind::Linux, LiberateConfig::default())
}

#[test]
fn gfc_pipeline_finds_an_evasion() {
    let mut s = session(EnvKind::Gfc);
    let copts = CharacterizeOpts {
        rotate_server_ports: true,
        ..Default::default()
    };
    let report = run_pipeline(&mut s, &apps::economist_http(), &copts).unwrap();
    assert!(report.detection.blocking);
    assert_eq!(report.localization.unwrap().middlebox_ttl, Some(10));
    let chosen = report.chosen.expect("GFC is evadable");
    assert_eq!(chosen.cc, Some(true));
    assert!(chosen.app_intact);
    // The fields include the censored hostname.
    let fields: String = report
        .characterization
        .unwrap()
        .fields
        .iter()
        .map(|f| f.as_text())
        .collect();
    assert!(fields.contains("economist"));
}

#[test]
fn iran_pipeline_lands_on_splitting() {
    let mut s = session(EnvKind::Iran);
    let report =
        run_pipeline(&mut s, &apps::facebook_http(), &CharacterizeOpts::default()).unwrap();
    assert!(report.detection.blocking);
    assert!(
        report
            .characterization
            .as_ref()
            .unwrap()
            .position
            .matches_all_packets
    );
    let chosen = report.chosen.expect("Iran is evadable");
    // An all-packets classifier leaves only splitting/reordering (§5.2).
    assert!(matches!(
        chosen.effective,
        Technique::TcpSegmentSplit { .. } | Technique::TcpSegmentReorder { .. }
    ));
}

#[test]
fn tmobile_pipeline_beats_zero_rating() {
    let mut s = session(EnvKind::TMobile);
    let report = run_pipeline(
        &mut s,
        &apps::amazon_prime_http(400_000),
        &CharacterizeOpts::default(),
    )
    .unwrap();
    assert!(report.detection.zero_rating);
    assert_eq!(report.localization.unwrap().middlebox_ttl, Some(3));
    let chosen = report.chosen.expect("T-Mobile is evadable");
    assert_eq!(chosen.cc, Some(true));
}

#[test]
fn att_pipeline_finds_no_packet_level_technique() {
    let mut s = session(EnvKind::Att);
    let report = run_pipeline(
        &mut s,
        &apps::nbcsports_http(600_000),
        &CharacterizeOpts::default(),
    )
    .unwrap();
    assert!(report.detection.throttling);
    assert!(
        report.chosen.is_none(),
        "a terminating proxy defeats all packet-level techniques"
    );
}

#[test]
fn sprint_pipeline_reports_no_differentiation() {
    let mut s = session(EnvKind::Sprint);
    let err = run_pipeline(
        &mut s,
        &apps::amazon_prime_http(400_000),
        &CharacterizeOpts::default(),
    )
    .unwrap_err();
    assert_eq!(err, LiberateError::NoDifferentiation);
}

#[test]
fn server_supported_dummy_prefix_beats_gfc_testbed_tmobile() {
    // §1: "inserting even one packet carrying dummy traffic (that is
    // ignored by the server) at the beginning of a flow evades
    // classification in our testbed, T-Mobile, AT&T, and the GFC."
    for (kind, trace) in [
        (EnvKind::Testbed, apps::amazon_prime_http(300_000)),
        (EnvKind::TMobile, apps::amazon_prime_http(300_000)),
        (EnvKind::Gfc, apps::economist_http()),
    ] {
        let mut s = session(kind);
        let ctx = EvasionContext::blind(Vec::new(), s.env.hops_before_middlebox + 1);
        let out = s
            .replay_with(
                &trace,
                &Technique::DummyPrefixData { bytes: 1 },
                &ctx,
                &ReplayOpts::default(),
            )
            .unwrap();
        assert!(
            !out.blocked() && out.complete && out.integrity_ok,
            "{kind:?}: {out:?}"
        );
        // And it genuinely changed classification where we can read it.
        if kind == EnvKind::Testbed {
            let key = liberate_packet::flow::FlowKey::new(
                liberate_dpi::profiles::CLIENT_ADDR,
                liberate_dpi::profiles::SERVER_ADDR,
                out.client_port,
                out.server_port,
                6,
            );
            assert_eq!(s.env.dpi_mut().unwrap().classification_of(key), None);
        }
    }
}

#[test]
fn adaptation_loop_survives_rule_change() {
    // Condensed version of the §4.2 adaptation story at the integration
    // level: learn, get countered, re-learn.
    let s = session(EnvKind::Testbed);
    let mut proxy = LiberateProxy::new(s, CharacterizeOpts::default());
    let trace = apps::amazon_prime_http(1_200_000);
    proxy.run_flow(&trace).unwrap();
    let first = proxy.active_technique().unwrap().effective.clone();

    // Countermeasure: the decoy class is blacklisted.
    {
        let dpi = proxy.session.env.dpi_mut().unwrap();
        dpi.config.policies.insert(
            "web".into(),
            liberate_dpi::actions::Policy::throttle(1_500_000, 420_000),
        );
        dpi.reset();
    }
    let adapted = proxy.run_flow(&trace).unwrap();
    assert!(adapted.recharacterized);
    assert_ne!(proxy.active_technique().unwrap().effective, first);
}
