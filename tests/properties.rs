//! Property-based tests over the core data structures and invariants,
//! spanning crates.

use proptest::prelude::*;

use liberate::prelude::*;
use liberate_packet::fragment::{fragment_packet, OverlapPolicy, Reassembler};
use liberate_packet::packet::{Packet, ParsedPacket};
use liberate_packet::validate::is_well_formed;
use liberate_traces::recorded::{RecordedTrace, TraceMessage, TraceProtocol};
use std::net::Ipv4Addr;

fn addr() -> impl Strategy<Value = Ipv4Addr> {
    (1u8..=254, 0u8..=255, 0u8..=255, 1u8..=254).prop_map(|(a, b, c, d)| Ipv4Addr::new(a, b, c, d))
}

proptest! {
    /// Any default-crafted TCP packet serializes to well-formed wire bytes
    /// and parses back to the same endpoints, ports, seq, and payload.
    #[test]
    fn tcp_serialize_parse_roundtrip(
        src in addr(),
        dst in addr(),
        sport in 1u16..65535,
        dport in 1u16..65535,
        seq in any::<u32>(),
        ack in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let pkt = Packet::tcp(src, dst, sport, dport, seq, ack, payload.clone());
        let wire = pkt.serialize();
        prop_assert!(is_well_formed(&wire), "defects: {:?}",
            liberate_packet::validate::validate_wire(&wire));
        let parsed = ParsedPacket::parse(&wire).unwrap();
        prop_assert_eq!(parsed.ip.src, src);
        prop_assert_eq!(parsed.ip.dst, dst);
        prop_assert_eq!(parsed.src_port(), Some(sport));
        prop_assert_eq!(parsed.dst_port(), Some(dport));
        prop_assert_eq!(parsed.tcp().unwrap().seq, seq);
        prop_assert_eq!(parsed.payload, payload);
    }

    /// UDP round-trip with well-formedness.
    #[test]
    fn udp_serialize_parse_roundtrip(
        src in addr(),
        dst in addr(),
        sport in 1u16..65535,
        dport in 1u16..65535,
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        let pkt = Packet::udp(src, dst, sport, dport, payload.clone());
        let wire = pkt.serialize();
        prop_assert!(is_well_formed(&wire));
        let parsed = ParsedPacket::parse(&wire).unwrap();
        prop_assert_eq!(parsed.payload, payload);
    }

    /// Fragmentation then reassembly recovers the original payload, for
    /// any fragment size and any delivery order.
    #[test]
    fn fragment_reassembly_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 1..4096),
        chunk in 8usize..1024,
        reverse in any::<bool>(),
    ) {
        let mut pkt = Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1, 2, 0, 0, payload,
        );
        pkt.ip.identification = 7;
        let wire = pkt.serialize();
        let mut frags = fragment_packet(&wire, chunk);
        if reverse {
            frags.reverse();
        }
        let mut reasm = Reassembler::new(OverlapPolicy::FirstWins);
        let mut done = None;
        for f in &frags {
            if let Some(whole) = reasm.push(f) {
                done = Some(whole);
            }
        }
        let done = done.expect("reassembly completes");
        let orig = ParsedPacket::parse(&wire).unwrap();
        let got = ParsedPacket::parse(&done).unwrap();
        prop_assert_eq!(orig.payload, got.payload);
        prop_assert!(is_well_formed(&done));
    }

    /// Splitting a payload across a field always (a) reassembles exactly,
    /// (b) produces monotonically increasing offsets, and (c) puts the
    /// final boundary strictly inside the field when geometrically
    /// possible.
    #[test]
    fn split_across_field_invariants(
        payload in proptest::collection::vec(any::<u8>(), 2..4096),
        field_start in 0usize..4096,
        field_len in 1usize..64,
        n in 2usize..10,
    ) {
        let field = field_start.min(payload.len().saturating_sub(1))
            ..(field_start + field_len).min(payload.len());
        let parts = liberate::evasion::split_across_field_for_tests(&payload, &field, n);
        // Exact reassembly at stated offsets.
        let mut whole = Vec::new();
        for (off, chunk) in &parts {
            prop_assert_eq!(*off, whole.len());
            whole.extend_from_slice(chunk);
        }
        prop_assert_eq!(whole, payload.clone());
        // If the field is at least 2 bytes and interior, the last boundary
        // splits it.
        if parts.len() >= 2 && field.len() >= 2 && field.start > 0 && field.end < payload.len() {
            let last = parts.last().unwrap().0;
            prop_assert!(field.start < last && last < field.end,
                "boundary {} not inside {:?}", last, field);
        }
    }

    /// Every technique's schedule rewrite preserves the client byte stream
    /// (counts-true bytes) — evasion must never corrupt application data.
    #[test]
    fn transforms_preserve_client_stream(
        body in proptest::collection::vec(any::<u8>(), 1..2000),
        seed in any::<u8>(),
    ) {
        let mut trace = RecordedTrace::new("p", TraceProtocol::Tcp, 80);
        let mut head = b"GET / HTTP/1.1\r\nHost: target.example\r\n\r\n".to_vec();
        head.extend_from_slice(&body);
        trace.push_message(TraceMessage::client(head));
        trace.push_message(TraceMessage::server(&b"HTTP/1.1 200 OK\r\n\r\nok"[..]));

        let ctx = EvasionContext {
            matching_fields: vec![liberate_packet::mutate::ByteRegion::new(
                0,
                22..36, // "target.example"
            )],
            decoy: decoy_request(),
            middlebox_ttl: 1 + (seed % 10),
        };
        let base = Schedule::from_trace(&trace);
        for technique in Technique::table3_rows() {
            let Some(out) = technique.apply(&base, &ctx) else { continue };
            // Reconstruct the client stream from counts-true packets by
            // offset order.
            let mut pkts: Vec<(u64, Vec<u8>)> = out
                .steps
                .iter()
                .filter_map(|s| match s {
                    Step::Packet(p) if p.counts => Some((p.offset, p.payload.clone())),
                    _ => None,
                })
                .collect();
            pkts.sort_by_key(|(off, _)| *off);
            let mut stream = Vec::new();
            for (off, chunk) in pkts {
                prop_assert_eq!(off as usize, stream.len(), "{:?}", technique);
                stream.extend_from_slice(&chunk);
            }
            let skip = out.server_skip_prefix as usize;
            prop_assert_eq!(&stream[skip..], &trace.client_stream()[..],
                "{:?} corrupted the stream", technique);
        }
    }

    /// The full applicability matrix: for every technique in Table 3 plus
    /// the dummy-prefix extension, on both transports, `apply()` succeeds
    /// exactly when `applicable()` says so, and every produced schedule
    /// reassembles (counts-true packets sorted by offset, minus the
    /// server-skipped prefix) to the original client byte stream.
    #[test]
    fn applicable_transforms_reassemble(
        body in proptest::collection::vec(any::<u8>(), 16..1200),
        second in proptest::collection::vec(any::<u8>(), 1..64),
        prefix in 1usize..512,
        mb_ttl in 1u8..12,
    ) {
        for proto in [TraceProtocol::Tcp, TraceProtocol::Udp] {
            let mut trace = RecordedTrace::new("m", proto, 443);
            trace.push_message(TraceMessage::client(body.clone()));
            trace.push_message(TraceMessage::server(&b"ack"[..]));
            trace.push_message(TraceMessage::client(second.clone()));
            let ctx = EvasionContext {
                matching_fields: vec![liberate_packet::mutate::ByteRegion::new(
                    0,
                    4..12,
                )],
                decoy: decoy_request(),
                middlebox_ttl: mb_ttl,
            };
            let base = Schedule::from_trace(&trace);
            let expected = trace.client_stream();

            let mut all = Technique::table3_rows();
            all.push(Technique::DummyPrefixData { bytes: prefix });
            for technique in all {
                let out = technique.apply(&base, &ctx);
                if !technique.applicable(proto) {
                    prop_assert!(out.is_none(),
                        "{:?} applied on {:?} despite applicable()=false", technique, proto);
                    continue;
                }
                let Some(out) = out else {
                    panic!("{technique:?} is applicable on {proto:?} but apply() returned None");
                };
                let mut pkts: Vec<(u64, Vec<u8>)> = out
                    .steps
                    .iter()
                    .filter_map(|s| match s {
                        Step::Packet(p) if p.counts => Some((p.offset, p.payload.clone())),
                        _ => None,
                    })
                    .collect();
                pkts.sort_by_key(|(off, _)| *off);
                let mut stream = Vec::new();
                for (off, chunk) in pkts {
                    prop_assert_eq!(off as usize, stream.len(),
                        "{:?} left a gap/overlap on {:?}", technique, proto);
                    stream.extend_from_slice(&chunk);
                }
                let skip = out.server_skip_prefix as usize;
                prop_assert!(stream.len() >= skip + expected.len());
                prop_assert_eq!(&stream[skip..], &expected[..],
                    "{:?} corrupted the {:?} stream", technique, proto);
            }
        }
    }

    /// Bit inversion is an involution on whole traces and removes every
    /// ASCII keyword.
    #[test]
    fn inversion_involution(payloads in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..256), 1..8)) {
        let mut trace = RecordedTrace::new("t", TraceProtocol::Tcp, 80);
        for p in &payloads {
            trace.push_message(TraceMessage::client(p.clone()));
        }
        let inv = inverted_trace(&trace);
        for (a, b) in trace.messages.iter().zip(&inv.messages) {
            prop_assert!(a.payload.iter().zip(&b.payload).all(|(x, y)| *x == !*y));
        }
        let back = inverted_trace(&inv);
        for (a, b) in trace.messages.iter().zip(&back.messages) {
            prop_assert_eq!(&a.payload, &b.payload);
        }
    }
}
