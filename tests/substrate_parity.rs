//! Substrate-seam parity: driving the pipeline through `dyn Substrate`
//! must be observationally identical to the direct, statically-typed
//! path. Any divergence — an extra event, a reordered probe, a drifted
//! counter — means the trait boundary leaks behavior, and a non-sim
//! backend would silently produce different science than the simulator.

use std::sync::Arc;

use liberate::prelude::*;
use liberate_dpi::profiles::EnvironmentBlueprint;
use liberate_obs::{to_jsonl, Journal};
use liberate_traces::apps;

/// Same-seed characterization through `Session<SimSubstrate>` (static)
/// and `Session<Box<dyn Substrate>>` (boxed) must export byte-identical
/// journals and identical characterization results.
#[test]
fn dyn_substrate_matches_static_at_one_worker() {
    let trace = apps::amazon_prime_http(20_000);

    let journal_static = Arc::new(Journal::new());
    let mut direct = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
    direct.attach_journal(journal_static.clone());
    let c_static = characterize(
        &mut direct,
        &trace,
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );

    let journal_dyn = Arc::new(Journal::new());
    let env: Box<dyn Substrate> = Box::new(SimSubstrate::new(EnvKind::Testbed, OsKind::Linux, 0));
    let mut boxed = Session::over(env, LiberateConfig::default());
    boxed.attach_journal(journal_dyn.clone());
    let c_dyn = characterize(
        &mut boxed,
        &trace,
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );

    assert_eq!(c_static.fields, c_dyn.fields, "matching fields must agree");
    assert_eq!(c_static.position, c_dyn.position);
    assert_eq!(c_static.rounds, c_dyn.rounds);
    assert_eq!(c_static.bytes_sent, c_dyn.bytes_sent);
    assert_eq!(c_static.bytes_received, c_dyn.bytes_received);
    assert_eq!(c_static.elapsed, c_dyn.elapsed);

    let (a, b) = (to_jsonl(&journal_static), to_jsonl(&journal_dyn));
    assert!(a == b, "journals must be byte-identical through the seam");
    assert!(a.lines().count() > 100, "the journal must be substantive");
}

/// The engine path: a 4-worker pool of boxed substrates over one shared
/// blueprint must reproduce the statically-typed pool byte for byte.
#[test]
fn dyn_substrate_matches_static_at_four_workers() {
    let trace = apps::amazon_prime_http(20_000);
    let workers = 4;

    let journal_static = Arc::new(Journal::new());
    let mut pool_static = SessionPool::new(
        EnvKind::Testbed,
        OsKind::Linux,
        LiberateConfig::default(),
        workers,
    );
    let c_static = characterize_parallel(
        &mut pool_static,
        &trace,
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );
    pool_static.merge_journals_into(&journal_static);

    let journal_dyn = Arc::new(Journal::new());
    let blueprint = EnvironmentBlueprint::new(EnvKind::Testbed, 0);
    let sessions: Vec<Session<Box<dyn Substrate>>> = (0..workers)
        .map(|w| {
            let env: Box<dyn Substrate> =
                Box::new(SimSubstrate::from_blueprint(&blueprint, OsKind::Linux));
            Session::worker_over(env, LiberateConfig::default(), w, workers)
        })
        .collect();
    let mut pool_dyn = SessionPool::from_sessions(sessions);
    let c_dyn = characterize_parallel(
        &mut pool_dyn,
        &trace,
        &Signal::Readout,
        &CharacterizeOpts::default(),
    );
    pool_dyn.merge_journals_into(&journal_dyn);

    assert_eq!(c_static.fields, c_dyn.fields);
    assert_eq!(c_static.position, c_dyn.position);
    assert_eq!(c_static.rounds, c_dyn.rounds);
    assert_eq!(c_static.bytes_sent, c_dyn.bytes_sent);
    assert_eq!(c_static.bytes_received, c_dyn.bytes_received);

    let (a, b) = (to_jsonl(&journal_static), to_jsonl(&journal_dyn));
    assert!(
        a == b,
        "4-worker journals must be byte-identical through the seam"
    );
}

/// The boxed path journals a `substrate` tag of "sim", which the JSONL
/// exporter elides (sim is the default) — so session_started lines stay
/// identical to pre-seam journals.
#[test]
fn sim_substrate_tag_is_elided_in_exports() {
    let journal = Arc::new(Journal::new());
    let env: Box<dyn Substrate> = Box::new(SimSubstrate::new(EnvKind::Testbed, OsKind::Linux, 0));
    let mut s = Session::over(env, LiberateConfig::default());
    s.attach_journal(journal.clone());
    let text = to_jsonl(&journal);
    let started = text
        .lines()
        .find(|l| l.contains("session_started"))
        .expect("session_started recorded");
    assert!(
        !started.contains("substrate"),
        "sim runs must not grow a substrate field: {started}"
    );
}
