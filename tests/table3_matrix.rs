//! The headline integration test: the full Table 3 matrix — every evasion
//! technique against every environment — must reproduce the paper
//! cell-for-cell (CC?, RS?, the AT&T column, and the per-OS server
//! response columns).

use liberate_bench::expected::OsExpect;
use liberate_bench::osmatrix::run_inert_matrix;
use liberate_bench::table3::{diff_against_paper, run_table3};

#[test]
fn table3_reproduces_cell_for_cell() {
    let measured = run_table3();
    assert_eq!(measured.len(), 26);
    let mismatches = diff_against_paper(&measured);
    assert!(
        mismatches.is_empty(),
        "{} cells diverge from the paper:\n{}",
        mismatches.len(),
        mismatches.join("\n")
    );
}

#[test]
fn os_columns_reproduce() {
    let expected = liberate_bench::expected::table3();
    for (technique, cells) in run_inert_matrix() {
        if technique == liberate::prelude::Technique::InertLowTtl {
            // In deployment the TTL-limited packet never reaches any
            // server (the paper prints "—"); the isolated OS harness has
            // no intermediate hops, so the decoy arrives as an ordinary
            // valid packet and is delivered. Both are consistent; skip.
            assert_eq!(cells, [OsExpect::Delivered; 3]);
            continue;
        }
        let row = expected
            .iter()
            .find(|r| r.technique == technique)
            .expect("every inert technique has a row");
        assert_eq!(cells, row.os, "OS columns for {technique:?}");
    }
}

#[test]
fn headline_findings_hold_in_measurements() {
    let measured = run_table3();
    let by_desc = |d: &str| {
        measured
            .iter()
            .find(|r| r.technique.description().contains(d))
            .unwrap()
    };

    // "Except for AT&T and Iran, all middleboxes in our experiments are
    // vulnerable to misclassification using TTL-limited traffic" (§1).
    let ttl = by_desc("Lower TTL");
    assert_eq!(ttl.testbed.cc, Some(true));
    assert_eq!(ttl.tmobile.cc, Some(true));
    assert_eq!(ttl.china.cc, Some(true));
    assert_eq!(ttl.iran.cc, Some(false));
    assert!(!ttl.att_cc);

    // "Reordering of TCP segments can alter classification in all
    // instances except for the GFC and AT&T" (§1).
    let reorder = by_desc("Segmented packet, out-of-order");
    assert_eq!(reorder.testbed.cc, Some(true));
    assert_eq!(reorder.tmobile.cc, Some(true));
    assert_eq!(reorder.china.cc, Some(false));
    assert_eq!(reorder.iran.cc, Some(true));
    assert!(!reorder.att_cc);

    // "We found no evidence that UDP traffic was classified by any of the
    // operational networks we tested" — the UDP rows are "—" everywhere
    // but the testbed.
    for d in ["Invalid Checksum", "UDP packets out-of-order"] {
        let row = by_desc(d);
        assert!(row.testbed.cc.is_some());
        assert_eq!(row.tmobile.cc, None);
        assert_eq!(row.china.cc, None);
        assert_eq!(row.iran.cc, None);
    }
}
