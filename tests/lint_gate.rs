//! Tier-1 gate: the workspace must lint clean.
//!
//! Runs the `liberate-lint` rules in-process over the repository and
//! fails on any diagnostic, so `cargo test -q` enforces the domain
//! invariants (checksum repair, taxonomy exhaustiveness, determinism,
//! no-panic) on every change. Run `liberate-lint explain <rule>` for the
//! rationale behind a failure, or add a `// lint: allow(<rule>)`
//! annotation where the violation is intentional.

use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = liberate_lint::lint_workspace(root).expect("lint walk succeeds");
    assert!(
        diags.is_empty(),
        "liberate-lint found {} diagnostic(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn json_report_is_machine_readable() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = liberate_lint::lint_workspace(root).expect("lint walk succeeds");
    let json = liberate_lint::to_json(&diags);
    assert!(json.starts_with("{\"count\":"));
    assert!(json.contains("\"diagnostics\":["));
}

#[test]
fn every_rule_has_an_explanation() {
    for rule in liberate_lint::rule_names() {
        assert!(
            liberate_lint::explain(rule).is_some(),
            "rule {rule} lacks explain text"
        );
    }
}
