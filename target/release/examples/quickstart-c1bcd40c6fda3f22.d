/root/repo/target/release/examples/quickstart-c1bcd40c6fda3f22.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-c1bcd40c6fda3f22: examples/quickstart.rs

examples/quickstart.rs:
