/root/repo/target/release/deps/liberate_lint-ecbfb7d6b0569637.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/items.rs crates/lint/src/lexer.rs crates/lint/src/rules/mod.rs crates/lint/src/rules/checksum_repair.rs crates/lint/src/rules/determinism.rs crates/lint/src/rules/no_panic.rs crates/lint/src/rules/taxonomy.rs

/root/repo/target/release/deps/libliberate_lint-ecbfb7d6b0569637.rlib: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/items.rs crates/lint/src/lexer.rs crates/lint/src/rules/mod.rs crates/lint/src/rules/checksum_repair.rs crates/lint/src/rules/determinism.rs crates/lint/src/rules/no_panic.rs crates/lint/src/rules/taxonomy.rs

/root/repo/target/release/deps/libliberate_lint-ecbfb7d6b0569637.rmeta: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/items.rs crates/lint/src/lexer.rs crates/lint/src/rules/mod.rs crates/lint/src/rules/checksum_repair.rs crates/lint/src/rules/determinism.rs crates/lint/src/rules/no_panic.rs crates/lint/src/rules/taxonomy.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/items.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules/mod.rs:
crates/lint/src/rules/checksum_repair.rs:
crates/lint/src/rules/determinism.rs:
crates/lint/src/rules/no_panic.rs:
crates/lint/src/rules/taxonomy.rs:
