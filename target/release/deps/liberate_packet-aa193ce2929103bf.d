/root/repo/target/release/deps/liberate_packet-aa193ce2929103bf.d: crates/packet/src/lib.rs crates/packet/src/checksum.rs crates/packet/src/flow.rs crates/packet/src/fragment.rs crates/packet/src/ipv4.rs crates/packet/src/mutate.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/validate.rs

/root/repo/target/release/deps/libliberate_packet-aa193ce2929103bf.rlib: crates/packet/src/lib.rs crates/packet/src/checksum.rs crates/packet/src/flow.rs crates/packet/src/fragment.rs crates/packet/src/ipv4.rs crates/packet/src/mutate.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/validate.rs

/root/repo/target/release/deps/libliberate_packet-aa193ce2929103bf.rmeta: crates/packet/src/lib.rs crates/packet/src/checksum.rs crates/packet/src/flow.rs crates/packet/src/fragment.rs crates/packet/src/ipv4.rs crates/packet/src/mutate.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/validate.rs

crates/packet/src/lib.rs:
crates/packet/src/checksum.rs:
crates/packet/src/flow.rs:
crates/packet/src/fragment.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/mutate.rs:
crates/packet/src/packet.rs:
crates/packet/src/pcap.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:
crates/packet/src/validate.rs:
