/root/repo/target/release/deps/table2-5cf606b8db915396.d: crates/bench/src/bin/table2.rs

/root/repo/target/release/deps/table2-5cf606b8db915396: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
