/root/repo/target/release/deps/liberate_traces-42adca376a01ada3.d: crates/traces/src/lib.rs crates/traces/src/apps.rs crates/traces/src/generator.rs crates/traces/src/http.rs crates/traces/src/quic.rs crates/traces/src/recorded.rs crates/traces/src/stun.rs crates/traces/src/tls.rs

/root/repo/target/release/deps/libliberate_traces-42adca376a01ada3.rlib: crates/traces/src/lib.rs crates/traces/src/apps.rs crates/traces/src/generator.rs crates/traces/src/http.rs crates/traces/src/quic.rs crates/traces/src/recorded.rs crates/traces/src/stun.rs crates/traces/src/tls.rs

/root/repo/target/release/deps/libliberate_traces-42adca376a01ada3.rmeta: crates/traces/src/lib.rs crates/traces/src/apps.rs crates/traces/src/generator.rs crates/traces/src/http.rs crates/traces/src/quic.rs crates/traces/src/recorded.rs crates/traces/src/stun.rs crates/traces/src/tls.rs

crates/traces/src/lib.rs:
crates/traces/src/apps.rs:
crates/traces/src/generator.rs:
crates/traces/src/http.rs:
crates/traces/src/quic.rs:
crates/traces/src/recorded.rs:
crates/traces/src/stun.rs:
crates/traces/src/tls.rs:
