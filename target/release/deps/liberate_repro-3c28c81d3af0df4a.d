/root/repo/target/release/deps/liberate_repro-3c28c81d3af0df4a.d: src/lib.rs

/root/repo/target/release/deps/libliberate_repro-3c28c81d3af0df4a.rlib: src/lib.rs

/root/repo/target/release/deps/libliberate_repro-3c28c81d3af0df4a.rmeta: src/lib.rs

src/lib.rs:
