/root/repo/target/release/deps/proptest-c418f981440fb764.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-c418f981440fb764.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-c418f981440fb764.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/test_runner.rs:
