/root/repo/target/release/deps/liberate_netsim-a6214d235a284f70.d: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/element.rs crates/netsim/src/filter.rs crates/netsim/src/firewall.rs crates/netsim/src/hop.rs crates/netsim/src/icmp.rs crates/netsim/src/network.rs crates/netsim/src/os.rs crates/netsim/src/server.rs crates/netsim/src/shaper.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs

/root/repo/target/release/deps/libliberate_netsim-a6214d235a284f70.rlib: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/element.rs crates/netsim/src/filter.rs crates/netsim/src/firewall.rs crates/netsim/src/hop.rs crates/netsim/src/icmp.rs crates/netsim/src/network.rs crates/netsim/src/os.rs crates/netsim/src/server.rs crates/netsim/src/shaper.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs

/root/repo/target/release/deps/libliberate_netsim-a6214d235a284f70.rmeta: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/element.rs crates/netsim/src/filter.rs crates/netsim/src/firewall.rs crates/netsim/src/hop.rs crates/netsim/src/icmp.rs crates/netsim/src/network.rs crates/netsim/src/os.rs crates/netsim/src/server.rs crates/netsim/src/shaper.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/capture.rs:
crates/netsim/src/element.rs:
crates/netsim/src/filter.rs:
crates/netsim/src/firewall.rs:
crates/netsim/src/hop.rs:
crates/netsim/src/icmp.rs:
crates/netsim/src/network.rs:
crates/netsim/src/os.rs:
crates/netsim/src/server.rs:
crates/netsim/src/shaper.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/time.rs:
