/root/repo/target/release/deps/liberate_bench-12a314b20fd73c68.d: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/expected.rs crates/bench/src/osmatrix.rs crates/bench/src/table3.rs

/root/repo/target/release/deps/libliberate_bench-12a314b20fd73c68.rlib: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/expected.rs crates/bench/src/osmatrix.rs crates/bench/src/table3.rs

/root/repo/target/release/deps/libliberate_bench-12a314b20fd73c68.rmeta: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/expected.rs crates/bench/src/osmatrix.rs crates/bench/src/table3.rs

crates/bench/src/lib.rs:
crates/bench/src/envs.rs:
crates/bench/src/expected.rs:
crates/bench/src/osmatrix.rs:
crates/bench/src/table3.rs:
