/root/repo/target/release/deps/liberate_lint-2b392202aad68740.d: crates/lint/src/main.rs

/root/repo/target/release/deps/liberate_lint-2b392202aad68740: crates/lint/src/main.rs

crates/lint/src/main.rs:
