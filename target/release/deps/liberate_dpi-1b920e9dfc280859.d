/root/repo/target/release/deps/liberate_dpi-1b920e9dfc280859.d: crates/dpi/src/lib.rs crates/dpi/src/actions.rs crates/dpi/src/device.rs crates/dpi/src/flowtable.rs crates/dpi/src/inspect.rs crates/dpi/src/matcher.rs crates/dpi/src/profiles.rs crates/dpi/src/proxy.rs crates/dpi/src/resource.rs crates/dpi/src/rules.rs crates/dpi/src/validation.rs

/root/repo/target/release/deps/libliberate_dpi-1b920e9dfc280859.rlib: crates/dpi/src/lib.rs crates/dpi/src/actions.rs crates/dpi/src/device.rs crates/dpi/src/flowtable.rs crates/dpi/src/inspect.rs crates/dpi/src/matcher.rs crates/dpi/src/profiles.rs crates/dpi/src/proxy.rs crates/dpi/src/resource.rs crates/dpi/src/rules.rs crates/dpi/src/validation.rs

/root/repo/target/release/deps/libliberate_dpi-1b920e9dfc280859.rmeta: crates/dpi/src/lib.rs crates/dpi/src/actions.rs crates/dpi/src/device.rs crates/dpi/src/flowtable.rs crates/dpi/src/inspect.rs crates/dpi/src/matcher.rs crates/dpi/src/profiles.rs crates/dpi/src/proxy.rs crates/dpi/src/resource.rs crates/dpi/src/rules.rs crates/dpi/src/validation.rs

crates/dpi/src/lib.rs:
crates/dpi/src/actions.rs:
crates/dpi/src/device.rs:
crates/dpi/src/flowtable.rs:
crates/dpi/src/inspect.rs:
crates/dpi/src/matcher.rs:
crates/dpi/src/profiles.rs:
crates/dpi/src/proxy.rs:
crates/dpi/src/resource.rs:
crates/dpi/src/rules.rs:
crates/dpi/src/validation.rs:
