/root/repo/target/debug/examples/capture_to_pcap-061d270a0ea74705.d: examples/capture_to_pcap.rs

/root/repo/target/debug/examples/capture_to_pcap-061d270a0ea74705: examples/capture_to_pcap.rs

examples/capture_to_pcap.rs:
