/root/repo/target/debug/examples/quickstart-1286a0cbe861e317.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-1286a0cbe861e317: examples/quickstart.rs

examples/quickstart.rs:
