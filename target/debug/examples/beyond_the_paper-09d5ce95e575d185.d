/root/repo/target/debug/examples/beyond_the_paper-09d5ce95e575d185.d: examples/beyond_the_paper.rs

/root/repo/target/debug/examples/libbeyond_the_paper-09d5ce95e575d185.rmeta: examples/beyond_the_paper.rs

examples/beyond_the_paper.rs:
