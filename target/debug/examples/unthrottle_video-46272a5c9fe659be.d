/root/repo/target/debug/examples/unthrottle_video-46272a5c9fe659be.d: examples/unthrottle_video.rs

/root/repo/target/debug/examples/unthrottle_video-46272a5c9fe659be: examples/unthrottle_video.rs

examples/unthrottle_video.rs:
