/root/repo/target/debug/examples/censorship_circumvention-c0ae5a0784ed2004.d: examples/censorship_circumvention.rs

/root/repo/target/debug/examples/censorship_circumvention-c0ae5a0784ed2004: examples/censorship_circumvention.rs

examples/censorship_circumvention.rs:
