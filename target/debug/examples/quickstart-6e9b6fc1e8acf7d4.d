/root/repo/target/debug/examples/quickstart-6e9b6fc1e8acf7d4.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-6e9b6fc1e8acf7d4.rmeta: examples/quickstart.rs

examples/quickstart.rs:
