/root/repo/target/debug/examples/beyond_the_paper-bafc7c666c1a6226.d: examples/beyond_the_paper.rs

/root/repo/target/debug/examples/beyond_the_paper-bafc7c666c1a6226: examples/beyond_the_paper.rs

examples/beyond_the_paper.rs:
