/root/repo/target/debug/examples/quickstart-3e54779c41a9a19b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3e54779c41a9a19b: examples/quickstart.rs

examples/quickstart.rs:
