/root/repo/target/debug/examples/censorship_circumvention-56d24404bd60265b.d: examples/censorship_circumvention.rs

/root/repo/target/debug/examples/censorship_circumvention-56d24404bd60265b: examples/censorship_circumvention.rs

examples/censorship_circumvention.rs:
