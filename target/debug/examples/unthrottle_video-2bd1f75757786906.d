/root/repo/target/debug/examples/unthrottle_video-2bd1f75757786906.d: examples/unthrottle_video.rs

/root/repo/target/debug/examples/unthrottle_video-2bd1f75757786906: examples/unthrottle_video.rs

examples/unthrottle_video.rs:
