/root/repo/target/debug/examples/capture_to_pcap-1abed122d04be38d.d: examples/capture_to_pcap.rs

/root/repo/target/debug/examples/capture_to_pcap-1abed122d04be38d: examples/capture_to_pcap.rs

examples/capture_to_pcap.rs:
