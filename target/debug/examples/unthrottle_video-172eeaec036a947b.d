/root/repo/target/debug/examples/unthrottle_video-172eeaec036a947b.d: examples/unthrottle_video.rs

/root/repo/target/debug/examples/libunthrottle_video-172eeaec036a947b.rmeta: examples/unthrottle_video.rs

examples/unthrottle_video.rs:
