/root/repo/target/debug/examples/beyond_the_paper-d4bbac5492d12fdd.d: examples/beyond_the_paper.rs

/root/repo/target/debug/examples/beyond_the_paper-d4bbac5492d12fdd: examples/beyond_the_paper.rs

examples/beyond_the_paper.rs:
