/root/repo/target/debug/examples/expose_classifier_rules-062f33b294cf5b5a.d: examples/expose_classifier_rules.rs

/root/repo/target/debug/examples/expose_classifier_rules-062f33b294cf5b5a: examples/expose_classifier_rules.rs

examples/expose_classifier_rules.rs:
