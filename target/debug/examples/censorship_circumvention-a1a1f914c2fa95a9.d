/root/repo/target/debug/examples/censorship_circumvention-a1a1f914c2fa95a9.d: examples/censorship_circumvention.rs

/root/repo/target/debug/examples/libcensorship_circumvention-a1a1f914c2fa95a9.rmeta: examples/censorship_circumvention.rs

examples/censorship_circumvention.rs:
