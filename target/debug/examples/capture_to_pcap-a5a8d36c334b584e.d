/root/repo/target/debug/examples/capture_to_pcap-a5a8d36c334b584e.d: examples/capture_to_pcap.rs

/root/repo/target/debug/examples/libcapture_to_pcap-a5a8d36c334b584e.rmeta: examples/capture_to_pcap.rs

examples/capture_to_pcap.rs:
