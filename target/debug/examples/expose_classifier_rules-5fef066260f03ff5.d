/root/repo/target/debug/examples/expose_classifier_rules-5fef066260f03ff5.d: examples/expose_classifier_rules.rs

/root/repo/target/debug/examples/expose_classifier_rules-5fef066260f03ff5: examples/expose_classifier_rules.rs

examples/expose_classifier_rules.rs:
