/root/repo/target/debug/examples/expose_classifier_rules-7fa45d4258da5673.d: examples/expose_classifier_rules.rs

/root/repo/target/debug/examples/libexpose_classifier_rules-7fa45d4258da5673.rmeta: examples/expose_classifier_rules.rs

examples/expose_classifier_rules.rs:
