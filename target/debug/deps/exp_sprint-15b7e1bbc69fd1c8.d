/root/repo/target/debug/deps/exp_sprint-15b7e1bbc69fd1c8.d: crates/bench/src/bin/exp-sprint.rs

/root/repo/target/debug/deps/exp_sprint-15b7e1bbc69fd1c8: crates/bench/src/bin/exp-sprint.rs

crates/bench/src/bin/exp-sprint.rs:
