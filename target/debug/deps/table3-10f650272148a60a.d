/root/repo/target/debug/deps/table3-10f650272148a60a.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-10f650272148a60a.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
