/root/repo/target/debug/deps/ablations-61ac18f89a86bd15.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/ablations-61ac18f89a86bd15: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
