/root/repo/target/debug/deps/figure4-891e1615b03a1413.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/figure4-891e1615b03a1413: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
