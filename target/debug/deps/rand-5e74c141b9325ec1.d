/root/repo/target/debug/deps/rand-5e74c141b9325ec1.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5e74c141b9325ec1.rlib: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-5e74c141b9325ec1.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
