/root/repo/target/debug/deps/ablations-3cff7dc1e5c1f448.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/libablations-3cff7dc1e5c1f448.rmeta: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
