/root/repo/target/debug/deps/proptest-11d91c60edc36c03.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-11d91c60edc36c03.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/test_runner.rs:
