/root/repo/target/debug/deps/table3-9a45027a8e85052a.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/table3-9a45027a8e85052a: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
