/root/repo/target/debug/deps/criterion-c78de61f9fb57daa.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-c78de61f9fb57daa.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
