/root/repo/target/debug/deps/device_unit-7fda3ccb522484cc.d: crates/dpi/tests/device_unit.rs

/root/repo/target/debug/deps/device_unit-7fda3ccb522484cc: crates/dpi/tests/device_unit.rs

crates/dpi/tests/device_unit.rs:
