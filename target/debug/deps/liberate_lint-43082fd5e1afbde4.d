/root/repo/target/debug/deps/liberate_lint-43082fd5e1afbde4.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/items.rs crates/lint/src/lexer.rs crates/lint/src/rules/mod.rs crates/lint/src/rules/checksum_repair.rs crates/lint/src/rules/determinism.rs crates/lint/src/rules/no_panic.rs crates/lint/src/rules/taxonomy.rs

/root/repo/target/debug/deps/liberate_lint-43082fd5e1afbde4: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/items.rs crates/lint/src/lexer.rs crates/lint/src/rules/mod.rs crates/lint/src/rules/checksum_repair.rs crates/lint/src/rules/determinism.rs crates/lint/src/rules/no_panic.rs crates/lint/src/rules/taxonomy.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/items.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules/mod.rs:
crates/lint/src/rules/checksum_repair.rs:
crates/lint/src/rules/determinism.rs:
crates/lint/src/rules/no_panic.rs:
crates/lint/src/rules/taxonomy.rs:
