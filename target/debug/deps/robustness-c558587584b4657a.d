/root/repo/target/debug/deps/robustness-c558587584b4657a.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-c558587584b4657a: tests/robustness.rs

tests/robustness.rs:
