/root/repo/target/debug/deps/serde-9007e51679e10f73.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-9007e51679e10f73.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
