/root/repo/target/debug/deps/proptests-fbe96566f5038370.d: crates/traces/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-fbe96566f5038370.rmeta: crates/traces/tests/proptests.rs

crates/traces/tests/proptests.rs:
