/root/repo/target/debug/deps/exp_att-34031c3e57749f38.d: crates/bench/src/bin/exp-att.rs

/root/repo/target/debug/deps/exp_att-34031c3e57749f38: crates/bench/src/bin/exp-att.rs

crates/bench/src/bin/exp-att.rs:
