/root/repo/target/debug/deps/liberate-6f2a8b7d0b26ac2e.d: crates/core/src/lib.rs crates/core/src/bilateral.rs crates/core/src/cache.rs crates/core/src/characterize.rs crates/core/src/config.rs crates/core/src/deploy.rs crates/core/src/detect.rs crates/core/src/error.rs crates/core/src/evaluate.rs crates/core/src/evasion/mod.rs crates/core/src/evasion/transform.rs crates/core/src/masquerade.rs crates/core/src/probe.rs crates/core/src/replay.rs crates/core/src/report.rs crates/core/src/schedule.rs crates/core/src/socket.rs

/root/repo/target/debug/deps/libliberate-6f2a8b7d0b26ac2e.rlib: crates/core/src/lib.rs crates/core/src/bilateral.rs crates/core/src/cache.rs crates/core/src/characterize.rs crates/core/src/config.rs crates/core/src/deploy.rs crates/core/src/detect.rs crates/core/src/error.rs crates/core/src/evaluate.rs crates/core/src/evasion/mod.rs crates/core/src/evasion/transform.rs crates/core/src/masquerade.rs crates/core/src/probe.rs crates/core/src/replay.rs crates/core/src/report.rs crates/core/src/schedule.rs crates/core/src/socket.rs

/root/repo/target/debug/deps/libliberate-6f2a8b7d0b26ac2e.rmeta: crates/core/src/lib.rs crates/core/src/bilateral.rs crates/core/src/cache.rs crates/core/src/characterize.rs crates/core/src/config.rs crates/core/src/deploy.rs crates/core/src/detect.rs crates/core/src/error.rs crates/core/src/evaluate.rs crates/core/src/evasion/mod.rs crates/core/src/evasion/transform.rs crates/core/src/masquerade.rs crates/core/src/probe.rs crates/core/src/replay.rs crates/core/src/report.rs crates/core/src/schedule.rs crates/core/src/socket.rs

crates/core/src/lib.rs:
crates/core/src/bilateral.rs:
crates/core/src/cache.rs:
crates/core/src/characterize.rs:
crates/core/src/config.rs:
crates/core/src/deploy.rs:
crates/core/src/detect.rs:
crates/core/src/error.rs:
crates/core/src/evaluate.rs:
crates/core/src/evasion/mod.rs:
crates/core/src/evasion/transform.rs:
crates/core/src/masquerade.rs:
crates/core/src/probe.rs:
crates/core/src/replay.rs:
crates/core/src/report.rs:
crates/core/src/schedule.rs:
crates/core/src/socket.rs:
