/root/repo/target/debug/deps/table1-31950461ac99f521.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/table1-31950461ac99f521: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
