/root/repo/target/debug/deps/proxy_unit-53eef4c731dd130c.d: crates/dpi/tests/proxy_unit.rs

/root/repo/target/debug/deps/libproxy_unit-53eef4c731dd130c.rmeta: crates/dpi/tests/proxy_unit.rs

crates/dpi/tests/proxy_unit.rs:
