/root/repo/target/debug/deps/liberate_lint-f2c7414a58930f87.d: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/items.rs crates/lint/src/lexer.rs crates/lint/src/rules/mod.rs crates/lint/src/rules/checksum_repair.rs crates/lint/src/rules/determinism.rs crates/lint/src/rules/no_panic.rs crates/lint/src/rules/taxonomy.rs

/root/repo/target/debug/deps/libliberate_lint-f2c7414a58930f87.rlib: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/items.rs crates/lint/src/lexer.rs crates/lint/src/rules/mod.rs crates/lint/src/rules/checksum_repair.rs crates/lint/src/rules/determinism.rs crates/lint/src/rules/no_panic.rs crates/lint/src/rules/taxonomy.rs

/root/repo/target/debug/deps/libliberate_lint-f2c7414a58930f87.rmeta: crates/lint/src/lib.rs crates/lint/src/diag.rs crates/lint/src/items.rs crates/lint/src/lexer.rs crates/lint/src/rules/mod.rs crates/lint/src/rules/checksum_repair.rs crates/lint/src/rules/determinism.rs crates/lint/src/rules/no_panic.rs crates/lint/src/rules/taxonomy.rs

crates/lint/src/lib.rs:
crates/lint/src/diag.rs:
crates/lint/src/items.rs:
crates/lint/src/lexer.rs:
crates/lint/src/rules/mod.rs:
crates/lint/src/rules/checksum_repair.rs:
crates/lint/src/rules/determinism.rs:
crates/lint/src/rules/no_panic.rs:
crates/lint/src/rules/taxonomy.rs:
