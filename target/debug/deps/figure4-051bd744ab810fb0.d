/root/repo/target/debug/deps/figure4-051bd744ab810fb0.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/libfigure4-051bd744ab810fb0.rmeta: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
