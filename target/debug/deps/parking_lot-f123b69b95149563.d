/root/repo/target/debug/deps/parking_lot-f123b69b95149563.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-f123b69b95149563.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
