/root/repo/target/debug/deps/exp_tmus-b03fc544bab394ef.d: crates/bench/src/bin/exp-tmus.rs

/root/repo/target/debug/deps/libexp_tmus-b03fc544bab394ef.rmeta: crates/bench/src/bin/exp-tmus.rs

crates/bench/src/bin/exp-tmus.rs:
