/root/repo/target/debug/deps/serde-5782b6eaeacb1445.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-5782b6eaeacb1445.rmeta: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
