/root/repo/target/debug/deps/exp_tmus-f97cb6a5bff1720b.d: crates/bench/src/bin/exp-tmus.rs

/root/repo/target/debug/deps/exp_tmus-f97cb6a5bff1720b: crates/bench/src/bin/exp-tmus.rs

crates/bench/src/bin/exp-tmus.rs:
