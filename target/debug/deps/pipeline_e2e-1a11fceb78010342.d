/root/repo/target/debug/deps/pipeline_e2e-1a11fceb78010342.d: tests/pipeline_e2e.rs

/root/repo/target/debug/deps/pipeline_e2e-1a11fceb78010342: tests/pipeline_e2e.rs

tests/pipeline_e2e.rs:
