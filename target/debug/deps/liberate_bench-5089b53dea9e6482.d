/root/repo/target/debug/deps/liberate_bench-5089b53dea9e6482.d: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/expected.rs crates/bench/src/osmatrix.rs crates/bench/src/table3.rs

/root/repo/target/debug/deps/libliberate_bench-5089b53dea9e6482.rmeta: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/expected.rs crates/bench/src/osmatrix.rs crates/bench/src/table3.rs

crates/bench/src/lib.rs:
crates/bench/src/envs.rs:
crates/bench/src/expected.rs:
crates/bench/src/osmatrix.rs:
crates/bench/src/table3.rs:
