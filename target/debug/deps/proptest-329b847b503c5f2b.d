/root/repo/target/debug/deps/proptest-329b847b503c5f2b.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/proptest-329b847b503c5f2b: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/test_runner.rs:
