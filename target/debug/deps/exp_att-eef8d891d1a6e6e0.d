/root/repo/target/debug/deps/exp_att-eef8d891d1a6e6e0.d: crates/bench/src/bin/exp-att.rs

/root/repo/target/debug/deps/libexp_att-eef8d891d1a6e6e0.rmeta: crates/bench/src/bin/exp-att.rs

crates/bench/src/bin/exp-att.rs:
