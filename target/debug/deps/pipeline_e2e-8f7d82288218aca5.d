/root/repo/target/debug/deps/pipeline_e2e-8f7d82288218aca5.d: tests/pipeline_e2e.rs

/root/repo/target/debug/deps/libpipeline_e2e-8f7d82288218aca5.rmeta: tests/pipeline_e2e.rs

tests/pipeline_e2e.rs:
