/root/repo/target/debug/deps/proptests-8c096e9988ce8197.d: crates/dpi/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-8c096e9988ce8197.rmeta: crates/dpi/tests/proptests.rs

crates/dpi/tests/proptests.rs:
