/root/repo/target/debug/deps/liberate_lint-5739630fa4473d95.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/liberate_lint-5739630fa4473d95: crates/lint/src/main.rs

crates/lint/src/main.rs:
