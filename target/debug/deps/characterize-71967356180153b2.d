/root/repo/target/debug/deps/characterize-71967356180153b2.d: crates/bench/benches/characterize.rs

/root/repo/target/debug/deps/libcharacterize-71967356180153b2.rmeta: crates/bench/benches/characterize.rs

crates/bench/benches/characterize.rs:
