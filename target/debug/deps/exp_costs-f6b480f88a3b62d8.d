/root/repo/target/debug/deps/exp_costs-f6b480f88a3b62d8.d: crates/bench/src/bin/exp-costs.rs

/root/repo/target/debug/deps/libexp_costs-f6b480f88a3b62d8.rmeta: crates/bench/src/bin/exp-costs.rs

crates/bench/src/bin/exp-costs.rs:
