/root/repo/target/debug/deps/table3_matrix-69db060db6b02acc.d: tests/table3_matrix.rs

/root/repo/target/debug/deps/table3_matrix-69db060db6b02acc: tests/table3_matrix.rs

tests/table3_matrix.rs:
