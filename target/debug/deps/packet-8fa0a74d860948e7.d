/root/repo/target/debug/deps/packet-8fa0a74d860948e7.d: crates/bench/benches/packet.rs

/root/repo/target/debug/deps/libpacket-8fa0a74d860948e7.rmeta: crates/bench/benches/packet.rs

crates/bench/benches/packet.rs:
