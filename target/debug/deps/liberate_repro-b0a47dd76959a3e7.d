/root/repo/target/debug/deps/liberate_repro-b0a47dd76959a3e7.d: src/lib.rs

/root/repo/target/debug/deps/libliberate_repro-b0a47dd76959a3e7.rmeta: src/lib.rs

src/lib.rs:
