/root/repo/target/debug/deps/exp_costs-598f4f063c5aaef5.d: crates/bench/src/bin/exp-costs.rs

/root/repo/target/debug/deps/libexp_costs-598f4f063c5aaef5.rmeta: crates/bench/src/bin/exp-costs.rs

crates/bench/src/bin/exp-costs.rs:
