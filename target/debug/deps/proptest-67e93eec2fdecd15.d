/root/repo/target/debug/deps/proptest-67e93eec2fdecd15.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-67e93eec2fdecd15.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-67e93eec2fdecd15.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/test_runner.rs:
