/root/repo/target/debug/deps/liberate_traces-c41e56876e68c33e.d: crates/traces/src/lib.rs crates/traces/src/apps.rs crates/traces/src/generator.rs crates/traces/src/http.rs crates/traces/src/quic.rs crates/traces/src/recorded.rs crates/traces/src/stun.rs crates/traces/src/tls.rs

/root/repo/target/debug/deps/liberate_traces-c41e56876e68c33e: crates/traces/src/lib.rs crates/traces/src/apps.rs crates/traces/src/generator.rs crates/traces/src/http.rs crates/traces/src/quic.rs crates/traces/src/recorded.rs crates/traces/src/stun.rs crates/traces/src/tls.rs

crates/traces/src/lib.rs:
crates/traces/src/apps.rs:
crates/traces/src/generator.rs:
crates/traces/src/http.rs:
crates/traces/src/quic.rs:
crates/traces/src/recorded.rs:
crates/traces/src/stun.rs:
crates/traces/src/tls.rs:
