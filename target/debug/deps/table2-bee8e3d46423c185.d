/root/repo/target/debug/deps/table2-bee8e3d46423c185.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-bee8e3d46423c185.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
