/root/repo/target/debug/deps/device_behavior-3e97e5742a4b04b9.d: crates/dpi/tests/device_behavior.rs

/root/repo/target/debug/deps/libdevice_behavior-3e97e5742a4b04b9.rmeta: crates/dpi/tests/device_behavior.rs

crates/dpi/tests/device_behavior.rs:
