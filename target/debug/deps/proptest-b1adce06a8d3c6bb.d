/root/repo/target/debug/deps/proptest-b1adce06a8d3c6bb.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/test_runner.rs

/root/repo/target/debug/deps/libproptest-b1adce06a8d3c6bb.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/sample.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/sample.rs:
vendor/proptest/src/test_runner.rs:
