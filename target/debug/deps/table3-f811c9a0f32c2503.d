/root/repo/target/debug/deps/table3-f811c9a0f32c2503.d: crates/bench/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-f811c9a0f32c2503.rmeta: crates/bench/src/bin/table3.rs

crates/bench/src/bin/table3.rs:
