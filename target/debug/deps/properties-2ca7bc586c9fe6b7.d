/root/repo/target/debug/deps/properties-2ca7bc586c9fe6b7.d: tests/properties.rs

/root/repo/target/debug/deps/properties-2ca7bc586c9fe6b7: tests/properties.rs

tests/properties.rs:
