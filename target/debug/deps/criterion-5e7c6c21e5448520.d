/root/repo/target/debug/deps/criterion-5e7c6c21e5448520.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-5e7c6c21e5448520.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
