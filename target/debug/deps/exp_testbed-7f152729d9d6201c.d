/root/repo/target/debug/deps/exp_testbed-7f152729d9d6201c.d: crates/bench/src/bin/exp-testbed.rs

/root/repo/target/debug/deps/libexp_testbed-7f152729d9d6201c.rmeta: crates/bench/src/bin/exp-testbed.rs

crates/bench/src/bin/exp-testbed.rs:
