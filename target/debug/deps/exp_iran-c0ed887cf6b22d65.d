/root/repo/target/debug/deps/exp_iran-c0ed887cf6b22d65.d: crates/bench/src/bin/exp-iran.rs

/root/repo/target/debug/deps/libexp_iran-c0ed887cf6b22d65.rmeta: crates/bench/src/bin/exp-iran.rs

crates/bench/src/bin/exp-iran.rs:
