/root/repo/target/debug/deps/exp_sprint-dca659be04ece4eb.d: crates/bench/src/bin/exp-sprint.rs

/root/repo/target/debug/deps/libexp_sprint-dca659be04ece4eb.rmeta: crates/bench/src/bin/exp-sprint.rs

crates/bench/src/bin/exp-sprint.rs:
