/root/repo/target/debug/deps/liberate_netsim-8a34c132e2593aa8.d: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/element.rs crates/netsim/src/filter.rs crates/netsim/src/firewall.rs crates/netsim/src/hop.rs crates/netsim/src/icmp.rs crates/netsim/src/network.rs crates/netsim/src/os.rs crates/netsim/src/server.rs crates/netsim/src/shaper.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs

/root/repo/target/debug/deps/liberate_netsim-8a34c132e2593aa8: crates/netsim/src/lib.rs crates/netsim/src/capture.rs crates/netsim/src/element.rs crates/netsim/src/filter.rs crates/netsim/src/firewall.rs crates/netsim/src/hop.rs crates/netsim/src/icmp.rs crates/netsim/src/network.rs crates/netsim/src/os.rs crates/netsim/src/server.rs crates/netsim/src/shaper.rs crates/netsim/src/stats.rs crates/netsim/src/time.rs

crates/netsim/src/lib.rs:
crates/netsim/src/capture.rs:
crates/netsim/src/element.rs:
crates/netsim/src/filter.rs:
crates/netsim/src/firewall.rs:
crates/netsim/src/hop.rs:
crates/netsim/src/icmp.rs:
crates/netsim/src/network.rs:
crates/netsim/src/os.rs:
crates/netsim/src/server.rs:
crates/netsim/src/shaper.rs:
crates/netsim/src/stats.rs:
crates/netsim/src/time.rs:
