/root/repo/target/debug/deps/table2-809c5113ae929201.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-809c5113ae929201.rmeta: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
