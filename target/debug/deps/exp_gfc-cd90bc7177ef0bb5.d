/root/repo/target/debug/deps/exp_gfc-cd90bc7177ef0bb5.d: crates/bench/src/bin/exp-gfc.rs

/root/repo/target/debug/deps/exp_gfc-cd90bc7177ef0bb5: crates/bench/src/bin/exp-gfc.rs

crates/bench/src/bin/exp-gfc.rs:
