/root/repo/target/debug/deps/liberate_dpi-2e7cf480cff2ca64.d: crates/dpi/src/lib.rs crates/dpi/src/actions.rs crates/dpi/src/device.rs crates/dpi/src/flowtable.rs crates/dpi/src/inspect.rs crates/dpi/src/matcher.rs crates/dpi/src/profiles.rs crates/dpi/src/proxy.rs crates/dpi/src/resource.rs crates/dpi/src/rules.rs crates/dpi/src/validation.rs

/root/repo/target/debug/deps/libliberate_dpi-2e7cf480cff2ca64.rlib: crates/dpi/src/lib.rs crates/dpi/src/actions.rs crates/dpi/src/device.rs crates/dpi/src/flowtable.rs crates/dpi/src/inspect.rs crates/dpi/src/matcher.rs crates/dpi/src/profiles.rs crates/dpi/src/proxy.rs crates/dpi/src/resource.rs crates/dpi/src/rules.rs crates/dpi/src/validation.rs

/root/repo/target/debug/deps/libliberate_dpi-2e7cf480cff2ca64.rmeta: crates/dpi/src/lib.rs crates/dpi/src/actions.rs crates/dpi/src/device.rs crates/dpi/src/flowtable.rs crates/dpi/src/inspect.rs crates/dpi/src/matcher.rs crates/dpi/src/profiles.rs crates/dpi/src/proxy.rs crates/dpi/src/resource.rs crates/dpi/src/rules.rs crates/dpi/src/validation.rs

crates/dpi/src/lib.rs:
crates/dpi/src/actions.rs:
crates/dpi/src/device.rs:
crates/dpi/src/flowtable.rs:
crates/dpi/src/inspect.rs:
crates/dpi/src/matcher.rs:
crates/dpi/src/profiles.rs:
crates/dpi/src/proxy.rs:
crates/dpi/src/resource.rs:
crates/dpi/src/rules.rs:
crates/dpi/src/validation.rs:
