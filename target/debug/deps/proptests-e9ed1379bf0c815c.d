/root/repo/target/debug/deps/proptests-e9ed1379bf0c815c.d: crates/dpi/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e9ed1379bf0c815c: crates/dpi/tests/proptests.rs

crates/dpi/tests/proptests.rs:
