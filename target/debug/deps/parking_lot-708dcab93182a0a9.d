/root/repo/target/debug/deps/parking_lot-708dcab93182a0a9.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-708dcab93182a0a9.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-708dcab93182a0a9.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
