/root/repo/target/debug/deps/robustness-fb4599670d84c15e.d: tests/robustness.rs

/root/repo/target/debug/deps/robustness-fb4599670d84c15e: tests/robustness.rs

tests/robustness.rs:
