/root/repo/target/debug/deps/exp_gfc-ca62d97aefa1593d.d: crates/bench/src/bin/exp-gfc.rs

/root/repo/target/debug/deps/libexp_gfc-ca62d97aefa1593d.rmeta: crates/bench/src/bin/exp-gfc.rs

crates/bench/src/bin/exp-gfc.rs:
