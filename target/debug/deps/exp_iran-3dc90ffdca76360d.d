/root/repo/target/debug/deps/exp_iran-3dc90ffdca76360d.d: crates/bench/src/bin/exp-iran.rs

/root/repo/target/debug/deps/libexp_iran-3dc90ffdca76360d.rmeta: crates/bench/src/bin/exp-iran.rs

crates/bench/src/bin/exp-iran.rs:
