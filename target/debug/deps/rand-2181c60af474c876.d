/root/repo/target/debug/deps/rand-2181c60af474c876.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-2181c60af474c876.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
