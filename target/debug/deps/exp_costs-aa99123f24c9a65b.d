/root/repo/target/debug/deps/exp_costs-aa99123f24c9a65b.d: crates/bench/src/bin/exp-costs.rs

/root/repo/target/debug/deps/exp_costs-aa99123f24c9a65b: crates/bench/src/bin/exp-costs.rs

crates/bench/src/bin/exp-costs.rs:
