/root/repo/target/debug/deps/lint_gate-17af4fb8f38108c3.d: tests/lint_gate.rs

/root/repo/target/debug/deps/lint_gate-17af4fb8f38108c3: tests/lint_gate.rs

tests/lint_gate.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
