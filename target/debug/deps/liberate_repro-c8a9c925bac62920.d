/root/repo/target/debug/deps/liberate_repro-c8a9c925bac62920.d: src/lib.rs

/root/repo/target/debug/deps/liberate_repro-c8a9c925bac62920: src/lib.rs

src/lib.rs:
