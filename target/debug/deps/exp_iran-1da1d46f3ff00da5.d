/root/repo/target/debug/deps/exp_iran-1da1d46f3ff00da5.d: crates/bench/src/bin/exp-iran.rs

/root/repo/target/debug/deps/exp_iran-1da1d46f3ff00da5: crates/bench/src/bin/exp-iran.rs

crates/bench/src/bin/exp-iran.rs:
