/root/repo/target/debug/deps/table2-cc13120cc2f57548.d: crates/bench/src/bin/table2.rs

/root/repo/target/debug/deps/table2-cc13120cc2f57548: crates/bench/src/bin/table2.rs

crates/bench/src/bin/table2.rs:
