/root/repo/target/debug/deps/proptests-6986044a4f361b17.d: crates/traces/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6986044a4f361b17: crates/traces/tests/proptests.rs

crates/traces/tests/proptests.rs:
