/root/repo/target/debug/deps/liberate_traces-5d7c9ffbada8494b.d: crates/traces/src/lib.rs crates/traces/src/apps.rs crates/traces/src/generator.rs crates/traces/src/http.rs crates/traces/src/quic.rs crates/traces/src/recorded.rs crates/traces/src/stun.rs crates/traces/src/tls.rs

/root/repo/target/debug/deps/libliberate_traces-5d7c9ffbada8494b.rmeta: crates/traces/src/lib.rs crates/traces/src/apps.rs crates/traces/src/generator.rs crates/traces/src/http.rs crates/traces/src/quic.rs crates/traces/src/recorded.rs crates/traces/src/stun.rs crates/traces/src/tls.rs

crates/traces/src/lib.rs:
crates/traces/src/apps.rs:
crates/traces/src/generator.rs:
crates/traces/src/http.rs:
crates/traces/src/quic.rs:
crates/traces/src/recorded.rs:
crates/traces/src/stun.rs:
crates/traces/src/tls.rs:
