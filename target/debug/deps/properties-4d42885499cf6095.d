/root/repo/target/debug/deps/properties-4d42885499cf6095.d: tests/properties.rs

/root/repo/target/debug/deps/libproperties-4d42885499cf6095.rmeta: tests/properties.rs

tests/properties.rs:
