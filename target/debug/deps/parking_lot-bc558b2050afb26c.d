/root/repo/target/debug/deps/parking_lot-bc558b2050afb26c.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-bc558b2050afb26c.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
