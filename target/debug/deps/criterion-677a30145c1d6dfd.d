/root/repo/target/debug/deps/criterion-677a30145c1d6dfd.d: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-677a30145c1d6dfd.rlib: vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-677a30145c1d6dfd.rmeta: vendor/criterion/src/lib.rs

vendor/criterion/src/lib.rs:
