/root/repo/target/debug/deps/table3_matrix-9fee285cab691f8a.d: tests/table3_matrix.rs

/root/repo/target/debug/deps/table3_matrix-9fee285cab691f8a: tests/table3_matrix.rs

tests/table3_matrix.rs:
