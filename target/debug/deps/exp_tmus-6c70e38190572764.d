/root/repo/target/debug/deps/exp_tmus-6c70e38190572764.d: crates/bench/src/bin/exp-tmus.rs

/root/repo/target/debug/deps/libexp_tmus-6c70e38190572764.rmeta: crates/bench/src/bin/exp-tmus.rs

crates/bench/src/bin/exp-tmus.rs:
