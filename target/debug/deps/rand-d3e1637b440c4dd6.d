/root/repo/target/debug/deps/rand-d3e1637b440c4dd6.d: vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-d3e1637b440c4dd6.rmeta: vendor/rand/src/lib.rs

vendor/rand/src/lib.rs:
