/root/repo/target/debug/deps/liberate_repro-b97d472b20ef7677.d: src/lib.rs

/root/repo/target/debug/deps/libliberate_repro-b97d472b20ef7677.rmeta: src/lib.rs

src/lib.rs:
