/root/repo/target/debug/deps/pipeline_e2e-ac320091c87cdf78.d: tests/pipeline_e2e.rs

/root/repo/target/debug/deps/pipeline_e2e-ac320091c87cdf78: tests/pipeline_e2e.rs

tests/pipeline_e2e.rs:
