/root/repo/target/debug/deps/liberate_bench-0f2ffd8b72d1d905.d: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/expected.rs crates/bench/src/osmatrix.rs crates/bench/src/table3.rs

/root/repo/target/debug/deps/liberate_bench-0f2ffd8b72d1d905: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/expected.rs crates/bench/src/osmatrix.rs crates/bench/src/table3.rs

crates/bench/src/lib.rs:
crates/bench/src/envs.rs:
crates/bench/src/expected.rs:
crates/bench/src/osmatrix.rs:
crates/bench/src/table3.rs:
