/root/repo/target/debug/deps/liberate_lint-61c0cca6af174778.d: crates/lint/src/main.rs

/root/repo/target/debug/deps/liberate_lint-61c0cca6af174778: crates/lint/src/main.rs

crates/lint/src/main.rs:
