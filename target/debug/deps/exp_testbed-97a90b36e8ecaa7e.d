/root/repo/target/debug/deps/exp_testbed-97a90b36e8ecaa7e.d: crates/bench/src/bin/exp-testbed.rs

/root/repo/target/debug/deps/exp_testbed-97a90b36e8ecaa7e: crates/bench/src/bin/exp-testbed.rs

crates/bench/src/bin/exp-testbed.rs:
