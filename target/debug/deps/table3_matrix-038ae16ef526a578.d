/root/repo/target/debug/deps/table3_matrix-038ae16ef526a578.d: tests/table3_matrix.rs

/root/repo/target/debug/deps/libtable3_matrix-038ae16ef526a578.rmeta: tests/table3_matrix.rs

tests/table3_matrix.rs:
