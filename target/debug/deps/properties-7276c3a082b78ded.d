/root/repo/target/debug/deps/properties-7276c3a082b78ded.d: tests/properties.rs

/root/repo/target/debug/deps/properties-7276c3a082b78ded: tests/properties.rs

tests/properties.rs:
