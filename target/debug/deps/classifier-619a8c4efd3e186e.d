/root/repo/target/debug/deps/classifier-619a8c4efd3e186e.d: crates/bench/benches/classifier.rs

/root/repo/target/debug/deps/libclassifier-619a8c4efd3e186e.rmeta: crates/bench/benches/classifier.rs

crates/bench/benches/classifier.rs:
