/root/repo/target/debug/deps/liberate_repro-7868ab2bcb450ad4.d: src/lib.rs

/root/repo/target/debug/deps/liberate_repro-7868ab2bcb450ad4: src/lib.rs

src/lib.rs:
