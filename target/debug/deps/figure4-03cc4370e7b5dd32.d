/root/repo/target/debug/deps/figure4-03cc4370e7b5dd32.d: crates/bench/src/bin/figure4.rs

/root/repo/target/debug/deps/libfigure4-03cc4370e7b5dd32.rmeta: crates/bench/src/bin/figure4.rs

crates/bench/src/bin/figure4.rs:
