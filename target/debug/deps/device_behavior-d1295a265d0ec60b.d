/root/repo/target/debug/deps/device_behavior-d1295a265d0ec60b.d: crates/dpi/tests/device_behavior.rs

/root/repo/target/debug/deps/device_behavior-d1295a265d0ec60b: crates/dpi/tests/device_behavior.rs

crates/dpi/tests/device_behavior.rs:
