/root/repo/target/debug/deps/liberate_traces-b3e93e6b6b23c67d.d: crates/traces/src/lib.rs crates/traces/src/apps.rs crates/traces/src/generator.rs crates/traces/src/http.rs crates/traces/src/quic.rs crates/traces/src/recorded.rs crates/traces/src/stun.rs crates/traces/src/tls.rs

/root/repo/target/debug/deps/libliberate_traces-b3e93e6b6b23c67d.rlib: crates/traces/src/lib.rs crates/traces/src/apps.rs crates/traces/src/generator.rs crates/traces/src/http.rs crates/traces/src/quic.rs crates/traces/src/recorded.rs crates/traces/src/stun.rs crates/traces/src/tls.rs

/root/repo/target/debug/deps/libliberate_traces-b3e93e6b6b23c67d.rmeta: crates/traces/src/lib.rs crates/traces/src/apps.rs crates/traces/src/generator.rs crates/traces/src/http.rs crates/traces/src/quic.rs crates/traces/src/recorded.rs crates/traces/src/stun.rs crates/traces/src/tls.rs

crates/traces/src/lib.rs:
crates/traces/src/apps.rs:
crates/traces/src/generator.rs:
crates/traces/src/http.rs:
crates/traces/src/quic.rs:
crates/traces/src/recorded.rs:
crates/traces/src/stun.rs:
crates/traces/src/tls.rs:
