/root/repo/target/debug/deps/ablations-4354a1e050bb7e2c.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-4354a1e050bb7e2c.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
