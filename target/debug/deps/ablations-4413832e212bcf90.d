/root/repo/target/debug/deps/ablations-4413832e212bcf90.d: crates/bench/src/bin/ablations.rs

/root/repo/target/debug/deps/libablations-4413832e212bcf90.rmeta: crates/bench/src/bin/ablations.rs

crates/bench/src/bin/ablations.rs:
