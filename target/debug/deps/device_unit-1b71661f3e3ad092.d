/root/repo/target/debug/deps/device_unit-1b71661f3e3ad092.d: crates/dpi/tests/device_unit.rs

/root/repo/target/debug/deps/libdevice_unit-1b71661f3e3ad092.rmeta: crates/dpi/tests/device_unit.rs

crates/dpi/tests/device_unit.rs:
