/root/repo/target/debug/deps/robustness-5c7eee7c82955296.d: tests/robustness.rs

/root/repo/target/debug/deps/librobustness-5c7eee7c82955296.rmeta: tests/robustness.rs

tests/robustness.rs:
