/root/repo/target/debug/deps/exp_gfc-2e75f89ab6f8dfa1.d: crates/bench/src/bin/exp-gfc.rs

/root/repo/target/debug/deps/libexp_gfc-2e75f89ab6f8dfa1.rmeta: crates/bench/src/bin/exp-gfc.rs

crates/bench/src/bin/exp-gfc.rs:
