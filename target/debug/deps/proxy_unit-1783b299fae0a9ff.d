/root/repo/target/debug/deps/proxy_unit-1783b299fae0a9ff.d: crates/dpi/tests/proxy_unit.rs

/root/repo/target/debug/deps/proxy_unit-1783b299fae0a9ff: crates/dpi/tests/proxy_unit.rs

crates/dpi/tests/proxy_unit.rs:
