/root/repo/target/debug/deps/table1-a77b4658318f6596.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-a77b4658318f6596.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
