/root/repo/target/debug/deps/liberate_bench-b21efe8362506a0f.d: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/expected.rs crates/bench/src/osmatrix.rs crates/bench/src/table3.rs

/root/repo/target/debug/deps/libliberate_bench-b21efe8362506a0f.rmeta: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/expected.rs crates/bench/src/osmatrix.rs crates/bench/src/table3.rs

crates/bench/src/lib.rs:
crates/bench/src/envs.rs:
crates/bench/src/expected.rs:
crates/bench/src/osmatrix.rs:
crates/bench/src/table3.rs:
