/root/repo/target/debug/deps/serde_derive-282fcaa8efd3e10c.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-282fcaa8efd3e10c.rmeta: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
