/root/repo/target/debug/deps/exp_sprint-0df7e052b02fae1b.d: crates/bench/src/bin/exp-sprint.rs

/root/repo/target/debug/deps/libexp_sprint-0df7e052b02fae1b.rmeta: crates/bench/src/bin/exp-sprint.rs

crates/bench/src/bin/exp-sprint.rs:
