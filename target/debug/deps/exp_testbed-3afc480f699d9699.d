/root/repo/target/debug/deps/exp_testbed-3afc480f699d9699.d: crates/bench/src/bin/exp-testbed.rs

/root/repo/target/debug/deps/libexp_testbed-3afc480f699d9699.rmeta: crates/bench/src/bin/exp-testbed.rs

crates/bench/src/bin/exp-testbed.rs:
