/root/repo/target/debug/deps/liberate_bench-a7ecc640d825eb1c.d: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/expected.rs crates/bench/src/osmatrix.rs crates/bench/src/table3.rs

/root/repo/target/debug/deps/libliberate_bench-a7ecc640d825eb1c.rlib: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/expected.rs crates/bench/src/osmatrix.rs crates/bench/src/table3.rs

/root/repo/target/debug/deps/libliberate_bench-a7ecc640d825eb1c.rmeta: crates/bench/src/lib.rs crates/bench/src/envs.rs crates/bench/src/expected.rs crates/bench/src/osmatrix.rs crates/bench/src/table3.rs

crates/bench/src/lib.rs:
crates/bench/src/envs.rs:
crates/bench/src/expected.rs:
crates/bench/src/osmatrix.rs:
crates/bench/src/table3.rs:
