/root/repo/target/debug/deps/serde_derive-795b69162b76cb80.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-795b69162b76cb80.rmeta: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
