/root/repo/target/debug/deps/proptests-b6dd0d84b0c58ad7.d: crates/netsim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b6dd0d84b0c58ad7: crates/netsim/tests/proptests.rs

crates/netsim/tests/proptests.rs:
