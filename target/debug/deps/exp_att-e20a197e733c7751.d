/root/repo/target/debug/deps/exp_att-e20a197e733c7751.d: crates/bench/src/bin/exp-att.rs

/root/repo/target/debug/deps/libexp_att-e20a197e733c7751.rmeta: crates/bench/src/bin/exp-att.rs

crates/bench/src/bin/exp-att.rs:
