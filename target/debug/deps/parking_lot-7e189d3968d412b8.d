/root/repo/target/debug/deps/parking_lot-7e189d3968d412b8.d: vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-7e189d3968d412b8: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:
