/root/repo/target/debug/deps/liberate_repro-7150003029529cf7.d: src/lib.rs

/root/repo/target/debug/deps/libliberate_repro-7150003029529cf7.rlib: src/lib.rs

/root/repo/target/debug/deps/libliberate_repro-7150003029529cf7.rmeta: src/lib.rs

src/lib.rs:
