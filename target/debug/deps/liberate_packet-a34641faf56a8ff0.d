/root/repo/target/debug/deps/liberate_packet-a34641faf56a8ff0.d: crates/packet/src/lib.rs crates/packet/src/checksum.rs crates/packet/src/flow.rs crates/packet/src/fragment.rs crates/packet/src/ipv4.rs crates/packet/src/mutate.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/validate.rs

/root/repo/target/debug/deps/libliberate_packet-a34641faf56a8ff0.rmeta: crates/packet/src/lib.rs crates/packet/src/checksum.rs crates/packet/src/flow.rs crates/packet/src/fragment.rs crates/packet/src/ipv4.rs crates/packet/src/mutate.rs crates/packet/src/packet.rs crates/packet/src/pcap.rs crates/packet/src/tcp.rs crates/packet/src/udp.rs crates/packet/src/validate.rs

crates/packet/src/lib.rs:
crates/packet/src/checksum.rs:
crates/packet/src/flow.rs:
crates/packet/src/fragment.rs:
crates/packet/src/ipv4.rs:
crates/packet/src/mutate.rs:
crates/packet/src/packet.rs:
crates/packet/src/pcap.rs:
crates/packet/src/tcp.rs:
crates/packet/src/udp.rs:
crates/packet/src/validate.rs:
