/root/repo/target/debug/deps/table1-8891a71f2af2f67e.d: crates/bench/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-8891a71f2af2f67e.rmeta: crates/bench/src/bin/table1.rs

crates/bench/src/bin/table1.rs:
