/root/repo/target/debug/deps/liberate_traces-8b4e3a5dcee383a3.d: crates/traces/src/lib.rs crates/traces/src/apps.rs crates/traces/src/generator.rs crates/traces/src/http.rs crates/traces/src/quic.rs crates/traces/src/recorded.rs crates/traces/src/stun.rs crates/traces/src/tls.rs

/root/repo/target/debug/deps/libliberate_traces-8b4e3a5dcee383a3.rmeta: crates/traces/src/lib.rs crates/traces/src/apps.rs crates/traces/src/generator.rs crates/traces/src/http.rs crates/traces/src/quic.rs crates/traces/src/recorded.rs crates/traces/src/stun.rs crates/traces/src/tls.rs

crates/traces/src/lib.rs:
crates/traces/src/apps.rs:
crates/traces/src/generator.rs:
crates/traces/src/http.rs:
crates/traces/src/quic.rs:
crates/traces/src/recorded.rs:
crates/traces/src/stun.rs:
crates/traces/src/tls.rs:
