/root/repo/target/debug/deps/proptests-e38ea5d1af9ebc21.d: crates/netsim/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-e38ea5d1af9ebc21.rmeta: crates/netsim/tests/proptests.rs

crates/netsim/tests/proptests.rs:
