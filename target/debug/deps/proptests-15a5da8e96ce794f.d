/root/repo/target/debug/deps/proptests-15a5da8e96ce794f.d: crates/packet/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-15a5da8e96ce794f.rmeta: crates/packet/tests/proptests.rs

crates/packet/tests/proptests.rs:
