/root/repo/target/debug/deps/proptests-a1a48b2a041ff94f.d: crates/packet/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a1a48b2a041ff94f: crates/packet/tests/proptests.rs

crates/packet/tests/proptests.rs:
