/root/repo/target/debug/deps/transforms-70b677753501eb54.d: crates/bench/benches/transforms.rs

/root/repo/target/debug/deps/libtransforms-70b677753501eb54.rmeta: crates/bench/benches/transforms.rs

crates/bench/benches/transforms.rs:
