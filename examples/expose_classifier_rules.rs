//! Scenario: you operate a network-measurement platform and want to
//! *expose* what a middlebox matches on — the "(traffic-classification)
//! rules" half of the library's title — without any documentation from
//! the vendor.
//!
//! This example reverse-engineers the carrier-grade testbed DPI device:
//! which bytes trigger classification for several applications, how many
//! packets the classifier inspects, how long its state lives, and where
//! it sits on the path.
//!
//! Run with: `cargo run --release --example expose_classifier_rules`

use std::time::Duration;

use liberate::prelude::*;
use liberate_traces::apps;

fn main() {
    println!("exposing a DPI device's classification rules\n");
    let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());

    // 1. Which bytes trigger classification, per application?
    for (name, trace) in [
        ("Amazon Prime Video", apps::amazon_prime_http(20_000)),
        ("Spotify", apps::spotify_http(20_000)),
        ("YouTube (HTTPS)", apps::youtube_https(20_000)),
        ("Skype (UDP/STUN)", apps::skype_stun(8)),
    ] {
        let c = characterize(
            &mut session,
            &trace,
            &Signal::Readout,
            &CharacterizeOpts::default(),
        );
        println!("{name}: {} rounds", c.rounds);
        for f in &c.fields {
            println!(
                "  message {} bytes {}..{}: {:?}",
                f.message,
                f.range.start,
                f.range.end,
                f.as_text()
            );
        }
        // 2. How much of the flow does it inspect?
        println!(
            "  inspection: breaks after {:?} prepended packet(s); packet-count based: {}\n",
            c.position.prepend_break, c.position.packet_based
        );
    }

    // 3. Where does the middlebox sit?
    let loc = locate_middlebox(
        &mut session,
        &apps::control_http(),
        &liberate_traces::http::get_request("x.cloudfront.net", "/liberate-decoy", "p"),
        &Signal::Readout,
    );
    println!(
        "middlebox location: first classifying hop at TTL {:?}",
        loc.middlebox_ttl
    );

    // 4. How long does classification state live? Replay, pause
    //    increasingly long, and read the classifier.
    let trace = apps::amazon_prime_http(20_000);
    for pause in [60u64, 130] {
        let out = session.replay_trace(&trace, &ReplayOpts::default());
        session.rest(Duration::from_secs(pause));
        let key = liberate_packet::flow::FlowKey::new(
            liberate_dpi::profiles::CLIENT_ADDR,
            liberate_dpi::profiles::SERVER_ADDR,
            out.client_port,
            out.server_port,
            6,
        );
        let still = session.env.dpi_mut().unwrap().classification_of(key);
        println!(
            "classification after {pause:>3} s idle: {:?}",
            still.as_deref().unwrap_or("flushed")
        );
    }
    println!(
        "\n=> the device classifies on flow-start keywords within 5 packets,\n\
           sits one hop out, and forgets results after ~120 s idle — every\n\
           weakness lib\u{b7}erate's evasion phase then exploits."
    );
}
