//! Quickstart: point lib·erate at a censored flow and let it do all four
//! phases — detect differentiation, reverse-engineer the classifier,
//! locate the middlebox, and deploy a working evasion.
//!
//! Run with: `cargo run --release --example quickstart`

use liberate::prelude::*;
use liberate_traces::apps;

fn main() {
    println!("lib\u{b7}erate quickstart: fetching a blocked site through the GFC model\n");

    // A client whose path to the server crosses the Great Firewall model.
    let mut session = Session::new(EnvKind::Gfc, OsKind::Linux, LiberateConfig::default());

    // The application flow we want to liberate: an HTTP fetch of a
    // censored site.
    let flow = apps::economist_http();

    // Without lib·erate: blocked.
    let plain = session.replay_trace(&flow, &ReplayOpts::default());
    println!(
        "without lib\u{b7}erate: blocked = {} ({} RSTs injected by the censor)",
        plain.blocked(),
        plain.rsts
    );
    assert!(plain.blocked());

    // With lib·erate: run the full pipeline. Port rotation is needed
    // against the GFC because it penalizes a server:port after two
    // classified flows (§6.5).
    let copts = CharacterizeOpts {
        rotate_server_ports: true,
        ..Default::default()
    };
    let report = run_pipeline(&mut session, &flow, &copts).expect("pipeline succeeds");

    println!("\nphase 1 - detection:");
    println!(
        "  differentiation: blocking = {}",
        report.detection.blocking
    );

    let c = report.characterization.as_ref().unwrap();
    println!("\nphase 2 - characterization ({} rounds):", c.rounds);
    for f in &c.fields {
        println!(
            "  matching field in message {}: {:?}",
            f.message,
            f.as_text()
        );
    }
    println!(
        "  inspection: prepend-break at {:?} packet(s), matches all packets: {}",
        c.position.prepend_break, c.position.matches_all_packets
    );

    println!(
        "\nphase 3 - localization: middlebox at TTL {:?}",
        report.localization.as_ref().unwrap().middlebox_ttl
    );

    let chosen = report.chosen.expect("a working technique exists");
    println!(
        "\nphase 4 - evasion: {:?} (tried {} candidates)",
        chosen.effective.description(),
        report.evaluation_tries
    );

    // Use it: the same flow now completes cleanly.
    let ctx = EvasionContext {
        matching_fields: c.client_field_regions(&flow),
        decoy: decoy_request(),
        middlebox_ttl: report.localization.as_ref().unwrap().middlebox_ttl.unwrap(),
    };
    let freed = session
        .replay_with(&flow, &chosen.effective, &ctx, &ReplayOpts::default())
        .unwrap();
    println!(
        "\nwith lib\u{b7}erate: blocked = {}, transfer complete = {}, server stream intact = {}",
        freed.blocked(),
        freed.complete,
        freed.integrity_ok
    );
    assert!(!freed.blocked() && freed.complete && freed.integrity_ok);

    println!(
        "\ntotal measurement cost: {} replay rounds, {:.1} simulated minutes, {:.1} KB sent",
        report.total_rounds,
        report.elapsed.as_secs_f64() / 60.0,
        report.total_bytes as f64 / 1000.0
    );
}
