//! Scenario: circumvent two very different national censors with the same
//! library and zero application changes.
//!
//! The GFC blocks with injected RSTs and does proper stream reassembly —
//! but anchors at flow start and forgets flows a RST tears down. Iran
//! serves a 403 page and checks *every* packet — but matches each packet
//! independently. lib·erate discovers each classifier's actual weakness
//! and picks a different technique for each.
//!
//! Run with: `cargo run --release --example censorship_circumvention`

use liberate::prelude::*;
use liberate_traces::apps;

fn circumvent(
    name: &str,
    kind: EnvKind,
    flow: &liberate_traces::recorded::RecordedTrace,
    rotate: bool,
) {
    println!("--- {name} ---");
    let session = Session::new(kind, OsKind::Linux, LiberateConfig::default());
    let mut proxy = LiberateProxy::new(
        session,
        CharacterizeOpts {
            rotate_server_ports: rotate,
            ..Default::default()
        },
    );

    // First flow: lib·erate learns everything it needs.
    let first = proxy.run_flow(flow).expect("a technique exists");
    let technique = proxy.active_technique().unwrap().effective.clone();
    println!(
        "  learned technique: {} ({:?} category)",
        technique.description(),
        technique.category()
    );
    println!(
        "  first flow: blocked = {}, complete = {}",
        first.outcome.blocked(),
        first.outcome.complete
    );
    assert!(!first.outcome.blocked() && first.outcome.complete);

    // Subsequent flows reuse the cached technique with no testing cost.
    for i in 0..3 {
        let again = proxy.run_flow(flow).expect("cached technique works");
        assert!(!again.outcome.blocked(), "flow {i} blocked");
        assert!(!again.recharacterized, "no re-learning needed");
    }
    println!("  3 subsequent flows: evaded with zero additional measurement\n");
}

fn main() {
    println!("lib\u{b7}erate vs two national censors\n");
    circumvent(
        "Great Firewall of China (RST injection, full reassembly)",
        EnvKind::Gfc,
        &apps::economist_http(),
        true, // the GFC penalizes server:port pairs; rotate during tests
    );
    circumvent(
        "Iran (403 + RSTs, per-packet matching on port 80)",
        EnvKind::Iran,
        &apps::facebook_http(),
        false, // Iran's rules are port-specific; testing must stay on :80
    );
    println!("both censors evaded by the same application-agnostic library");
}
