//! Observability: every experiment records tcpdump-equivalent captures at
//! the client and server taps, exportable as standard pcap files for
//! Wireshark.
//!
//! This example replays a censored fetch with and without evasion against
//! the GFC model and writes four pcaps showing exactly what each endpoint
//! saw — including the censor's injected RSTs in the blocked run and the
//! TTL-limited inert RST in the evading run.
//!
//! Run with: `cargo run --release --example capture_to_pcap`

use std::fs;

use liberate::prelude::*;
use liberate_netsim::capture::TapPoint;
use liberate_traces::apps;

fn dump(session: &Session, label: &str) -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("liberate-pcaps");
    fs::create_dir_all(&dir)?;
    for (point, suffix) in [
        (TapPoint::ClientEgress, "client-egress"),
        (TapPoint::ClientIngress, "client-ingress"),
        (TapPoint::ServerIngress, "server-ingress"),
        (TapPoint::ServerEgress, "server-egress"),
    ] {
        let path = dir.join(format!("{label}-{suffix}.pcap"));
        let bytes = session.env.network.capture.to_pcap(point);
        fs::write(&path, &bytes)?;
        println!(
            "  {:<48} {:>5} packets",
            path.display(),
            session.env.network.capture.at(point).count()
        );
    }
    Ok(())
}

fn main() -> std::io::Result<()> {
    println!("writing packet captures of a blocked vs an evading flow\n");
    let mut session = Session::new(EnvKind::Gfc, OsKind::Linux, LiberateConfig::default());
    let trace = apps::economist_http();

    // 1. Blocked: the capture shows the censor's RST burst.
    let out = session.replay_trace(&trace, &ReplayOpts::default());
    assert!(out.blocked());
    println!("blocked run ({} censor RSTs):", out.rsts);
    dump(&session, "blocked")?;

    // 2. Evading with a TTL-limited RST before the matching packet.
    let ctx = EvasionContext::blind(decoy_request(), 10);
    let out = session
        .replay_with(
            &trace,
            &Technique::TtlRstBeforeMatch,
            &ctx,
            &ReplayOpts {
                server_port: Some(8200), // dodge the penalty from run 1
                ..Default::default()
            },
        )
        .unwrap();
    assert!(!out.blocked() && out.complete);
    println!("\nevading run (transfer completed):");
    dump(&session, "evading")?;

    // The captures are honest: the evading run's client egress contains
    // the watermarked inert RST; its server ingress does not (TTL-limited).
    let cap = &session.env.network.capture;
    let rst_at = |point| {
        cap.any_at(point, |w| {
            liberate_packet::packet::ParsedPacket::parse(w)
                .and_then(|p| {
                    p.tcp()
                        .map(|t| t.flags.rst && t.window == liberate::evasion::LIBERATE_RST_WINDOW)
                })
                .unwrap_or(false)
        })
    };
    assert!(rst_at(TapPoint::ClientEgress), "we sent the inert RST");
    assert!(
        !rst_at(TapPoint::ServerIngress),
        "it died before the server"
    );
    println!("\ninert RST visible at client egress, absent at server ingress — as designed");
    Ok(())
}
