//! The paper's §7 roadmap, implemented: masquerading (ride a favored
//! class's policy) and bilateral payload modification (defeat even the
//! middleboxes that unilateral techniques cannot).
//!
//! Run with: `cargo run --release --example beyond_the_paper`

use liberate::prelude::*;
use liberate::report::fmt_bps;
use liberate_traces::apps;
use liberate_traces::generator::{generate, WorkloadSpec};

fn main() {
    // ---------------------------------------------------------------
    // 1. Masquerading: get an arbitrary workload zero-rated (§7:
    //    "users may want to masquerade as a type of differentiated
    //    traffic, e.g., if it is zero rated").
    // ---------------------------------------------------------------
    println!("1. masquerading as zero-rated video on the T-Mobile model\n");
    let mut s = Session::new(EnvKind::TMobile, OsKind::Linux, LiberateConfig::default());
    let workload = generate(&WorkloadSpec {
        server_bytes: 800_000,
        ..Default::default()
    });

    let bait = liberate_traces::http::get_request("x.cloudfront.net", "/liberate-decoy", "m/1");
    let masquerade = Masquerade::ttl_limited(bait, 3);
    let report =
        run_masqueraded(&mut s, &workload, &masquerade, &Signal::ZeroRating).expect("applies");
    println!(
        "   random 800 kB workload: complete = {}, intact = {}, rides zero-rated = {}",
        report.outcome.complete, report.outcome.integrity_ok, report.disguised
    );
    assert!(report.disguised && report.outcome.integrity_ok);
    println!("   -> the classifier billed almost nothing for a flow that is not video\n");

    // ---------------------------------------------------------------
    // 2. Bilateral evasion: beat the AT&T proxy, where every one of the
    //    26 unilateral techniques fails (Table 3's AT&T column).
    // ---------------------------------------------------------------
    println!("2. bilateral field-encoding vs the AT&T transparent proxy\n");
    let mut s = Session::new(EnvKind::Att, OsKind::Linux, LiberateConfig::default());
    let video = apps::nbcsports_http(800_000);

    let control = s.replay_trace(&inverted_trace(&video), &ReplayOpts::default());
    let signal = Signal::Throttling {
        control_bps: control.avg_bps,
        ratio: 0.6,
    };

    let throttled = s.replay_trace(&video, &ReplayOpts::default());
    println!("   unilateral (plain flow): {}", fmt_bps(throttled.avg_bps));

    // Characterize (finds fields in BOTH directions), agree on a key,
    // re-encode.
    let c = characterize(&mut s, &video, &signal, &CharacterizeOpts::default());
    let codec = BilateralCodec::new(0xa7, c.fields.clone());
    let bilateral = run_bilateral(&mut s, &video, &codec, &signal, &ReplayOpts::default());
    println!(
        "   bilateral (fields XOR 0xA7): {} (classified = {})",
        fmt_bps(bilateral.outcome.avg_bps),
        bilateral.classified
    );
    assert!(!bilateral.classified && bilateral.outcome.complete);
    assert!(bilateral.outcome.avg_bps > 2.0 * throttled.avg_bps);
    println!(
        "   -> the proxy reassembled and forwarded a stream whose matching\n\
        fields simply are not there; only endpoint cooperation makes\n\
        this possible (§7)\n"
    );

    // ---------------------------------------------------------------
    // 3. The shared rule cache (§4.2): a community of users pays the
    //    characterization cost once.
    // ---------------------------------------------------------------
    println!("3. community rule-sharing against Iran's censor\n");
    let flow = apps::facebook_http();
    let mut user_a = LiberateProxy::new(
        Session::new(EnvKind::Iran, OsKind::Linux, LiberateConfig::default()),
        CharacterizeOpts::default(),
    )
    .with_cache(RuleCache::new(), "iran");
    user_a.run_flow(&flow).expect("user A evades");
    let rounds_a = user_a.session.replays;
    let cache = user_a.take_cache().unwrap();

    let mut user_b = LiberateProxy::new(
        Session::new(EnvKind::Iran, OsKind::Linux, LiberateConfig::default()),
        CharacterizeOpts::default(),
    )
    .with_cache(cache, "iran");
    user_b.run_flow(&flow).expect("user B evades");
    let rounds_b = user_b.session.replays;
    println!(
        "   user A (characterizes): {rounds_a} replay rounds\n   \
         user B (shared cache):  {rounds_b} replay rounds ({}x cheaper)",
        rounds_a / rounds_b.max(1)
    );
    assert!(user_b.cache_hits == 1 && rounds_b * 2 < rounds_a);
}
