//! Scenario: a subscriber on a Binge-On-style cellular plan streams video
//! that the carrier throttles to ~1.5 Mbps (and zero-rates). lib·erate
//! detects the zero-rating via the data-usage counter, learns the
//! classifier's matching fields, and evades — roughly tripling throughput
//! (§6.2: 1.48 Mbps -> 4.1 Mbps average in the paper).
//!
//! Run with: `cargo run --release --example unthrottle_video`

use liberate::prelude::*;
use liberate::report::fmt_bps;
use liberate_traces::apps;

fn main() {
    println!("scenario: video streaming on a throttling + zero-rating carrier\n");
    let mut session = Session::new(EnvKind::TMobile, OsKind::Linux, LiberateConfig::default());

    // Detect what the carrier does to a video flow.
    let probe_flow = apps::amazon_prime_http(400_000);
    let detection = detect(&mut session, &probe_flow);
    println!(
        "detection: zero-rating = {}, throttling visible = {}",
        detection.zero_rating, detection.throttling
    );
    assert!(detection.differentiated);

    // Learn the classifier.
    let c = characterize(
        &mut session,
        &probe_flow,
        &Signal::ZeroRating,
        &CharacterizeOpts::default(),
    );
    println!("classifier matches on:");
    for f in &c.fields {
        println!("  {:?}", f.as_text());
    }

    // Stream a 10 MB video without and with evasion.
    let video = apps::amazon_prime_http(10_000_000);
    let throttled = session.replay_trace(&video, &ReplayOpts::default());

    let ctx = EvasionContext {
        matching_fields: c.client_field_regions(&probe_flow),
        decoy: decoy_request(),
        middlebox_ttl: 3,
    };
    // Reordering two segments defeats the GET-gated window classifier.
    let evaded = session
        .replay_with(
            &video,
            &Technique::TcpSegmentReorder { segments: 2 },
            &ctx,
            &ReplayOpts::default(),
        )
        .unwrap();

    println!("\n10 MB video stream:");
    println!(
        "  throttled: {} average, {} peak ({:.1} s)",
        fmt_bps(throttled.avg_bps),
        fmt_bps(throttled.peak_bps),
        throttled.duration.as_secs_f64()
    );
    println!(
        "  evading:   {} average, {} peak ({:.1} s)",
        fmt_bps(evaded.avg_bps),
        fmt_bps(evaded.peak_bps),
        evaded.duration.as_secs_f64()
    );
    println!(
        "  speedup:   {:.1}x average throughput",
        evaded.avg_bps / throttled.avg_bps
    );
    assert!(evaded.avg_bps > 2.0 * throttled.avg_bps);
    assert!(evaded.complete && evaded.integrity_ok);

    // Bonus observation from the paper: QUIC isn't classified at all.
    let quic = apps::youtube_quic(1_000_000);
    let out = session.replay_trace(&quic, &ReplayOpts::default());
    println!(
        "\nYouTube-over-QUIC (UDP): completes untouched at {} — the carrier \
         does not classify UDP",
        fmt_bps(out.avg_bps)
    );
    assert!(out.complete);
}
