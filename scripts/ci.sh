#!/usr/bin/env sh
# Tier-1 gate, runnable locally or in CI. Mirrors what the test suite
# enforces, plus formatting when the toolchain component is installed.
#
# Exit: non-zero on the first failing step.
set -eu

cd "$(dirname "$0")/.."

say() { printf '\n== %s\n' "$*"; }

if cargo fmt --version >/dev/null 2>&1; then
    say "cargo fmt --check"
    cargo fmt --all --check
else
    say "cargo fmt unavailable; skipping format check"
fi

say "cargo build --release"
cargo build --release

say "liberate-lint --json (report: target/lint-report.json)"
# Non-allowed findings fail the gate; the JSON report is archived either
# way so CI can surface it as an artifact. Build the binary outside the
# timed region so the budget measures the lint itself, not rustc.
cargo build --release -q -p liberate-lint
lint_start=$(date +%s%N)
if ! ./target/release/liberate-lint --root . --json > target/lint-report.json; then
    cat target/lint-report.json
    echo "liberate-lint: non-allowed findings (see target/lint-report.json)" >&2
    exit 1
fi
lint_end=$(date +%s%N)
lint_ms=$(( (lint_end - lint_start) / 1000000 ))
say "liberate-lint walltime: ${lint_ms}ms (budget: <5000ms)"
if [ "$lint_ms" -ge 5000 ]; then
    echo "liberate-lint: full-workspace lint took ${lint_ms}ms, over budget" >&2
    exit 1
fi

say "cargo test -q"
cargo test -q

say "exp-testbed --trace + journal validation"
cargo run --release -q -p liberate-bench --bin exp-testbed -- --trace target/trace.jsonl >/dev/null
cargo run --release -q -p liberate-obs --bin obs-check -- target/trace.jsonl

say "obs-query diff (same-seed reruns must show zero drift)"
# A second sequential run at the same (default) seed: the exported
# journal — span ids, histograms, counters, every event — must diff
# clean against the first. obs-query exits 1 on any drift.
cargo run --release -q -p liberate-bench --bin exp-testbed -- --trace target/trace-rerun.jsonl >/dev/null
cargo run --release -q -p liberate-obs --bin obs-query -- diff target/trace.jsonl target/trace-rerun.jsonl

say "exp-testbed --workers 4 (engine parity) + journal validation"
cargo run --release -q -p liberate-bench --bin exp-testbed -- --workers 4 --trace target/trace-parallel.jsonl >/dev/null
cargo run --release -q -p liberate-obs --bin obs-check -- target/trace-parallel.jsonl

say "exp-parallel (regenerates results/BENCH_parallel.json)"
cargo run --release -q -p liberate-bench --bin exp-parallel >/dev/null

say "exp-deploy --workers 4 --trace (deployment pool gates, regenerates results/BENCH_deploy.json)"
# Asserts internally: adaptation latency within 1.5x of the sequential
# proxy, ONE re-characterization per scripted rule flip, adapted-technique
# parity at 1/2/4 workers, and >= 1.5x recovery-throughput scaling.
cargo run --release -q -p liberate-bench --bin exp-deploy -- --workers 4 --trace target/trace-deploy.jsonl >/dev/null
cargo run --release -q -p liberate-obs --bin obs-check -- target/trace-deploy.jsonl

say "exp-matcher (matcher parity + speedup gate, regenerates results/BENCH_matcher.json)"
# Asserts internally that the automaton scans >= 5x fewer bytes and is
# no slower than the naive matcher on the largest synthetic trace.
cargo run --release -q -p liberate-bench --bin exp-matcher >/dev/null

say "exp-hotpath (hot-path gates, regenerates results/BENCH_hotpath.json)"
# Asserts internally: payload deep-copies per replay fall >= 5x with
# shared buffers on (vs the eager-copy baseline), the automaton holds
# every profile at every trace size (<= 1.05x naive), and steady-wave
# host cost stays flat from 1 to 4 workers (<= 1.05x).
cargo run --release -q -p liberate-bench --bin exp-hotpath >/dev/null

say "exp-obs (tracing-overhead gate, regenerates results/BENCH_obs.json)"
# Asserts internally: journal-on vs journal-off overhead under 10% host
# wall-clock (LIBERATE_OBS_BUDGET_PCT overrides) and byte-identical
# exports across repetitions.
cargo run --release -q -p liberate-bench --bin exp-obs >/dev/null

say "exp-scale --flows 20000 (reactor scale gates, regenerates results/BENCH_scale.json)"
# Asserts internally: every flow of a 20k-concurrent-flow deployment wave
# runs as a reactor task and reports, marginal peak RSS stays under
# 64 KiB per flow, and aggregate memory grows sub-linearly across a 100x
# flow scale-up. The full 100k-flow curve runs via
# `cargo run --release -p liberate-bench --bin exp-scale`.
cargo run --release -q -p liberate-bench --bin exp-scale -- --flows 20000 >/dev/null

say "nft backend goldens (recording loopback fixture vs tests/fixtures/nft/)"
# Lowers all six profile rule sets through NftSubstrate with the
# recording sink and diffs the emitted nftables programs (and the
# counter->verdict mapping) against the checked-in goldens. Catches wire
# program drift the sim-backed suites never exercise. Regenerate after a
# deliberate lowering change with UPDATE_FIXTURES=1.
cargo test -q --test nft_fixtures

say "bench history (results/BENCH_history.jsonl, exact repeats dedup)"
for bench in results/BENCH_obs.json results/BENCH_parallel.json \
    results/BENCH_deploy.json results/BENCH_matcher.json \
    results/BENCH_hotpath.json results/BENCH_scale.json; do
    [ -f "$bench" ] || continue
    ./target/release/obs-query bench-history "$bench" results/BENCH_history.jsonl
done

say "ci: all green"
