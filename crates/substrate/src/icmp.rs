//! Minimal ICMP support: just enough to generate and recognize the
//! Time Exceeded messages that routers emit when a TTL-limited lib·erate
//! probe expires, which the localization phase (§5.2) listens for.
//!
//! Lives in the substrate crate because ICMP observation is part of the
//! backend-neutral vocabulary: the localization logic parses these errors
//! whether the probe crossed simulated router hops or real ones.

use std::net::Ipv4Addr;

use liberate_packet::checksum::internet_checksum;
use liberate_packet::ipv4::{protocol, Ipv4Header, ParsedIpv4};
use liberate_packet::packet::{Packet, ParsedPacket, Transport};

/// ICMP type 11: Time Exceeded.
pub const TYPE_TIME_EXCEEDED: u8 = 11;
/// ICMP type 3: Destination Unreachable.
pub const TYPE_DEST_UNREACHABLE: u8 = 3;
/// Code 2 of type 3: Protocol Unreachable.
pub const CODE_PROTO_UNREACHABLE: u8 = 2;

/// Build an ICMP message from `router` to the offending packet's source,
/// embedding the original IP header + first 8 payload bytes per RFC 792.
pub fn icmp_error(router: Ipv4Addr, original_wire: &[u8], icmp_type: u8, code: u8) -> Vec<u8> {
    let dest = ParsedIpv4::parse(original_wire)
        .map(|ip| ip.src)
        .unwrap_or(Ipv4Addr::UNSPECIFIED);
    let embed_len = original_wire.len().min(28); // 20-byte header + 8 bytes
    let mut body = vec![icmp_type, code, 0, 0, 0, 0, 0, 0];
    body.extend_from_slice(&original_wire[..embed_len]);
    let ck = internet_checksum(&body);
    body[2..4].copy_from_slice(&ck.to_be_bytes());

    let mut ip = Ipv4Header::new(router, dest);
    ip.ttl = 64;
    Packet {
        ip,
        transport: Transport::Raw(protocol::ICMP),
        payload: body,
    }
    .serialize()
}

/// Build a Time Exceeded message (what a router sends when TTL hits zero).
pub fn time_exceeded(router: Ipv4Addr, original_wire: &[u8]) -> Vec<u8> {
    icmp_error(router, original_wire, TYPE_TIME_EXCEEDED, 0)
}

/// A parsed ICMP error, if the packet is one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpError {
    pub from: Ipv4Addr,
    pub icmp_type: u8,
    pub code: u8,
    /// The embedded original IP header, when parsable.
    pub original: Option<ParsedIpv4>,
}

/// Try to interpret wire bytes as an ICMP error message.
pub fn parse_icmp_error(wire: &[u8]) -> Option<IcmpError> {
    let pkt = ParsedPacket::parse(wire)?;
    if pkt.ip.protocol != protocol::ICMP || pkt.payload.len() < 8 {
        return None;
    }
    let icmp_type = pkt.payload[0];
    if icmp_type != TYPE_TIME_EXCEEDED && icmp_type != TYPE_DEST_UNREACHABLE {
        return None;
    }
    Some(IcmpError {
        from: pkt.ip.src,
        icmp_type,
        code: pkt.payload[1],
        original: ParsedIpv4::parse(&pkt.payload[8..]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_exceeded_roundtrip() {
        let orig = Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 9, 9, 9),
            1234,
            80,
            7,
            0,
            &b"GET /"[..],
        )
        .serialize();
        let router = Ipv4Addr::new(172, 16, 0, 3);
        let icmp = time_exceeded(router, &orig);
        let parsed = parse_icmp_error(&icmp).expect("parses as ICMP error");
        assert_eq!(parsed.from, router);
        assert_eq!(parsed.icmp_type, TYPE_TIME_EXCEEDED);
        let embedded = parsed.original.expect("embedded header");
        assert_eq!(embedded.src, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(embedded.dst, Ipv4Addr::new(10, 9, 9, 9));
    }

    #[test]
    fn icmp_error_goes_back_to_source() {
        let orig = Packet::udp(
            Ipv4Addr::new(192, 168, 1, 5),
            Ipv4Addr::new(8, 8, 8, 8),
            5000,
            53,
            &b"q"[..],
        )
        .serialize();
        let icmp = icmp_error(
            Ipv4Addr::new(172, 16, 0, 1),
            &orig,
            TYPE_DEST_UNREACHABLE,
            CODE_PROTO_UNREACHABLE,
        );
        let pkt = ParsedPacket::parse(&icmp).unwrap();
        assert_eq!(pkt.ip.dst, Ipv4Addr::new(192, 168, 1, 5));
    }

    #[test]
    fn non_icmp_is_not_an_error() {
        let tcp = Packet::tcp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            1,
            2,
            0,
            0,
            vec![],
        )
        .serialize();
        assert!(parse_icmp_error(&tcp).is_none());
    }
}
