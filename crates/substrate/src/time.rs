//! Simulated time.
//!
//! The paper's measurements involve wall-clock phenomena — 120 s classifier
//! timeouts, 240 s flush probes, time-of-day load cycles (Figure 4), and
//! characterization runs quoted in minutes. A virtual clock reproduces all
//! of them deterministically and instantly.
//!
//! `SimTime` lives in the substrate crate (not the simulator) because it is
//! part of the [`crate::Substrate`] vocabulary: every backend — simulated
//! or real-wire — reports observation timestamps in these units.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in microseconds since the start of
/// the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_micros(micros: u64) -> SimTime {
        SimTime(micros)
    }

    pub fn from_secs(secs: u64) -> SimTime {
        SimTime(secs * 1_000_000)
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration since an earlier instant (saturating).
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(earlier.0))
    }

    /// Seconds past local midnight, given the wall-clock second at which the
    /// simulation started. Drives the GFC time-of-day load model (Fig. 4).
    pub fn time_of_day_secs(self, sim_start_wallclock_secs: u64) -> u64 {
        (sim_start_wallclock_secs + self.0 / 1_000_000) % 86_400
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_micros() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_micros() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_micros(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(2) + Duration::from_millis(500);
        assert_eq!(t.as_micros(), 2_500_000);
        assert_eq!(t - SimTime::from_secs(1), Duration::from_micros(1_500_000));
        assert_eq!(SimTime::ZERO - t, Duration::ZERO); // saturating
    }

    #[test]
    fn time_of_day_wraps() {
        // Simulation starts at 23:59:50 wall clock; 20 sim-seconds later it
        // is 00:00:10.
        let start = 23 * 3600 + 59 * 60 + 50;
        let t = SimTime::from_secs(20);
        assert_eq!(t.time_of_day_secs(start), 10);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(SimTime::from_micros(5).as_secs_f64(), 5e-6);
    }
}
