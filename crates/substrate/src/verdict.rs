//! The verdict/effects vocabulary shared by every backend: what a
//! middlebox (simulated path element or real rule engine) decided to do
//! with a packet, and what it injected while deciding.
//!
//! These types used to live in `liberate-netsim::element` next to the
//! `PathElement` trait; they moved here because the nftables-shaped
//! backend maps counter deltas back into the same vocabulary, and core
//! must be able to consume it without naming the simulator.

use liberate_packet::flow::Direction;

use crate::buf::PacketBuf;
use crate::time::SimTime;

/// A packet scheduled for (re)transmission at a given instant. The wire
/// bytes are a shared [`PacketBuf`] view: forwarding and duplicating a
/// packet moves or refcounts the buffer, never copies it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedPacket {
    pub at: SimTime,
    pub wire: PacketBuf,
}

impl TimedPacket {
    pub fn now(at: SimTime, wire: impl Into<PacketBuf>) -> TimedPacket {
        TimedPacket {
            at,
            wire: wire.into(),
        }
    }
}

/// What a path element decided to do with a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Forward these packets onward in the packet's original direction.
    /// Usually one packet at `now`; shapers delay, normalizers may emit
    /// several (e.g. a reassembled datagram), proxies may emit re-written
    /// segments.
    Forward(Vec<TimedPacket>),
    /// Silently drop.
    Drop,
}

impl Verdict {
    /// Forward a single packet immediately.
    pub fn pass(now: SimTime, wire: impl Into<PacketBuf>) -> Verdict {
        Verdict::Forward(vec![TimedPacket::now(now, wire)])
    }
}

/// Side effects a path element may produce while processing a packet:
/// injected packets traveling toward either endpoint (RST injection, block
/// pages, ICMP errors). Injected packets enter the path *at this element's
/// position* and traverse the remaining elements in their direction.
#[derive(Debug, Default)]
pub struct Effects {
    pub toward_client: Vec<TimedPacket>,
    pub toward_server: Vec<TimedPacket>,
}

impl Effects {
    pub fn inject(&mut self, dir: Direction, pkt: TimedPacket) {
        match dir {
            Direction::ServerToClient => self.toward_client.push(pkt),
            Direction::ClientToServer => self.toward_server.push(pkt),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.toward_client.is_empty() && self.toward_server.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_routing() {
        let mut fx = Effects::default();
        assert!(fx.is_empty());
        fx.inject(
            Direction::ServerToClient,
            TimedPacket::now(SimTime::ZERO, vec![1]),
        );
        fx.inject(
            Direction::ClientToServer,
            TimedPacket::now(SimTime::ZERO, vec![2]),
        );
        assert_eq!(fx.toward_client.len(), 1);
        assert_eq!(fx.toward_server.len(), 1);
        assert!(!fx.is_empty());
    }

    #[test]
    fn verdict_pass_is_single_immediate() {
        match Verdict::pass(SimTime::from_secs(3), vec![9]) {
            Verdict::Forward(v) => {
                assert_eq!(v.len(), 1);
                assert_eq!(v[0].at, SimTime::from_secs(3));
            }
            Verdict::Drop => panic!("expected forward"),
        }
    }
}
