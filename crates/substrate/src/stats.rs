//! Throughput measurement over timestamped byte arrivals — used for the
//! throttling-detection signal and the §6.2 throughput comparison
//! (Amazon Prime over T-Mobile: 1.48 Mbps throttled vs 4.1 Mbps evading).

use std::time::Duration;

use crate::time::SimTime;

/// Accumulates (time, bytes) samples and reports average/peak throughput.
#[derive(Debug, Default, Clone)]
pub struct ThroughputMeter {
    samples: Vec<(SimTime, usize)>,
}

impl ThroughputMeter {
    /// Record a sample, keeping `samples` sorted by time. Arrivals are
    /// almost always in order (the simulator's clock is monotonic), so the
    /// common case is a plain push; a late sample pays one binary search
    /// plus an insert instead of forcing `peak_bps` to clone-and-sort the
    /// whole vector on every call.
    pub fn record(&mut self, at: SimTime, bytes: usize) {
        match self.samples.last() {
            Some((last, _)) if *last > at => {
                let pos = self.samples.partition_point(|(t, _)| *t <= at);
                self.samples.insert(pos, (at, bytes));
            }
            _ => self.samples.push((at, bytes)),
        }
    }

    pub fn total_bytes(&self) -> u64 {
        self.samples.iter().map(|(_, b)| *b as u64).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// First and last sample times (samples are kept sorted by `record`).
    pub fn span(&self) -> Option<(SimTime, SimTime)> {
        let (first, _) = self.samples.first()?;
        let (last, _) = self.samples.last()?;
        Some((*first, *last))
    }

    /// Average throughput in bits per second over the sample span.
    pub fn average_bps(&self) -> f64 {
        let Some((first, last)) = self.span() else {
            return 0.0;
        };
        let secs = (last - first).as_secs_f64().max(1e-6);
        self.total_bytes() as f64 * 8.0 / secs
    }

    /// Peak throughput in bits per second over any window of `window`.
    pub fn peak_bps(&self, window: Duration) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let win = window.as_secs_f64().max(1e-6);
        let mut best = 0.0f64;
        let mut lo = 0;
        let mut in_window = 0u64;
        for hi in 0..self.samples.len() {
            in_window += self.samples[hi].1 as u64;
            while self.samples[hi].0 - self.samples[lo].0 > window {
                in_window -= self.samples[lo].1 as u64;
                lo += 1;
            }
            best = best.max(in_window as f64 * 8.0 / win);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_over_span() {
        let mut m = ThroughputMeter::default();
        // 1000 bytes per second for 10 seconds => 8 kbps.
        for s in 0..=10u64 {
            m.record(SimTime::from_secs(s), 1000);
        }
        let avg = m.average_bps();
        assert!((avg - 8_800.0).abs() < 100.0, "avg {avg}"); // 11 kB / 10 s
        assert_eq!(m.total_bytes(), 11_000);
    }

    #[test]
    fn peak_exceeds_average_for_bursts() {
        let mut m = ThroughputMeter::default();
        // A one-second burst of 10 kB then silence for 9 s.
        m.record(SimTime::from_secs(0), 5_000);
        m.record(SimTime::from_millis_helper(500), 5_000);
        m.record(SimTime::from_secs(10), 1);
        let avg = m.average_bps();
        let peak = m.peak_bps(Duration::from_secs(1));
        assert!(peak > avg * 5.0, "peak {peak} avg {avg}");
    }

    #[test]
    fn out_of_order_records_match_in_order() {
        // Same burst as above, recorded backwards and interleaved: the
        // sorted-on-insert path must give identical answers.
        let mut fwd = ThroughputMeter::default();
        fwd.record(SimTime::from_secs(0), 5_000);
        fwd.record(SimTime::from_millis_helper(500), 5_000);
        fwd.record(SimTime::from_secs(10), 1);

        let mut rev = ThroughputMeter::default();
        rev.record(SimTime::from_secs(10), 1);
        rev.record(SimTime::from_millis_helper(500), 5_000);
        rev.record(SimTime::from_secs(0), 5_000);

        assert_eq!(fwd.span(), rev.span());
        assert_eq!(fwd.total_bytes(), rev.total_bytes());
        assert_eq!(fwd.average_bps(), rev.average_bps());
        assert_eq!(
            fwd.peak_bps(Duration::from_secs(1)),
            rev.peak_bps(Duration::from_secs(1))
        );
        assert!(rev.peak_bps(Duration::from_secs(1)) > 79_000.0);
    }

    #[test]
    fn duplicate_timestamps_keep_all_samples() {
        let mut m = ThroughputMeter::default();
        m.record(SimTime::from_secs(1), 100);
        m.record(SimTime::from_secs(1), 200);
        m.record(SimTime::from_secs(0), 50);
        assert_eq!(m.total_bytes(), 350);
        assert_eq!(
            m.span(),
            Some((SimTime::from_secs(0), SimTime::from_secs(1)))
        );
        // All 350 bytes land inside a 2 s window.
        let peak = m.peak_bps(Duration::from_secs(2));
        assert!((peak - 350.0 * 8.0 / 2.0).abs() < 1e-6, "peak {peak}");
    }

    #[test]
    fn empty_meter_is_zero() {
        let m = ThroughputMeter::default();
        assert_eq!(m.average_bps(), 0.0);
        assert_eq!(m.peak_bps(Duration::from_secs(1)), 0.0);
    }

    impl SimTime {
        fn from_millis_helper(ms: u64) -> SimTime {
            SimTime::from_micros(ms * 1000)
        }
    }
}
