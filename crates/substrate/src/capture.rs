//! Capture taps: the substrate's tcpdump.
//!
//! The paper's RS? ("reaches server?") measurement is a packet capture at
//! the replay server; CC? diagnostics in the testbed read the middlebox
//! directly. Taps record raw wire bytes at well-defined points so
//! experiments can answer both, and can be exported as pcap files. Every
//! backend — the simulator and the real-wire one — fills the same buffer.

use liberate_packet::pcap::{write_pcap, CapturedPacket};

use crate::buf::PacketBuf;
use crate::time::SimTime;

/// Where on the path a packet was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TapPoint {
    /// Leaving the client NIC (what lib·erate sent).
    ClientEgress,
    /// Arriving at the client NIC (responses, RSTs, block pages, ICMP).
    ClientIngress,
    /// Arriving at the server NIC — the paper's RS? vantage.
    ServerIngress,
    /// Leaving the server NIC.
    ServerEgress,
}

impl TapPoint {
    /// All four tap points, in declaration order.
    pub const ALL: [TapPoint; 4] = [
        TapPoint::ClientEgress,
        TapPoint::ClientIngress,
        TapPoint::ServerIngress,
        TapPoint::ServerEgress,
    ];

    fn index(self) -> usize {
        match self {
            TapPoint::ClientEgress => 0,
            TapPoint::ClientIngress => 1,
            TapPoint::ServerIngress => 2,
            TapPoint::ServerEgress => 3,
        }
    }
}

/// One captured packet. The wire bytes are a shared [`PacketBuf`] view:
/// recording a packet at a tap refcounts the in-flight buffer instead of
/// copying it (the buffer is immutable once recorded — in-path mutation
/// goes through copy-on-write, so taps keep the bytes they saw).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureRecord {
    pub at: SimTime,
    pub point: TapPoint,
    pub wire: PacketBuf,
}

/// An in-memory capture buffer.
///
/// Records every tap point by default. Like a real capture with a BPF
/// filter, recording can be narrowed to the points a caller's detectors
/// actually read ([`Capture::set_recorded_points`]) — a skipped tap
/// holds no reference to the in-flight buffer, so downstream in-path
/// mutation (TTL decrements at hops) stays in-place instead of faulting
/// a copy-on-write.
#[derive(Debug)]
pub struct Capture {
    records: Vec<CaptureRecord>,
    enabled: [bool; 4],
}

impl Default for Capture {
    fn default() -> Capture {
        Capture {
            records: Vec::new(),
            enabled: [true; 4],
        }
    }
}

impl Capture {
    /// Record only the given tap points from now on; everything else is
    /// dropped at the tap. Does not discard already-buffered records.
    pub fn set_recorded_points(&mut self, points: &[TapPoint]) {
        self.enabled = [false; 4];
        for p in points {
            self.enabled[p.index()] = true;
        }
    }

    pub fn record(&mut self, at: SimTime, point: TapPoint, buf: impl Into<PacketBuf>) {
        if !self.enabled[point.index()] {
            return;
        }
        self.records.push(CaptureRecord {
            at,
            point,
            wire: buf.into(),
        });
    }

    pub fn all(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Records observed at one tap point.
    pub fn at(&self, point: TapPoint) -> impl Iterator<Item = &CaptureRecord> {
        self.records.iter().filter(move |r| r.point == point)
    }

    /// Whether any packet at `point` satisfies `pred`.
    pub fn any_at(&self, point: TapPoint, mut pred: impl FnMut(&[u8]) -> bool) -> bool {
        self.at(point).any(|r| pred(&r.wire))
    }

    pub fn clear(&mut self) {
        self.records.clear();
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Export one tap point as a pcap byte buffer. The per-record
    /// materialization is a sanctioned egress copy.
    pub fn to_pcap(&self, point: TapPoint) -> Vec<u8> {
        let packets: Vec<CapturedPacket> = self
            .at(point)
            .map(|r| CapturedPacket {
                timestamp_micros: r.at.as_micros(),
                bytes: r.wire.copy_to_vec(),
            })
            .collect();
        let mut out = Vec::new();
        write_pcap(&mut out, &packets).expect("writing to Vec cannot fail");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taps_filter_by_point() {
        let mut c = Capture::default();
        c.record(SimTime::ZERO, TapPoint::ClientEgress, &[1]);
        c.record(SimTime::from_secs(1), TapPoint::ServerIngress, &[2, 2]);
        c.record(SimTime::from_secs(2), TapPoint::ServerIngress, &[3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.at(TapPoint::ServerIngress).count(), 2);
        assert!(c.any_at(TapPoint::ServerIngress, |w| w.len() == 2));
        assert!(!c.any_at(TapPoint::ClientIngress, |_| true));
    }

    #[test]
    fn pcap_export_contains_only_requested_point() {
        let mut c = Capture::default();
        c.record(SimTime::ZERO, TapPoint::ClientEgress, &[0x45, 0, 0, 0]);
        c.record(SimTime::ZERO, TapPoint::ServerIngress, &[0x45]);
        let pcap = c.to_pcap(TapPoint::ServerIngress);
        // Global header (24) + one record header (16) + 1 byte.
        assert_eq!(pcap.len(), 24 + 16 + 1);
    }
}
