//! Capture taps: the substrate's tcpdump.
//!
//! The paper's RS? ("reaches server?") measurement is a packet capture at
//! the replay server; CC? diagnostics in the testbed read the middlebox
//! directly. Taps record raw wire bytes at well-defined points so
//! experiments can answer both, and can be exported as pcap files. Every
//! backend — the simulator and the real-wire one — fills the same buffer.

use liberate_packet::pcap::{write_pcap, CapturedPacket};

use crate::time::SimTime;

/// Where on the path a packet was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TapPoint {
    /// Leaving the client NIC (what lib·erate sent).
    ClientEgress,
    /// Arriving at the client NIC (responses, RSTs, block pages, ICMP).
    ClientIngress,
    /// Arriving at the server NIC — the paper's RS? vantage.
    ServerIngress,
    /// Leaving the server NIC.
    ServerEgress,
}

/// One captured packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaptureRecord {
    pub at: SimTime,
    pub point: TapPoint,
    pub wire: Vec<u8>,
}

/// An in-memory capture buffer.
#[derive(Debug, Default)]
pub struct Capture {
    records: Vec<CaptureRecord>,
}

impl Capture {
    pub fn record(&mut self, at: SimTime, point: TapPoint, wire: &[u8]) {
        self.records.push(CaptureRecord {
            at,
            point,
            wire: wire.to_vec(),
        });
    }

    pub fn all(&self) -> &[CaptureRecord] {
        &self.records
    }

    /// Records observed at one tap point.
    pub fn at(&self, point: TapPoint) -> impl Iterator<Item = &CaptureRecord> {
        self.records.iter().filter(move |r| r.point == point)
    }

    /// Whether any packet at `point` satisfies `pred`.
    pub fn any_at(&self, point: TapPoint, mut pred: impl FnMut(&[u8]) -> bool) -> bool {
        self.at(point).any(|r| pred(&r.wire))
    }

    pub fn clear(&mut self) {
        self.records.clear();
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Export one tap point as a pcap byte buffer.
    pub fn to_pcap(&self, point: TapPoint) -> Vec<u8> {
        let packets: Vec<CapturedPacket> = self
            .at(point)
            .map(|r| CapturedPacket {
                timestamp_micros: r.at.as_micros(),
                bytes: r.wire.clone(),
            })
            .collect();
        let mut out = Vec::new();
        write_pcap(&mut out, &packets).expect("writing to Vec cannot fail");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taps_filter_by_point() {
        let mut c = Capture::default();
        c.record(SimTime::ZERO, TapPoint::ClientEgress, &[1]);
        c.record(SimTime::from_secs(1), TapPoint::ServerIngress, &[2, 2]);
        c.record(SimTime::from_secs(2), TapPoint::ServerIngress, &[3]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.at(TapPoint::ServerIngress).count(), 2);
        assert!(c.any_at(TapPoint::ServerIngress, |w| w.len() == 2));
        assert!(!c.any_at(TapPoint::ClientIngress, |_| true));
    }

    #[test]
    fn pcap_export_contains_only_requested_point() {
        let mut c = Capture::default();
        c.record(SimTime::ZERO, TapPoint::ClientEgress, &[0x45, 0, 0, 0]);
        c.record(SimTime::ZERO, TapPoint::ServerIngress, &[0x45]);
        let pcap = c.to_pcap(TapPoint::ServerIngress);
        // Global header (24) + one record header (16) + 1 byte.
        assert_eq!(pcap.len(), 24 + 16 + 1);
    }
}
