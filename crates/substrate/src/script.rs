//! The scripted replay server, backend-neutral.
//!
//! Fig. 3's replay server plays back the server side of a recorded trace
//! when the corresponding client bytes arrive. The *transport* differs per
//! backend (the simulator runs it inside `ServerHost`; the nftables
//! backend runs it behind its loopback delivery path) but the scripting
//! logic is identical, so it lives here: a plain-data [`ServerScript`]
//! built by core from the trace, a [`ScriptEngine`] state machine, and a
//! shared [`ServerObs`] the observing replay engine reads afterwards.

use std::sync::Arc;

use parking_lot::Mutex;

/// The server's half of a recorded trace, lowered to plain data.
#[derive(Debug, Clone, Default)]
pub struct ServerScript {
    /// (cumulative client bytes required, response payload) for TCP.
    pub tcp_script: Vec<(u64, Vec<u8>)>,
    /// (client datagram count required, response payload) for UDP.
    pub udp_script: Vec<(usize, Vec<u8>)>,
    /// Bytes at the start of the client stream to discard (server-side
    /// support for the dummy-prefix technique).
    pub skip_prefix: u64,
}

/// State shared between the scripted server (running inside a backend's
/// endpoint) and the observing replay engine.
#[derive(Debug, Default)]
pub struct ServerObs {
    /// Client stream bytes delivered to the app (TCP) — after prefix skip.
    pub received_stream: Vec<u8>,
    /// Raw delivered bytes before prefix skipping.
    pub raw_received: u64,
    /// UDP datagrams delivered.
    pub datagrams: Vec<Vec<u8>>,
    /// Server messages already emitted.
    pub responses_sent: usize,
}

/// The script playback state machine. Backends feed it in-order delivered
/// client bytes/datagrams and transmit whatever it returns.
pub struct ScriptEngine {
    script: ServerScript,
    shared: Arc<Mutex<ServerObs>>,
}

impl ScriptEngine {
    pub fn new(script: ServerScript) -> (ScriptEngine, Arc<Mutex<ServerObs>>) {
        let shared = Arc::new(Mutex::new(ServerObs::default()));
        (
            ScriptEngine {
                script,
                shared: shared.clone(),
            },
            shared,
        )
    }

    /// In-order TCP bytes delivered. Returns response bytes to send back
    /// (may be empty).
    pub fn on_tcp_data(&mut self, data: &[u8]) -> Vec<u8> {
        let mut shared = self.shared.lock();
        shared.raw_received += data.len() as u64;
        // Apply the prefix skip.
        let mut data = data;
        let consumed_before = shared.raw_received - data.len() as u64;
        if consumed_before < self.script.skip_prefix {
            let to_skip =
                (self.script.skip_prefix - consumed_before).min(data.len() as u64) as usize;
            data = &data[to_skip..];
        }
        shared.received_stream.extend_from_slice(data);
        let effective = shared.received_stream.len() as u64;
        let mut out = Vec::new();
        while shared.responses_sent < self.script.tcp_script.len() {
            let (needed, payload) = &self.script.tcp_script[shared.responses_sent];
            if effective >= *needed {
                out.extend_from_slice(payload);
                shared.responses_sent += 1;
            } else {
                break;
            }
        }
        out
    }

    /// A UDP datagram arrived. Returns zero or more response datagrams.
    pub fn on_udp_datagram(&mut self, data: &[u8]) -> Vec<Vec<u8>> {
        let mut shared = self.shared.lock();
        shared.datagrams.push(data.to_vec());
        let count = shared.datagrams.len();
        let mut out = Vec::new();
        while shared.responses_sent < self.script.udp_script.len() {
            let (needed, payload) = &self.script.udp_script[shared.responses_sent];
            if count >= *needed {
                // lint: allow(payload-copy) script-owned response bytes,
                // not wire payload: each send needs its own Vec.
                out.push(payload.clone());
                shared.responses_sent += 1;
            } else {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn script() -> ServerScript {
        ServerScript {
            tcp_script: vec![(5, b"first".to_vec()), (10, b"second".to_vec())],
            udp_script: vec![(1, b"pong".to_vec())],
            skip_prefix: 0,
        }
    }

    #[test]
    fn tcp_responses_fire_at_cumulative_thresholds() {
        let (mut eng, obs) = ScriptEngine::new(script());
        assert!(eng.on_tcp_data(b"abc").is_empty());
        assert_eq!(eng.on_tcp_data(b"de"), b"first");
        assert_eq!(eng.on_tcp_data(b"fghij"), b"second");
        let obs = obs.lock();
        assert_eq!(obs.received_stream, b"abcdefghij");
        assert_eq!(obs.raw_received, 10);
        assert_eq!(obs.responses_sent, 2);
    }

    #[test]
    fn skip_prefix_discards_leading_bytes() {
        let mut s = script();
        s.skip_prefix = 3;
        let (mut eng, obs) = ScriptEngine::new(s);
        // 3 dummy bytes + the real 5: responses key off the post-skip
        // stream, so "first" fires once 5 effective bytes arrived.
        assert!(eng.on_tcp_data(b"XXXab").is_empty());
        assert_eq!(eng.on_tcp_data(b"cde"), b"first");
        let obs = obs.lock();
        assert_eq!(obs.received_stream, b"abcde");
        assert_eq!(obs.raw_received, 8);
    }

    #[test]
    fn udp_responses_key_off_datagram_count() {
        let (mut eng, obs) = ScriptEngine::new(script());
        assert_eq!(eng.on_udp_datagram(b"ping"), vec![b"pong".to_vec()]);
        assert_eq!(obs.lock().datagrams.len(), 1);
    }
}
