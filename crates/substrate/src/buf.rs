//! Zero-copy wire buffers — moved to the bottom-of-stack
//! `liberate-packet` crate so the tolerant parsers can hand out payload
//! views that share the wire buffer; re-exported here so substrate-facing
//! code keeps its paths.

pub use liberate_packet::buf::*;
