//! # liberate-substrate
//!
//! The seam between lib·erate's probe/evade logic and the world it runs
//! against. `crates/core` is generic over the [`Substrate`] trait — the
//! injection/observation/clock surface the replay engine, the blinding
//! bisection, and the deployment pool actually use — so the same logic
//! drives two backends:
//!
//! - **`SimSubstrate`** (in `liberate`'s `sim` module): the deterministic
//!   discrete-event simulator from `liberate-netsim`, the reference
//!   implementation and default backend;
//! - **[`nft::NftSubstrate`]**: an nftables-shaped real-wire backend that
//!   lowers the six §6 profile rule sets into table/chain/counter
//!   programs, shells out behind a [`nft::RuleProgramSink`], and maps
//!   counter deltas back into the same verdict vocabulary.
//!
//! This crate also hosts the backend-neutral vocabulary both worlds
//! speak: [`time::SimTime`], [`verdict::Verdict`]/[`verdict::Effects`],
//! [`capture::Capture`], [`icmp::IcmpError`], [`stats::ThroughputMeter`],
//! and the scripted replay server ([`script`]).

pub mod buf;
pub mod capture;
pub mod icmp;
pub mod nft;
pub mod script;
pub mod stats;
pub mod time;
pub mod verdict;

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use liberate_obs::Journal;
use liberate_packet::flow::FlowKey;
use parking_lot::Mutex;

use crate::capture::{Capture, TapPoint};
use crate::script::{ServerObs, ServerScript};
use crate::time::SimTime;

/// The per-lane slice of a backend's mutable timeline state, for
/// event-driven (reactor) execution: each in-flight flow task owns one
/// `LaneState` holding its private virtual clock, step-epoch baseline,
/// capture buffer, and staging journal. [`Substrate::swap_lane`]
/// exchanges it with the backend's live state around each task poll, so
/// thousands of flows can interleave on one backend while each observes
/// a coherent private timeline.
#[derive(Debug)]
pub struct LaneState {
    pub clock: SimTime,
    /// Baseline for the backend's inter-event-gap accounting
    /// (`step-sim-micros`), saved and restored with the clock.
    pub step_epoch_us: u64,
    pub capture: Capture,
    /// The lane's staging journal; spliced into the worker journal in
    /// canonical order when the wave completes.
    pub journal: Arc<Journal>,
}

impl LaneState {
    /// A fresh lane starting at `clock`, with its capture narrowed to
    /// `points` (mirror the session's own narrowing) and recording into
    /// `journal`.
    pub fn new(clock: SimTime, points: &[TapPoint], journal: Arc<Journal>) -> LaneState {
        let mut capture = Capture::default();
        capture.set_recorded_points(points);
        LaneState {
            clock,
            step_epoch_us: clock.as_micros(),
            capture,
            journal,
        }
    }
}

/// A classifier's answer for one flow, backend-neutral: the class it
/// assigned and whether a non-no-op policy (throttle, block, zero-rate)
/// is attached — i.e. whether classification has observable effects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassVerdict {
    pub class: String,
    pub effective: bool,
}

/// The world lib·erate runs against: packet injection, response and
/// ICMP observation, classifier verdict readout, and a virtual clock.
///
/// Object-safe and `Send` so whole sessions (and their substrates) can
/// fan out across pool worker threads, boxed or not.
pub trait Substrate: Send {
    /// Short backend identifier for journal tagging ("sim", "nft").
    fn backend_name(&self) -> &'static str;

    /// Human-readable environment name (e.g. "Testbed", "China").
    fn env_name(&self) -> String;

    /// TTL-decrementing hops before the middlebox: a probe TTL of
    /// `hops_before_middlebox() + 1` reaches it without reaching the
    /// server (§5.2 localization).
    fn hops_before_middlebox(&self) -> u8;

    /// The current instant on the backend clock.
    fn clock(&self) -> SimTime;

    /// Advance the clock with no traffic (pause-based flush probes),
    /// processing anything scheduled inside the window.
    fn advance(&mut self, d: Duration);

    /// Process all in-flight traffic until the backend quiesces.
    fn run_until_idle(&mut self);

    /// Inject one raw wire packet from the client after `delay`.
    fn inject_client(&mut self, delay: Duration, wire: Vec<u8>);

    /// Drain the packets delivered to the client so far. Buffers are
    /// shared views ([`buf::PacketBuf`]); callers parse or copy as needed.
    fn take_client_inbox(&mut self) -> Vec<(SimTime, buf::PacketBuf)>;

    /// Install the scripted replay server for the next flow, returning
    /// the observation handle the replay engine reads afterwards.
    fn install_server_script(&mut self, script: ServerScript) -> Arc<Mutex<ServerObs>>;

    /// The capture buffer (RS? vantage and friends).
    fn capture(&self) -> &Capture;

    /// Clear the capture buffer between replays.
    fn clear_capture(&mut self);

    /// Narrow the capture to the given tap points (a BPF-style filter).
    /// A skipped tap holds no reference to in-flight buffers, keeping
    /// downstream in-path mutation copy-free. Default: no-op (record
    /// everything).
    fn set_capture_points(&mut self, _points: &[crate::capture::TapPoint]) {}

    /// The observability journal this backend writes into.
    fn journal(&self) -> &Arc<Journal>;

    /// Replace the journal (e.g. to share one across sessions).
    fn set_journal(&mut self, journal: Arc<Journal>);

    /// Between-wave housekeeping: batch-reclaim whatever flow state the
    /// backend's classifier has let go idle. The deployment pool calls
    /// this once per wave, when its workers are quiescent, so a wave's
    /// abandoned flows are swept in one pass instead of bleeding out one
    /// lazy eviction per future lookup. Backends with no reclaimable
    /// state do nothing.
    fn reclaim_flows(&mut self) {}

    /// The middlebox's billed-byte counter, when the backend exposes one
    /// (the §5.3 zero-rating side channel). `None` means no counter is
    /// readable and callers fall back to their own accounting.
    fn billed_bytes(&mut self) -> Option<u64>;

    /// The classifier's verdict for `flow`, when one is readable
    /// (testbed-style direct readout, or counter deltas on the real
    /// wire). `None` means unclassified or unreadable.
    fn verdict_for(&mut self, flow: FlowKey) -> Option<ClassVerdict>;

    /// Whether this backend can virtualize per-flow timelines for the
    /// event-driven reactor ([`Self::swap_lane`] and friends). Backends
    /// that cannot (real-wire ones: time is not swappable there) return
    /// false and the reactor falls back to chained run-to-completion
    /// execution, which needs none of the lane surface.
    fn supports_lanes(&self) -> bool {
        false
    }

    /// Exchange the backend's live timeline state (clock, step-epoch
    /// baseline, capture, journal) with `lane`'s stash. Only called while
    /// the backend is quiescent (`run_until_idle` done, inbox drained),
    /// and only when [`Self::supports_lanes`] is true; the default is a
    /// no-op for backends without lanes.
    fn swap_lane(&mut self, _lane: &mut LaneState) {}

    /// Restart the backend's inter-event-gap baseline (`step-sim-micros`)
    /// at the current clock. The replay engine calls this at the top of
    /// every replay so the gap distribution is a per-replay property,
    /// identical across sequential and lane-interleaved execution.
    /// Backends without step accounting do nothing.
    fn mark_step_epoch(&mut self) {}

    /// Install a scripted replay server for one client's flows, keyed by
    /// client address, leaving other clients' scripted servers in place —
    /// the reactor's multiplexed variant of
    /// [`Self::install_server_script`]. The default (for backends serving
    /// one flow at a time) falls back to the unkeyed install.
    fn install_server_script_for(
        &mut self,
        _client: Ipv4Addr,
        script: ServerScript,
    ) -> Arc<Mutex<ServerObs>> {
        self.install_server_script(script)
    }

    /// Tear down the scripted server (and any per-connection endpoint
    /// state) for one client installed via
    /// [`Self::install_server_script_for`], bounding endpoint memory when
    /// a reactor drives very many flows. Default: no-op.
    fn remove_server_script_for(&mut self, _client: Ipv4Addr) {}
}

impl Substrate for Box<dyn Substrate> {
    fn backend_name(&self) -> &'static str {
        (**self).backend_name()
    }
    fn env_name(&self) -> String {
        (**self).env_name()
    }
    fn hops_before_middlebox(&self) -> u8 {
        (**self).hops_before_middlebox()
    }
    fn clock(&self) -> SimTime {
        (**self).clock()
    }
    fn advance(&mut self, d: Duration) {
        (**self).advance(d)
    }
    fn run_until_idle(&mut self) {
        (**self).run_until_idle()
    }
    fn inject_client(&mut self, delay: Duration, wire: Vec<u8>) {
        (**self).inject_client(delay, wire)
    }
    fn take_client_inbox(&mut self) -> Vec<(SimTime, buf::PacketBuf)> {
        (**self).take_client_inbox()
    }
    fn install_server_script(&mut self, script: ServerScript) -> Arc<Mutex<ServerObs>> {
        (**self).install_server_script(script)
    }
    fn capture(&self) -> &Capture {
        (**self).capture()
    }
    fn clear_capture(&mut self) {
        (**self).clear_capture()
    }
    fn set_capture_points(&mut self, points: &[crate::capture::TapPoint]) {
        (**self).set_capture_points(points)
    }
    fn journal(&self) -> &Arc<Journal> {
        (**self).journal()
    }
    fn set_journal(&mut self, journal: Arc<Journal>) {
        (**self).set_journal(journal)
    }
    fn reclaim_flows(&mut self) {
        (**self).reclaim_flows()
    }
    fn billed_bytes(&mut self) -> Option<u64> {
        (**self).billed_bytes()
    }
    fn verdict_for(&mut self, flow: FlowKey) -> Option<ClassVerdict> {
        (**self).verdict_for(flow)
    }
    fn supports_lanes(&self) -> bool {
        (**self).supports_lanes()
    }
    fn swap_lane(&mut self, lane: &mut LaneState) {
        (**self).swap_lane(lane)
    }
    fn mark_step_epoch(&mut self) {
        (**self).mark_step_epoch()
    }
    fn install_server_script_for(
        &mut self,
        client: Ipv4Addr,
        script: ServerScript,
    ) -> Arc<Mutex<ServerObs>> {
        (**self).install_server_script_for(client, script)
    }
    fn remove_server_script_for(&mut self, client: Ipv4Addr) {
        (**self).remove_server_script_for(client)
    }
}

pub mod prelude {
    pub use crate::buf::{CopyTally, PacketBuf};
    pub use crate::capture::{Capture, CaptureRecord, TapPoint};
    pub use crate::icmp::{parse_icmp_error, IcmpError};
    pub use crate::nft::{NftSubstrate, RecordingSink, RuleProgramSink, WireRuleset};
    pub use crate::script::{ScriptEngine, ServerObs, ServerScript};
    pub use crate::stats::ThroughputMeter;
    pub use crate::time::SimTime;
    pub use crate::verdict::{Effects, TimedPacket, Verdict};
    pub use crate::{ClassVerdict, LaneState, Substrate};
}
