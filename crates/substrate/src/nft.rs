//! The nftables-shaped real-wire backend (§4.4's transparent-proxy
//! deployment made real).
//!
//! The six §6 profile rule sets are lowered ([`WireRuleset::lower`]) into
//! an nftables program — one `inet` table per profile with a `classify`
//! chain hooked on forward, a `stats` chain it jumps to, one named
//! counter per rule, and one policy rule per traffic class — in the style
//! of trafficmon's per-service table/chain/set programming. The program
//! is handed to a [`RuleProgramSink`]: [`NftCli`] shells out to a real
//! `nft` binary when one is present; [`RecordingSink`] is the loopback
//! fixture CI diffs golden programs against. Counter deltas read back
//! through the sink map into the same [`ClassVerdict`] vocabulary core
//! consumes from the simulator ([`NftSubstrate::counter_verdicts`]).
//!
//! [`NftSubstrate`] itself implements [`Substrate`] with a minimal
//! loopback delivery path (handshake synthesis, in-order delivery to the
//! scripted server, RST injection for blocking policies) so the replay
//! engine can drive real rule programs end to end without a simulator.

use std::collections::HashMap;
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use liberate_obs::{Counter, EventKind, Hist, Journal};
use liberate_packet::flow::FlowKey;
use liberate_packet::packet::{Packet, ParsedPacket};
use liberate_packet::tcp::TcpFlags;
use parking_lot::Mutex;

use crate::capture::{Capture, TapPoint};
use crate::script::{ScriptEngine, ServerObs, ServerScript};
use crate::time::SimTime;
use crate::{ClassVerdict, Substrate};

/// Maximum segment size when the loopback server segments responses
/// (mirrors the simulator's `SERVER_MSS`).
const WIRE_MSS: usize = 1460;

/// Per-element delivery latency on the loopback path.
const WIRE_LATENCY: Duration = Duration::from_millis(1);

/// One classification rule, lowered from a profile's `MatchRule`.
#[derive(Debug, Clone)]
pub struct WireRule {
    /// Stable rule id (becomes the counter name `cnt_<id>`).
    pub id: String,
    /// Traffic class the rule assigns.
    pub class: String,
    /// Payload keyword the rule matches.
    pub keyword: Vec<u8>,
    /// Restrict to these destination ports (`None` = any).
    pub ports: Option<Vec<u16>>,
    /// Only client→server packets are inspected.
    pub client_only: bool,
    /// Match only in the Nth client payload packet (0-based), when set.
    pub in_packet: Option<usize>,
}

impl WireRule {
    pub fn keyword(id: &str, class: &str, keyword: impl Into<Vec<u8>>) -> WireRule {
        WireRule {
            id: id.to_string(),
            class: class.to_string(),
            keyword: keyword.into(),
            ports: None,
            client_only: true,
            in_packet: None,
        }
    }

    pub fn on_ports(mut self, ports: impl Into<Vec<u16>>) -> WireRule {
        self.ports = Some(ports.into());
        self
    }

    pub fn in_packet(mut self, n: usize) -> WireRule {
        self.in_packet = Some(n);
        self
    }
}

/// What happens to a classified flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WirePolicy {
    /// Inject `rsts` TCP resets and drop the flow's further payload.
    Block { rsts: u8 },
    /// Rate-limit the class to `bps` bits per second.
    Throttle { bps: u64 },
    /// Exempt the class from billing (the §6.2 zero-rating side channel).
    ZeroRate,
    /// Classified but unaffected (the decoy "web" class).
    NoOp,
}

impl WirePolicy {
    pub fn is_noop(&self) -> bool {
        matches!(self, WirePolicy::NoOp)
    }
}

/// A profile's complete rule program: rules, per-class policies, and the
/// path position of the box enforcing them.
#[derive(Debug, Clone)]
pub struct WireRuleset {
    /// Profile name ("Testbed", "China", ...), also the journal env tag.
    pub profile: String,
    pub rules: Vec<WireRule>,
    /// (class, policy), in declaration order (lowering is deterministic).
    pub policies: Vec<(String, WirePolicy)>,
    /// TTL-decrementing hops before the middlebox.
    pub hops_before_middlebox: u8,
}

/// Lowercase alphanumeric-or-underscore identifier for nft object names.
fn nft_ident(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '_'
            }
        })
        .collect()
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

impl WireRuleset {
    /// The nft table name this profile programs.
    pub fn table(&self) -> String {
        format!("liberate_{}", nft_ident(&self.profile))
    }

    /// The policy attached to `class`, when one is declared.
    pub fn policy_for(&self, class: &str) -> Option<&WirePolicy> {
        self.policies
            .iter()
            .find(|(c, _)| c == class)
            .map(|(_, p)| p)
    }

    /// The mark value identifying `class` (1-based order of first
    /// appearance across the rules).
    fn class_mark(&self, class: &str) -> u32 {
        let mut seen: Vec<&str> = Vec::new();
        for r in &self.rules {
            if !seen.contains(&r.class.as_str()) {
                seen.push(&r.class);
            }
        }
        seen.iter()
            .position(|c| *c == class)
            .map(|i| i as u32 + 1)
            .unwrap_or(0)
    }

    /// Lower the ruleset into an nftables program: a table, a `classify`
    /// chain hooked on forward that jumps through a `stats` chain, one
    /// named counter + stats rule per match rule (marking the packet with
    /// its class), and one policy rule per class consuming the mark.
    pub fn lower(&self) -> String {
        let t = self.table();
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!("add table inet {t}"));
        line(format!(
            "add chain inet {t} classify {{ type filter hook forward priority 0; policy accept; }}"
        ));
        line(format!("add chain inet {t} stats"));
        line(format!("add rule inet {t} classify jump stats"));

        for r in &self.rules {
            let cnt = format!("cnt_{}", nft_ident(&r.id));
            line(format!("add counter inet {t} {cnt}"));
            let mut expr = String::from("meta l4proto tcp");
            if let Some(ports) = &r.ports {
                let list = ports
                    .iter()
                    .map(|p| p.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                expr.push_str(&format!(" th dport {{ {list} }}"));
            }
            expr.push_str(&format!(
                " @ih,0,{} 0x{}",
                r.keyword.len() * 8,
                hex(&r.keyword)
            ));
            let pkt = r
                .in_packet
                .map(|n| n.to_string())
                .unwrap_or_else(|| "any".to_string());
            let dir = if r.client_only { "client" } else { "both" };
            line(format!(
                "add rule inet {t} stats {expr} counter name {cnt} meta mark set {mark} \
comment \"class:{class} dir:{dir} pkt:{pkt}\"",
                mark = self.class_mark(&r.class),
                class = r.class,
            ));
        }

        for (class, policy) in &self.policies {
            let mark = self.class_mark(class);
            let c = nft_ident(class);
            match policy {
                WirePolicy::Block { rsts } => {
                    line(format!("add counter inet {t} policy_{c}"));
                    line(format!(
                        "add rule inet {t} classify meta mark {mark} counter name policy_{c} \
reject with tcp reset comment \"rsts:{rsts}\""
                    ));
                }
                WirePolicy::Throttle { bps } => {
                    line(format!("add counter inet {t} policy_{c}"));
                    line(format!(
                        "add rule inet {t} classify meta mark {mark} limit rate over \
{bps} bytes/second counter name policy_{c} drop"
                    ));
                }
                WirePolicy::ZeroRate => {
                    line(format!("add counter inet {t} zerorate_{c}"));
                    line(format!(
                        "add rule inet {t} classify meta mark {mark} counter name zerorate_{c} \
accept"
                    ));
                }
                WirePolicy::NoOp => {
                    line(format!("add counter inet {t} policy_{c}"));
                    line(format!(
                        "add rule inet {t} classify meta mark {mark} counter name policy_{c} \
accept"
                    ));
                }
            }
        }
        out
    }
}

/// Where lowered rule programs go and where counters come back from: a
/// real `nft` process, or the recording loopback fixture CI runs.
pub trait RuleProgramSink: Send {
    /// Install a program (the body handed to `nft -f -`).
    fn apply(&mut self, program: &str) -> Result<(), String>;

    /// Read all named counters as (name, packets-or-bytes) pairs.
    fn read_counters(&mut self) -> Result<Vec<(String, u64)>, String>;

    /// The loopback delivery path observed a packet matching `counter`.
    /// Real kernels count by themselves; the recording fixture needs to
    /// be told. `NftCli` ignores this.
    fn record_match(&mut self, counter: &str, bytes: u64);
}

/// Shells out to the system `nft` binary.
pub struct NftCli;

impl NftCli {
    /// Whether an `nft` binary is on PATH and answers `--version`.
    pub fn available() -> bool {
        Command::new("nft")
            .arg("--version")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .map(|s| s.success())
            .unwrap_or(false)
    }
}

impl RuleProgramSink for NftCli {
    fn apply(&mut self, program: &str) -> Result<(), String> {
        use std::io::Write as _;
        let mut child = Command::new("nft")
            .args(["-f", "-"])
            .stdin(Stdio::piped())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawning nft: {e}"))?;
        if let Some(stdin) = child.stdin.as_mut() {
            stdin
                .write_all(program.as_bytes())
                .map_err(|e| format!("writing nft program: {e}"))?;
        }
        let out = child
            .wait_with_output()
            .map_err(|e| format!("waiting for nft: {e}"))?;
        if out.status.success() {
            Ok(())
        } else {
            Err(format!(
                "nft rejected program: {}",
                String::from_utf8_lossy(&out.stderr).trim()
            ))
        }
    }

    fn read_counters(&mut self) -> Result<Vec<(String, u64)>, String> {
        let out = Command::new("nft")
            .args(["list", "counters"])
            .output()
            .map_err(|e| format!("running nft list counters: {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "nft list counters failed: {}",
                String::from_utf8_lossy(&out.stderr).trim()
            ));
        }
        // `counter cnt_x { packets 5 bytes 700 }` — take the bytes figure.
        let text = String::from_utf8_lossy(&out.stdout);
        let mut counters = Vec::new();
        let mut current: Option<String> = None;
        for tok_line in text.lines() {
            let l = tok_line.trim();
            if let Some(rest) = l.strip_prefix("counter ") {
                current = rest.split_whitespace().next().map(str::to_string);
            } else if let Some(pos) = l.find("bytes ") {
                if let Some(name) = current.take() {
                    let n = l[pos + 6..]
                        .split_whitespace()
                        .next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .unwrap_or(0);
                    counters.push((name, n));
                }
            }
        }
        Ok(counters)
    }

    fn record_match(&mut self, _counter: &str, _bytes: u64) {}
}

/// The recording state behind a [`RecordingSink`], shared with tests.
#[derive(Debug, Default)]
pub struct RecordingState {
    /// Every program applied, in order.
    pub programs: Vec<String>,
    /// Named counters in declaration order, with recorded byte totals.
    pub counters: Vec<(String, u64)>,
}

/// The loopback fixture: records applied programs verbatim (for golden
/// diffing) and keeps counters in memory, fed by `record_match`.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    state: Arc<Mutex<RecordingState>>,
}

impl RecordingSink {
    pub fn new() -> RecordingSink {
        RecordingSink::default()
    }

    /// The shared state handle (keep a clone before boxing the sink).
    pub fn state(&self) -> Arc<Mutex<RecordingState>> {
        Arc::clone(&self.state)
    }
}

impl RuleProgramSink for RecordingSink {
    fn apply(&mut self, program: &str) -> Result<(), String> {
        let mut st = self.state.lock();
        for l in program.lines() {
            // Register declared counters at zero, in program order.
            if let Some(rest) = l.strip_prefix("add counter ") {
                if let Some(name) = rest.split_whitespace().nth(2) {
                    st.counters.push((name.to_string(), 0));
                }
            }
        }
        st.programs.push(program.to_string());
        Ok(())
    }

    fn read_counters(&mut self) -> Result<Vec<(String, u64)>, String> {
        Ok(self.state.lock().counters.clone())
    }

    fn record_match(&mut self, counter: &str, bytes: u64) {
        let mut st = self.state.lock();
        match st.counters.iter_mut().find(|(n, _)| n == counter) {
            Some((_, v)) => *v += bytes,
            None => st.counters.push((counter.to_string(), bytes)),
        }
    }
}

struct WireConn {
    snd_next: u32,
    payload_pkts: usize,
    blocked: bool,
}

/// A [`Substrate`] that programs (real or recorded) nftables rules and
/// delivers traffic over a minimal loopback path.
pub struct NftSubstrate {
    ruleset: WireRuleset,
    program: String,
    sink: Box<dyn RuleProgramSink>,
    clock: SimTime,
    capture: Capture,
    journal: Arc<Journal>,
    inbox: Vec<(SimTime, crate::buf::PacketBuf)>,
    engine: Option<ScriptEngine>,
    conns: HashMap<FlowKey, WireConn>,
    flow_class: HashMap<FlowKey, String>,
    isn_counter: u32,
    billed: u64,
}

impl NftSubstrate {
    /// Program the ruleset through a real `nft` when one is available,
    /// falling back to the recording loopback fixture.
    pub fn new(ruleset: WireRuleset) -> Result<NftSubstrate, String> {
        let sink: Box<dyn RuleProgramSink> = if NftCli::available() {
            Box::new(NftCli)
        } else {
            Box::new(RecordingSink::new())
        };
        NftSubstrate::with_sink(ruleset, sink)
    }

    /// Program the ruleset through an explicit sink (tests and CI use the
    /// recording fixture).
    pub fn with_sink(
        ruleset: WireRuleset,
        mut sink: Box<dyn RuleProgramSink>,
    ) -> Result<NftSubstrate, String> {
        let program = ruleset.lower();
        sink.apply(&program)?;
        Ok(NftSubstrate {
            ruleset,
            program,
            sink,
            clock: SimTime::ZERO,
            capture: Capture::default(),
            journal: Arc::new(Journal::new()),
            inbox: Vec::new(),
            engine: None,
            conns: HashMap::new(),
            flow_class: HashMap::new(),
            isn_counter: 0x2000,
            billed: 0,
        })
    }

    /// The lowered program text (what CI diffs against goldens).
    pub fn program(&self) -> &str {
        &self.program
    }

    pub fn ruleset(&self) -> &WireRuleset {
        &self.ruleset
    }

    /// Map the sink's counter deltas back into the verdict vocabulary:
    /// every `cnt_<rule>` counter that moved yields its rule's class and
    /// whether a non-no-op policy backs it.
    pub fn counter_verdicts(&mut self) -> Result<Vec<(String, ClassVerdict)>, String> {
        let counters = self.sink.read_counters()?;
        let mut out = Vec::new();
        for (name, bytes) in counters {
            if bytes == 0 {
                continue;
            }
            let Some(rule) = self
                .ruleset
                .rules
                .iter()
                .find(|r| format!("cnt_{}", nft_ident(&r.id)) == name)
            else {
                continue;
            };
            let effective = self
                .ruleset
                .policy_for(&rule.class)
                .map(|p| !p.is_noop())
                .unwrap_or(false);
            out.push((
                name,
                ClassVerdict {
                    class: rule.class.clone(),
                    effective,
                },
            ));
        }
        Ok(out)
    }

    /// First matching rule for a client payload packet, mirroring the
    /// lowered program's stats chain.
    fn matching_rule(&self, flow: &FlowKey, payload: &[u8], pkt_index: usize) -> Option<usize> {
        self.ruleset.rules.iter().position(|r| {
            if let Some(ports) = &r.ports {
                if !ports.contains(&flow.dst_port) {
                    return false;
                }
            }
            if let Some(n) = r.in_packet {
                if n != pkt_index {
                    return false;
                }
            }
            !r.keyword.is_empty()
                && payload
                    .windows(r.keyword.len())
                    .any(|w| w == r.keyword.as_slice())
        })
    }

    fn push_inbox(&mut self, at: SimTime, wire: Vec<u8>) {
        let wire = crate::buf::PacketBuf::from(wire);
        self.capture.record(at, TapPoint::ClientIngress, &wire);
        self.inbox.push((at, wire));
    }

    fn handle_tcp(&mut self, at: SimTime, flow: FlowKey, wire: &[u8]) {
        let Some(pkt) = ParsedPacket::parse(wire) else {
            return;
        };
        let Some(t) = pkt.tcp() else { return };
        let reply_at = at + WIRE_LATENCY + WIRE_LATENCY;

        if t.flags.syn && !t.flags.ack {
            self.isn_counter = self.isn_counter.wrapping_add(64_000);
            let isn = self.isn_counter;
            self.conns.insert(
                flow,
                WireConn {
                    snd_next: isn.wrapping_add(1),
                    payload_pkts: 0,
                    blocked: false,
                },
            );
            self.capture
                .record(at + WIRE_LATENCY, TapPoint::ServerIngress, wire);
            let syn_ack = Packet::tcp(
                flow.dst,
                flow.src,
                flow.dst_port,
                flow.src_port,
                isn,
                t.seq.wrapping_add(1),
                Vec::new(),
            )
            .with_flags(TcpFlags::SYN_ACK)
            .serialize();
            self.capture
                .record(at + WIRE_LATENCY, TapPoint::ServerEgress, &syn_ack);
            self.push_inbox(reply_at, syn_ack);
            return;
        }

        if t.flags.rst {
            self.conns.remove(&flow);
            return;
        }

        if pkt.payload.is_empty() {
            // Bare ACKs cross the box untouched.
            self.capture
                .record(at + WIRE_LATENCY, TapPoint::ServerIngress, wire);
            return;
        }

        let pkt_index = match self.conns.get_mut(&flow) {
            Some(c) => {
                let i = c.payload_pkts;
                c.payload_pkts += 1;
                i
            }
            None => 0,
        };

        // The classifier (between client and server) sees the packet
        // first: match-and-mark, then the class policy.
        if !self.flow_class.contains_key(&flow) {
            if let Some(i) = self.matching_rule(&flow, &pkt.payload, pkt_index) {
                let rule = &self.ruleset.rules[i];
                let counter = format!("cnt_{}", nft_ident(&rule.id));
                let class = rule.class.clone();
                self.sink.record_match(&counter, pkt.payload.len() as u64);
                self.flow_class.insert(flow, class);
            }
        }

        let policy = self
            .flow_class
            .get(&flow)
            .and_then(|c| self.ruleset.policy_for(c))
            .cloned();

        if let Some(WirePolicy::Block { rsts }) = &policy {
            let already_blocked = self.conns.get(&flow).map(|c| c.blocked).unwrap_or(false);
            if let Some(c) = self.conns.get_mut(&flow) {
                c.blocked = true;
            }
            if !already_blocked {
                for k in 0..*rsts {
                    let rst = Packet::tcp(
                        flow.dst,
                        flow.src,
                        flow.dst_port,
                        flow.src_port,
                        t.ack.wrapping_add(k as u32),
                        t.seq.wrapping_add(pkt.payload.len() as u32),
                        Vec::new(),
                    )
                    .with_flags(TcpFlags::RST)
                    .serialize();
                    self.push_inbox(reply_at, rst);
                }
            }
            return;
        }
        if self.conns.get(&flow).map(|c| c.blocked).unwrap_or(false) {
            return;
        }

        // Billing: zero-rated classes ride free (§6.2 side channel).
        let zero_rated = matches!(policy, Some(WirePolicy::ZeroRate));
        if !zero_rated {
            self.billed += pkt.payload.len() as u64;
        }

        // Deliver to the scripted server and transmit its responses.
        self.capture
            .record(at + WIRE_LATENCY, TapPoint::ServerIngress, wire);
        let Some(engine) = self.engine.as_mut() else {
            return;
        };
        let response = engine.on_tcp_data(&pkt.payload);
        if response.is_empty() {
            return;
        }
        let mut seq = self.conns.get(&flow).map(|c| c.snd_next).unwrap_or(1);
        let ack = t.seq.wrapping_add(pkt.payload.len() as u32);
        let mut out_wires = Vec::new();
        for chunk in response.chunks(WIRE_MSS) {
            let seg = Packet::tcp(
                flow.dst,
                flow.src,
                flow.dst_port,
                flow.src_port,
                seq,
                ack,
                chunk.to_vec(),
            )
            .with_flags(TcpFlags::PSH_ACK)
            .serialize();
            seq = seq.wrapping_add(chunk.len() as u32);
            out_wires.push(seg);
        }
        if let Some(c) = self.conns.get_mut(&flow) {
            c.snd_next = seq;
        }
        for seg in out_wires {
            self.capture
                .record(at + WIRE_LATENCY, TapPoint::ServerEgress, &seg);
            self.push_inbox(reply_at, seg);
        }
    }

    fn handle_udp(&mut self, at: SimTime, flow: FlowKey, wire: &[u8]) {
        let Some(pkt) = ParsedPacket::parse(wire) else {
            return;
        };
        let reply_at = at + WIRE_LATENCY + WIRE_LATENCY;
        if !self.flow_class.contains_key(&flow) {
            if let Some(i) = self.matching_rule(&flow, &pkt.payload, 0) {
                let rule = &self.ruleset.rules[i];
                let counter = format!("cnt_{}", nft_ident(&rule.id));
                let class = rule.class.clone();
                self.sink.record_match(&counter, pkt.payload.len() as u64);
                self.flow_class.insert(flow, class);
            }
        }
        self.billed += pkt.payload.len() as u64;
        self.capture
            .record(at + WIRE_LATENCY, TapPoint::ServerIngress, wire);
        let Some(engine) = self.engine.as_mut() else {
            return;
        };
        let responses = engine.on_udp_datagram(&pkt.payload);
        for resp in responses {
            let out =
                Packet::udp(flow.dst, flow.src, flow.dst_port, flow.src_port, resp).serialize();
            self.capture
                .record(at + WIRE_LATENCY, TapPoint::ServerEgress, &out);
            self.push_inbox(reply_at, out);
        }
    }
}

impl Substrate for NftSubstrate {
    fn backend_name(&self) -> &'static str {
        "nft"
    }

    fn env_name(&self) -> String {
        self.ruleset.profile.clone()
    }

    fn hops_before_middlebox(&self) -> u8 {
        self.ruleset.hops_before_middlebox
    }

    fn clock(&self) -> SimTime {
        self.clock
    }

    fn advance(&mut self, d: Duration) {
        self.clock += d;
    }

    fn run_until_idle(&mut self) {
        // Delivery is synchronous in the loopback path; nothing pends.
    }

    fn inject_client(&mut self, delay: Duration, wire: Vec<u8>) {
        let at = self.clock + delay;
        self.clock = at;
        self.capture.record(at, TapPoint::ClientEgress, &wire);
        self.journal.metrics.incr(Counter::PacketsInjected);
        self.journal.observe(Hist::InjectBytes, wire.len() as u64);
        self.journal.record(
            at.as_micros(),
            EventKind::PacketInjected {
                bytes: wire.len() as u64,
            },
        );
        let Some(pkt) = ParsedPacket::parse(&wire) else {
            return;
        };
        let Some(flow) = FlowKey::from_packet(&pkt) else {
            return;
        };
        match flow.protocol {
            6 => self.handle_tcp(at, flow, &wire),
            17 => self.handle_udp(at, flow, &wire),
            _ => {}
        }
    }

    fn take_client_inbox(&mut self) -> Vec<(SimTime, crate::buf::PacketBuf)> {
        std::mem::take(&mut self.inbox)
    }

    fn install_server_script(&mut self, script: ServerScript) -> Arc<Mutex<ServerObs>> {
        let (engine, shared) = ScriptEngine::new(script);
        self.engine = Some(engine);
        shared
    }

    fn capture(&self) -> &Capture {
        &self.capture
    }

    fn clear_capture(&mut self) {
        self.capture.clear();
    }

    fn set_capture_points(&mut self, points: &[TapPoint]) {
        self.capture.set_recorded_points(points);
    }

    fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    fn set_journal(&mut self, journal: Arc<Journal>) {
        self.journal = journal;
    }

    fn billed_bytes(&mut self) -> Option<u64> {
        Some(self.billed)
    }

    fn verdict_for(&mut self, flow: FlowKey) -> Option<ClassVerdict> {
        let class = self.flow_class.get(&flow)?.clone();
        let effective = self
            .ruleset
            .policy_for(&class)
            .map(|p| !p.is_noop())
            .unwrap_or(false);
        Some(ClassVerdict { class, effective })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);

    fn gfc_like() -> WireRuleset {
        WireRuleset {
            profile: "China".to_string(),
            rules: vec![WireRule::keyword(
                "economist",
                "blocked",
                &b"economist.com"[..],
            )],
            policies: vec![("blocked".to_string(), WirePolicy::Block { rsts: 3 })],
            hops_before_middlebox: 9,
        }
    }

    #[test]
    fn lowering_is_deterministic_and_shaped() {
        let rs = gfc_like();
        let p = rs.lower();
        assert_eq!(p, rs.lower());
        assert!(p.starts_with("add table inet liberate_china\n"), "{p}");
        assert!(p.contains("add chain inet liberate_china classify"));
        assert!(p.contains("add rule inet liberate_china classify jump stats"));
        assert!(p.contains("add counter inet liberate_china cnt_economist"));
        assert!(p.contains("counter name cnt_economist meta mark set 1"));
        assert!(p.contains("reject with tcp reset comment \"rsts:3\""));
    }

    #[test]
    fn recording_sink_registers_declared_counters() {
        let rs = gfc_like();
        let sink = RecordingSink::new();
        let state = sink.state();
        let sub = NftSubstrate::with_sink(rs, Box::new(sink)).unwrap();
        let st = state.lock();
        assert_eq!(st.programs.len(), 1);
        assert_eq!(st.programs[0], sub.program());
        assert!(st
            .counters
            .iter()
            .any(|(n, v)| n == "cnt_economist" && *v == 0));
    }

    #[test]
    fn loopback_blocks_matching_flow_with_rsts() {
        let sink = RecordingSink::new();
        let state = sink.state();
        let mut sub = NftSubstrate::with_sink(gfc_like(), Box::new(sink)).unwrap();
        sub.install_server_script(ServerScript {
            tcp_script: vec![(1, b"HTTP/1.1 200 OK".to_vec())],
            udp_script: vec![(1, b"HTTP/1.1 200 OK".to_vec())],
            skip_prefix: 0,
        });

        let syn = Packet::tcp(CLIENT, SERVER, 42_000, 80, 100, 0, Vec::new())
            .with_flags(TcpFlags::SYN)
            .serialize();
        sub.inject_client(Duration::ZERO, syn);
        let inbox = sub.take_client_inbox();
        assert_eq!(inbox.len(), 1, "SYN-ACK expected");

        let data = Packet::tcp(
            CLIENT,
            SERVER,
            42_000,
            80,
            101,
            1,
            &b"GET / HTTP/1.1\r\nHost: economist.com\r\n\r\n"[..],
        )
        .serialize();
        sub.inject_client(Duration::ZERO, data);
        let inbox = sub.take_client_inbox();
        let rsts = inbox
            .iter()
            .filter(|(_, w)| {
                ParsedPacket::parse(w)
                    .and_then(|p| p.tcp().map(|t| t.flags.rst))
                    .unwrap_or(false)
            })
            .count();
        assert_eq!(rsts, 3);

        // Counter moved, and maps back to an effective blocked verdict.
        let verdicts = sub.counter_verdicts().unwrap();
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].0, "cnt_economist");
        assert_eq!(verdicts[0].1.class, "blocked");
        assert!(verdicts[0].1.effective);
        assert!(state.lock().counters.iter().any(|(_, v)| *v > 0));

        let flow = FlowKey::new(CLIENT, SERVER, 42_000, 80, 6);
        let v = sub.verdict_for(flow).expect("flow classified");
        assert!(v.effective);
    }

    #[test]
    fn unmatched_flow_completes_and_bills() {
        let mut sub = NftSubstrate::with_sink(gfc_like(), Box::new(RecordingSink::new())).unwrap();
        sub.install_server_script(ServerScript {
            tcp_script: vec![(4, b"pong".to_vec())],
            udp_script: vec![],
            skip_prefix: 0,
        });
        let syn = Packet::tcp(CLIENT, SERVER, 42_001, 80, 100, 0, Vec::new())
            .with_flags(TcpFlags::SYN)
            .serialize();
        sub.inject_client(Duration::ZERO, syn);
        sub.take_client_inbox();
        let data = Packet::tcp(CLIENT, SERVER, 42_001, 80, 101, 1, &b"ping"[..]).serialize();
        sub.inject_client(Duration::ZERO, data);
        let inbox = sub.take_client_inbox();
        assert!(inbox.iter().any(|(_, w)| {
            ParsedPacket::parse(w)
                .map(|p| p.payload == b"pong")
                .unwrap_or(false)
        }));
        assert_eq!(sub.billed_bytes(), Some(4));
        assert!(sub
            .verdict_for(FlowKey::new(CLIENT, SERVER, 42_001, 80, 6))
            .is_none());
    }

    #[test]
    fn in_packet_rules_only_match_their_packet() {
        let rs = WireRuleset {
            profile: "Testbed".to_string(),
            rules: vec![WireRule::keyword("skype-sq", "voip", vec![0x80, 0x55]).in_packet(0)],
            policies: vec![("voip".to_string(), WirePolicy::Throttle { bps: 256_000 })],
            hops_before_middlebox: 0,
        };
        let mut sub = NftSubstrate::with_sink(rs, Box::new(RecordingSink::new())).unwrap();
        let syn = Packet::tcp(CLIENT, SERVER, 42_002, 3478, 100, 0, Vec::new())
            .with_flags(TcpFlags::SYN)
            .serialize();
        sub.inject_client(Duration::ZERO, syn);
        sub.take_client_inbox();
        // First payload packet misses the keyword; the second carries it
        // but in_packet(0) no longer applies.
        let p0 = Packet::tcp(CLIENT, SERVER, 42_002, 3478, 101, 1, &b"xxxx"[..]).serialize();
        sub.inject_client(Duration::ZERO, p0);
        let p1 = Packet::tcp(
            CLIENT,
            SERVER,
            42_002,
            3478,
            105,
            1,
            &[0x80u8, 0x55, 0, 0][..],
        )
        .serialize();
        sub.inject_client(Duration::ZERO, p1);
        assert!(sub
            .verdict_for(FlowKey::new(CLIENT, SERVER, 42_002, 3478, 6))
            .is_none());
    }
}
