//! Property tests for the application-traffic encoders: parsers are
//! total, encoders round-trip, generated traces keep their invariants.

use proptest::prelude::*;

use liberate_traces::http::{get_request, header_value_range, ParsedRequest};
use liberate_traces::recorded::{RecordedTrace, Sender, TraceProtocol, RECORD_MSS};
use liberate_traces::stun::{StunMessage, ATTR_SOFTWARE};
use liberate_traces::tls::{client_hello, extract_sni};

fn hostname() -> impl Strategy<Value = String> {
    "[a-z]{1,12}(\\.[a-z]{2,10}){1,3}"
}

proptest! {
    /// TLS SNI round-trips through a full ClientHello for any hostname.
    #[test]
    fn sni_roundtrip(host in hostname()) {
        let hello = client_hello(&host);
        let sni = extract_sni(&hello);
        prop_assert_eq!(sni.as_deref(), Some(host.as_str()));
    }

    /// The SNI extractor is total on arbitrary bytes.
    #[test]
    fn sni_extractor_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = extract_sni(&bytes);
    }

    /// STUN encode/decode round-trips with arbitrary attributes.
    #[test]
    fn stun_roundtrip(
        seed in any::<u8>(),
        attrs in proptest::collection::vec(
            (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..64)),
            0..8,
        ),
    ) {
        let mut msg = StunMessage::binding_request(seed);
        for (t, v) in &attrs {
            msg = msg.with_attribute(*t, v.clone());
        }
        let decoded = StunMessage::decode(&msg.encode()).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    /// The STUN decoder is total on arbitrary bytes.
    #[test]
    fn stun_decoder_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = StunMessage::decode(&bytes);
    }

    /// HTTP requests round-trip through the parser, and header ranges
    /// point exactly at their values.
    #[test]
    fn http_request_roundtrip(
        host in hostname(),
        path in "/[a-z0-9/._-]{0,40}",
        ua in "[a-zA-Z0-9/. -]{1,30}",
    ) {
        let req = get_request(&host, &path, ua.trim());
        let parsed = ParsedRequest::parse(&req).unwrap();
        prop_assert_eq!(parsed.method.as_str(), "GET");
        prop_assert_eq!(parsed.path.as_str(), path.as_str());
        prop_assert_eq!(parsed.header("Host"), Some(host.as_str()));
        let r = header_value_range(&req, "Host").unwrap();
        prop_assert_eq!(&req[r], host.as_bytes());
        let r = header_value_range(&req, "User-Agent").unwrap();
        prop_assert_eq!(&req[r], ua.trim().as_bytes());
    }

    /// The HTTP request parser is total on arbitrary bytes.
    #[test]
    fn http_parser_total(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = ParsedRequest::parse(&bytes);
        let _ = header_value_range(&bytes, "Host");
    }

    /// push_stream chunking: all chunks <= MSS, concatenation exact,
    /// direction filters consistent.
    #[test]
    fn trace_chunking_invariants(
        client in proptest::collection::vec(any::<u8>(), 1..10_000),
        server in proptest::collection::vec(any::<u8>(), 1..10_000),
    ) {
        let mut t = RecordedTrace::new("p", TraceProtocol::Tcp, 80);
        t.push_stream(Sender::Client, &client);
        t.push_stream(Sender::Server, &server);
        prop_assert!(t.messages.iter().all(|m| m.payload.len() <= RECORD_MSS));
        prop_assert_eq!(t.client_stream(), client.clone());
        prop_assert_eq!(t.client_bytes(), client.len());
        prop_assert_eq!(t.total_bytes(), client.len() + server.len());
        let from_server: usize = t.server_messages().map(|m| m.payload.len()).sum();
        prop_assert_eq!(from_server, server.len());
    }

    /// The workload generator is a pure function of its spec.
    #[test]
    fn generator_deterministic(seed in any::<u64>(), bytes in 1usize..50_000) {
        use liberate_traces::generator::{generate, WorkloadSpec};
        let spec = WorkloadSpec { seed, server_bytes: bytes, ..Default::default() };
        prop_assert_eq!(generate(&spec), generate(&spec));
    }

    /// STUN software attribute is recoverable and padding never corrupts
    /// neighbors.
    #[test]
    fn stun_padding_isolated(
        s1 in proptest::collection::vec(any::<u8>(), 1..7),
        s2 in proptest::collection::vec(any::<u8>(), 1..7),
    ) {
        let msg = StunMessage::binding_request(1)
            .with_attribute(ATTR_SOFTWARE, s1.clone())
            .with_attribute(0x9999, s2.clone());
        let decoded = StunMessage::decode(&msg.encode()).unwrap();
        prop_assert_eq!(decoded.attribute(ATTR_SOFTWARE), Some(s1.as_slice()));
        prop_assert_eq!(decoded.attribute(0x9999), Some(s2.as_slice()));
    }
}
