//! The recorded-trace format: what lib·erate's record phase produces and
//! its replay phase consumes (Fig. 3, step 1).
//!
//! A trace is an ordered list of application messages, each already broken
//! into packet-sized payloads (≤ MSS), because classification behaviour
//! depends on *packet* boundaries and positions — the characterization
//! phase reasons in packets (§5.1).

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Transport protocol of a recorded flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceProtocol {
    Tcp,
    Udp,
}

/// Which endpoint sent a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sender {
    Client,
    Server,
}

/// One packet-sized application payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceMessage {
    pub sender: Sender,
    /// Payload bytes (at most the recording MSS for TCP flows).
    pub payload: Vec<u8>,
    /// Gap after the *previous* message in the trace, in microseconds.
    pub gap_micros: u64,
}

impl TraceMessage {
    pub fn client(payload: impl Into<Vec<u8>>) -> TraceMessage {
        TraceMessage {
            sender: Sender::Client,
            payload: payload.into(),
            gap_micros: 0,
        }
    }

    pub fn server(payload: impl Into<Vec<u8>>) -> TraceMessage {
        TraceMessage {
            sender: Sender::Server,
            payload: payload.into(),
            gap_micros: 0,
        }
    }

    pub fn after(mut self, gap: Duration) -> TraceMessage {
        self.gap_micros = gap.as_micros() as u64;
        self
    }
}

/// A recorded application flow.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordedTrace {
    /// Human-readable application name ("YouTube", "Skype", ...).
    pub app: String,
    pub protocol: TraceProtocol,
    /// Server port the application used.
    pub server_port: u16,
    pub messages: Vec<TraceMessage>,
}

/// MSS used when chunking recorded byte streams into messages.
pub const RECORD_MSS: usize = 1460;

impl RecordedTrace {
    pub fn new(app: impl Into<String>, protocol: TraceProtocol, server_port: u16) -> Self {
        RecordedTrace {
            app: app.into(),
            protocol,
            server_port,
            messages: Vec::new(),
        }
    }

    /// Append a byte stream from `sender`, chunked at the recording MSS.
    pub fn push_stream(&mut self, sender: Sender, bytes: &[u8]) {
        for chunk in bytes.chunks(RECORD_MSS) {
            self.messages.push(TraceMessage {
                sender,
                payload: chunk.to_vec(),
                gap_micros: 0,
            });
        }
    }

    /// Append a single message (one packet payload), unchunked.
    pub fn push_message(&mut self, msg: TraceMessage) {
        self.messages.push(msg);
    }

    /// Messages sent by the client, in order.
    pub fn client_messages(&self) -> impl Iterator<Item = &TraceMessage> {
        self.messages.iter().filter(|m| m.sender == Sender::Client)
    }

    /// Messages sent by the server, in order.
    pub fn server_messages(&self) -> impl Iterator<Item = &TraceMessage> {
        self.messages.iter().filter(|m| m.sender == Sender::Server)
    }

    /// Total client-direction payload bytes.
    pub fn client_bytes(&self) -> usize {
        self.client_messages().map(|m| m.payload.len()).sum()
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> usize {
        self.messages.iter().map(|m| m.payload.len()).sum()
    }

    /// The concatenated client byte stream.
    pub fn client_stream(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.client_bytes());
        for m in self.client_messages() {
            out.extend_from_slice(&m.payload);
        }
        out
    }

    /// A copy with a different server port (the GFC characterization runs
    /// rotate ports to dodge server:port blocking, §6.5; the AT&T
    /// port-change evasion needs it too).
    pub fn with_server_port(&self, port: u16) -> RecordedTrace {
        let mut t = self.clone();
        t.server_port = port;
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_respects_mss() {
        let mut t = RecordedTrace::new("test", TraceProtocol::Tcp, 80);
        t.push_stream(Sender::Client, &vec![7u8; RECORD_MSS * 2 + 100]);
        assert_eq!(t.messages.len(), 3);
        assert_eq!(t.messages[0].payload.len(), RECORD_MSS);
        assert_eq!(t.messages[2].payload.len(), 100);
        assert_eq!(t.client_bytes(), RECORD_MSS * 2 + 100);
    }

    #[test]
    fn direction_filters() {
        let mut t = RecordedTrace::new("test", TraceProtocol::Tcp, 80);
        t.push_message(TraceMessage::client(&b"req"[..]));
        t.push_message(TraceMessage::server(&b"resp"[..]));
        t.push_message(TraceMessage::client(&b"req2"[..]));
        assert_eq!(t.client_messages().count(), 2);
        assert_eq!(t.server_messages().count(), 1);
        assert_eq!(t.client_stream(), b"reqreq2");
        assert_eq!(t.total_bytes(), 11);
    }

    #[test]
    fn gaps_and_port_rewrite() {
        let mut t = RecordedTrace::new("test", TraceProtocol::Udp, 3478);
        t.push_message(TraceMessage::client(&b"a"[..]).after(Duration::from_millis(30)));
        assert_eq!(t.messages[0].gap_micros, 30_000);
        let t2 = t.with_server_port(9000);
        assert_eq!(t2.server_port, 9000);
        assert_eq!(t.server_port, 3478);
        assert_eq!(t2.messages, t.messages);
    }
}
