//! # liberate-traces
//!
//! Synthetic but wire-accurate application traffic for the lib·erate
//! reproduction. The paper records real application flows (YouTube, Amazon
//! Prime Video, Spotify, Skype, blocked websites); this crate generates
//! equivalents that carry the *exact features the classifiers match on* —
//! HTTP Host headers, TLS SNI extensions, STUN attributes — in their real
//! wire encodings, so lib·erate's characterization discovers them the same
//! way it would in recorded traffic.

pub mod apps;
pub mod generator;
pub mod http;
pub mod quic;
pub mod recorded;
pub mod stun;
pub mod tls;

pub mod prelude {
    pub use crate::apps;
    pub use crate::generator::{generate, generate_udp_stream, ContentClass, WorkloadSpec};
    pub use crate::recorded::{RecordedTrace, Sender, TraceMessage, TraceProtocol, RECORD_MSS};
}
