//! A QUIC-like UDP long-header packet: just enough structure for a DPI
//! engine to recognize (or, as the paper found, fail to classify).
//!
//! §6.2/§6.5: neither T-Mobile nor the GFC classified UDP traffic at all,
//! so "YouTube over QUIC" evades both — the traces need a QUIC-shaped
//! packet to demonstrate it.

/// Build a QUIC-like Initial packet: long header form bit + version +
/// connection IDs + pseudo-random payload.
pub fn initial_packet(dcid_seed: u8, payload_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(7 + 8 + 8 + payload_len);
    out.push(0xc3); // long header, fixed bit, Initial type
    out.extend_from_slice(&0x0000_0001u32.to_be_bytes()); // version 1
    out.push(8); // DCID length
    out.extend((0..8).map(|i| dcid_seed.wrapping_add(i * 17)));
    out.push(8); // SCID length
    out.extend((0..8).map(|i| dcid_seed.wrapping_mul(3).wrapping_add(i * 29)));
    // Pseudo-encrypted payload (deterministic).
    out.extend((0..payload_len).map(|i| ((i * 131 + dcid_seed as usize * 7) % 251) as u8));
    out
}

/// Whether bytes look like a QUIC long-header packet.
pub fn looks_like_quic(data: &[u8]) -> bool {
    data.len() >= 7
        && data[0] & 0xc0 == 0xc0
        && u32::from_be_bytes([data[1], data[2], data[3], data[4]]) == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_is_recognizable() {
        let pkt = initial_packet(5, 1200);
        assert!(looks_like_quic(&pkt));
        assert_eq!(pkt.len(), 7 + 1 + 8 + 1 + 8 + 1200 - 2);
    }

    #[test]
    fn deterministic() {
        assert_eq!(initial_packet(1, 100), initial_packet(1, 100));
        assert_ne!(initial_packet(1, 100), initial_packet(2, 100));
    }

    #[test]
    fn http_is_not_quic() {
        assert!(!looks_like_quic(b"GET / HTTP/1.1\r\n"));
        assert!(!looks_like_quic(&[]));
    }
}
