//! Parameterized workload generation for benchmarks and property tests:
//! flows of configurable size, shape, and content class.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::http::get_request;
use crate::recorded::{RecordedTrace, Sender, TraceMessage, TraceProtocol};

/// The kind of payload content to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentClass {
    /// Random bytes (already-encrypted-looking).
    Random,
    /// ASCII text.
    Text,
    /// An HTTP request/response exchange with a configurable Host.
    Http,
}

/// Workload generator configuration.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    pub seed: u64,
    pub protocol: TraceProtocol,
    pub server_port: u16,
    pub content: ContentClass,
    /// Host header when `content == Http`.
    pub host: String,
    /// Client-direction payload bytes.
    pub client_bytes: usize,
    /// Server-direction payload bytes.
    pub server_bytes: usize,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            seed: 1,
            protocol: TraceProtocol::Tcp,
            server_port: 80,
            content: ContentClass::Http,
            host: "workload.example.net".to_string(),
            client_bytes: 512,
            server_bytes: 64 * 1024,
        }
    }
}

/// Generate a trace according to `spec`.
pub fn generate(spec: &WorkloadSpec) -> RecordedTrace {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut t = RecordedTrace::new(
        format!("workload-{}", spec.seed),
        spec.protocol,
        spec.server_port,
    );
    match spec.content {
        ContentClass::Http => {
            let req = get_request(&spec.host, "/generated", "workload-gen/1.0");
            t.push_stream(Sender::Client, &req);
            if spec.client_bytes > req.len() {
                t.push_stream(
                    Sender::Client,
                    &bytes(&mut rng, spec.client_bytes - req.len(), ContentClass::Text),
                );
            }
            t.push_stream(
                Sender::Server,
                &crate::http::response(
                    200,
                    "OK",
                    "application/octet-stream",
                    &bytes(&mut rng, spec.server_bytes, ContentClass::Random),
                ),
            );
        }
        class => {
            t.push_stream(Sender::Client, &bytes(&mut rng, spec.client_bytes, class));
            t.push_stream(Sender::Server, &bytes(&mut rng, spec.server_bytes, class));
        }
    }
    t
}

/// Generate a UDP trace of `packets` datagrams alternating directions.
pub fn generate_udp_stream(seed: u64, packets: usize, payload_len: usize) -> RecordedTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = RecordedTrace::new(format!("udp-{seed}"), TraceProtocol::Udp, 9999);
    for i in 0..packets {
        t.push_message(TraceMessage {
            sender: if i % 2 == 0 {
                Sender::Client
            } else {
                Sender::Server
            },
            payload: bytes(&mut rng, payload_len, ContentClass::Random),
            gap_micros: 1_000,
        });
    }
    t
}

fn bytes(rng: &mut StdRng, len: usize, class: ContentClass) -> Vec<u8> {
    match class {
        ContentClass::Random | ContentClass::Http => {
            let mut v = vec![0u8; len];
            rng.fill(&mut v[..]);
            v
        }
        ContentClass::Text => (0..len)
            .map(|_| {
                let c = rng.gen_range(0..64u8);
                match c {
                    0..=25 => b'a' + c,
                    26..=51 => b'A' + (c - 26),
                    52..=61 => b'0' + (c - 52),
                    62 => b' ',
                    _ => b'\n',
                }
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn http_workload_carries_host() {
        let spec = WorkloadSpec {
            host: "video.target.example".into(),
            ..WorkloadSpec::default()
        };
        let t = generate(&spec);
        assert!(crate::http::find(&t.client_stream(), b"video.target.example").is_some());
        assert!(t.total_bytes() >= spec.server_bytes);
    }

    #[test]
    fn deterministic_by_seed() {
        let spec = WorkloadSpec::default();
        assert_eq!(generate(&spec), generate(&spec));
        let other = WorkloadSpec {
            seed: 2,
            ..WorkloadSpec::default()
        };
        assert_ne!(generate(&spec), generate(&other));
    }

    #[test]
    fn text_is_ascii() {
        let spec = WorkloadSpec {
            content: ContentClass::Text,
            client_bytes: 1000,
            server_bytes: 0,
            ..WorkloadSpec::default()
        };
        let t = generate(&spec);
        assert!(t.client_stream().iter().all(|b| b.is_ascii()));
    }

    #[test]
    fn udp_stream_shape() {
        let t = generate_udp_stream(3, 10, 200);
        assert_eq!(t.messages.len(), 10);
        assert_eq!(t.protocol, TraceProtocol::Udp);
        assert!(t.messages.iter().all(|m| m.payload.len() == 200));
    }
}
