//! TLS ClientHello construction with a real Server Name Indication (SNI)
//! extension, plus a parser that extracts the SNI the way a DPI engine does.
//!
//! T-Mobile's Binge On classifier matches `.googlevideo.com` inside the SNI
//! field of the TLS handshake (§6.2), so the HTTPS traces must carry a
//! wire-accurate ClientHello.

/// TLS record content type for handshake messages.
pub const CONTENT_TYPE_HANDSHAKE: u8 = 22;
/// Handshake message type for ClientHello.
pub const HANDSHAKE_CLIENT_HELLO: u8 = 1;
/// Extension number for server_name (RFC 6066).
pub const EXT_SERVER_NAME: u16 = 0;

/// Build a TLS 1.2 ClientHello record carrying an SNI extension for
/// `server_name`. The random bytes are derived deterministically from the
/// name so traces are reproducible.
pub fn client_hello(server_name: &str) -> Vec<u8> {
    let mut body = Vec::new();
    // client_version: TLS 1.2
    body.extend_from_slice(&[0x03, 0x03]);
    // random: 32 deterministic bytes.
    let seed = server_name
        .bytes()
        .fold(0x9e3779b9u32, |acc, b| acc.rotate_left(5) ^ b as u32);
    for i in 0..32u32 {
        body.push((seed.wrapping_mul(i.wrapping_add(1)) >> 16) as u8);
    }
    // session_id: empty
    body.push(0);
    // cipher_suites: a plausible modern set.
    let suites: [u16; 4] = [0x1301, 0x1302, 0xc02f, 0xc030];
    body.extend_from_slice(&((suites.len() * 2) as u16).to_be_bytes());
    for s in suites {
        body.extend_from_slice(&s.to_be_bytes());
    }
    // compression_methods: null only.
    body.extend_from_slice(&[1, 0]);

    // extensions: server_name + supported_versions.
    let mut exts = Vec::new();
    {
        // server_name extension.
        let name = server_name.as_bytes();
        let mut ext_data = Vec::new();
        // ServerNameList length
        ext_data.extend_from_slice(&((name.len() + 3) as u16).to_be_bytes());
        ext_data.push(0); // name_type: host_name
        ext_data.extend_from_slice(&(name.len() as u16).to_be_bytes());
        ext_data.extend_from_slice(name);
        exts.extend_from_slice(&EXT_SERVER_NAME.to_be_bytes());
        exts.extend_from_slice(&(ext_data.len() as u16).to_be_bytes());
        exts.extend_from_slice(&ext_data);
    }
    {
        // supported_versions: TLS 1.3 + 1.2.
        let ext_data = [2 * 2, 0x03, 0x04, 0x03, 0x03];
        exts.extend_from_slice(&43u16.to_be_bytes());
        exts.extend_from_slice(&(ext_data.len() as u16).to_be_bytes());
        exts.extend_from_slice(&ext_data);
    }
    body.extend_from_slice(&(exts.len() as u16).to_be_bytes());
    body.extend_from_slice(&exts);

    // Handshake header.
    let mut handshake = vec![HANDSHAKE_CLIENT_HELLO];
    handshake.extend_from_slice(&(body.len() as u32).to_be_bytes()[1..]);
    handshake.extend_from_slice(&body);

    // Record layer.
    let mut record = vec![CONTENT_TYPE_HANDSHAKE, 0x03, 0x01];
    record.extend_from_slice(&(handshake.len() as u16).to_be_bytes());
    record.extend_from_slice(&handshake);
    record
}

/// A minimal TLS ServerHello + dummy encrypted records, standing in for the
/// server side of a handshake in recorded traces.
pub fn server_hello_and_data(app_data_len: usize) -> Vec<u8> {
    let mut out = Vec::new();
    // ServerHello record (contents abbreviated but structurally valid).
    let mut body = vec![0x03, 0x03];
    body.extend_from_slice(&[0xab; 32]);
    body.push(0); // session id
    body.extend_from_slice(&[0x13, 0x01]); // cipher
    body.push(0); // compression
    body.extend_from_slice(&[0, 0]); // no extensions
    let mut handshake = vec![2u8]; // ServerHello
    handshake.extend_from_slice(&(body.len() as u32).to_be_bytes()[1..]);
    handshake.extend_from_slice(&body);
    out.push(CONTENT_TYPE_HANDSHAKE);
    out.extend_from_slice(&[0x03, 0x03]);
    out.extend_from_slice(&(handshake.len() as u16).to_be_bytes());
    out.extend_from_slice(&handshake);
    // Application-data record with pseudo-ciphertext.
    out.push(23); // application_data
    out.extend_from_slice(&[0x03, 0x03]);
    out.extend_from_slice(&(app_data_len as u16).to_be_bytes());
    out.extend((0..app_data_len).map(|i| (i as u8).wrapping_mul(37).wrapping_add(11)));
    out
}

/// Extract the SNI host name from a ClientHello, if present. Scans the
/// extension list the way a DPI engine would.
pub fn extract_sni(record: &[u8]) -> Option<String> {
    // Record header.
    if record.len() < 5 || record[0] != CONTENT_TYPE_HANDSHAKE {
        return None;
    }
    let hs = &record[5..];
    if hs.len() < 4 || hs[0] != HANDSHAKE_CLIENT_HELLO {
        return None;
    }
    let mut i = 4 + 2 + 32; // handshake header + version + random
    let sid_len = *hs.get(i)? as usize;
    i += 1 + sid_len;
    let cs_len = u16::from_be_bytes([*hs.get(i)?, *hs.get(i + 1)?]) as usize;
    i += 2 + cs_len;
    let cm_len = *hs.get(i)? as usize;
    i += 1 + cm_len;
    let ext_total = u16::from_be_bytes([*hs.get(i)?, *hs.get(i + 1)?]) as usize;
    i += 2;
    let end = (i + ext_total).min(hs.len());
    while i + 4 <= end {
        let ext_type = u16::from_be_bytes([hs[i], hs[i + 1]]);
        let ext_len = u16::from_be_bytes([hs[i + 2], hs[i + 3]]) as usize;
        i += 4;
        if ext_type == EXT_SERVER_NAME && i + ext_len <= end && ext_len >= 5 {
            let name_len = u16::from_be_bytes([hs[i + 3], hs[i + 4]]) as usize;
            let start = i + 5;
            if start + name_len <= end {
                return String::from_utf8(hs[start..start + name_len].to_vec()).ok();
            }
        }
        i += ext_len;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sni_roundtrip() {
        let hello = client_hello("r3---sn-ab5l6nsz.googlevideo.com");
        assert_eq!(
            extract_sni(&hello).as_deref(),
            Some("r3---sn-ab5l6nsz.googlevideo.com")
        );
    }

    #[test]
    fn deterministic_output() {
        assert_eq!(client_hello("a.example"), client_hello("a.example"));
        assert_ne!(client_hello("a.example"), client_hello("b.example"));
    }

    #[test]
    fn record_layer_framing() {
        let hello = client_hello("x.test");
        assert_eq!(hello[0], CONTENT_TYPE_HANDSHAKE);
        let rec_len = u16::from_be_bytes([hello[3], hello[4]]) as usize;
        assert_eq!(rec_len, hello.len() - 5);
    }

    #[test]
    fn sni_absent_in_garbage() {
        assert_eq!(extract_sni(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(extract_sni(&[]), None);
        // A valid record type but truncated body.
        assert_eq!(extract_sni(&[22, 3, 1, 0, 10, 1]), None);
    }

    #[test]
    fn server_side_records_parse_lengths() {
        let data = server_hello_and_data(64);
        assert_eq!(data[0], CONTENT_TYPE_HANDSHAKE);
        // Second record is application data.
        let first_len = u16::from_be_bytes([data[3], data[4]]) as usize;
        let second = &data[5 + first_len..];
        assert_eq!(second[0], 23);
        let app_len = u16::from_be_bytes([second[3], second[4]]) as usize;
        assert_eq!(app_len, 64);
        assert_eq!(second.len(), 5 + 64);
    }

    #[test]
    fn sni_bytes_findable_for_classifier() {
        // A keyword-matching DPI engine just searches the raw bytes.
        let hello = client_hello("edge.cloudfront.net");
        let found = hello
            .windows(b"cloudfront.net".len())
            .any(|w| w == b"cloudfront.net");
        assert!(found);
    }
}
