//! HTTP/1.1 request and response construction and lightweight parsing.
//!
//! The classifiers studied in the paper match on human-readable strings in
//! HTTP payloads — Host headers, `Content-Type: video`, `GET`, user-agent
//! application names (§6.1–§6.6) — so the traces must carry real HTTP.

/// Build an HTTP/1.1 GET request.
pub fn get_request(host: &str, path: &str, user_agent: &str) -> Vec<u8> {
    format!(
        "GET {path} HTTP/1.1\r\n\
         Host: {host}\r\n\
         User-Agent: {user_agent}\r\n\
         Accept: */*\r\n\
         Connection: keep-alive\r\n\r\n"
    )
    .into_bytes()
}

/// Build an HTTP/1.1 response header + body.
pub fn response(status: u16, reason: &str, content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.1 {status} {reason}\r\n\
         Content-Type: {content_type}\r\n\
         Content-Length: {}\r\n\
         Connection: keep-alive\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// A "403 Forbidden" block page of the kind Iran's censor injects (§6.6).
pub fn forbidden_block_page() -> Vec<u8> {
    response(
        403,
        "Forbidden",
        "text/html",
        b"<html><head><title>403 Forbidden</title></head>\
          <body>Access to this site is denied.</body></html>",
    )
}

/// Find the value range of a header within an HTTP message, returned as a
/// byte range into `data` (used to assert where matching fields sit).
pub fn header_value_range(data: &[u8], header: &str) -> Option<std::ops::Range<usize>> {
    let lower: Vec<u8> = data.iter().map(|b| b.to_ascii_lowercase()).collect();
    let needle = format!("\r\n{}:", header.to_ascii_lowercase());
    let pos = find(&lower, needle.as_bytes())?;
    let value_start_raw = pos + needle.len();
    let rest = &data[value_start_raw..];
    let skip_ws = rest.iter().take_while(|b| **b == b' ').count();
    let value_start = value_start_raw + skip_ws;
    let value_len = data[value_start..]
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(data.len() - value_start);
    Some(value_start..value_start + value_len)
}

/// First occurrence of `needle` in `haystack`.
pub fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// A minimally parsed HTTP request line + headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRequest {
    pub method: String,
    pub path: String,
    pub version: String,
    pub headers: Vec<(String, String)>,
}

impl ParsedRequest {
    /// Parse the head of an HTTP request; tolerant of a truncated header
    /// block (parses the lines that are complete).
    pub fn parse(data: &[u8]) -> Option<ParsedRequest> {
        let text = String::from_utf8_lossy(data);
        let mut lines = text.split("\r\n");
        let request_line = lines.next()?;
        let mut parts = request_line.split_whitespace();
        let method = parts.next()?.to_string();
        let path = parts.next()?.to_string();
        let version = parts.next()?.to_string();
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                headers.push((name.trim().to_string(), value.trim().to_string()));
            }
        }
        Some(ParsedRequest {
            method,
            path,
            version,
            headers,
        })
    }

    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = get_request("www.economist.com", "/", "curl/7.88");
        let parsed = ParsedRequest::parse(&req).unwrap();
        assert_eq!(parsed.method, "GET");
        assert_eq!(parsed.path, "/");
        assert_eq!(parsed.version, "HTTP/1.1");
        assert_eq!(parsed.header("Host"), Some("www.economist.com"));
        assert_eq!(parsed.header("host"), Some("www.economist.com"));
    }

    #[test]
    fn header_range_points_at_value() {
        let req = get_request("cloudfront.net", "/video.mp4", "PrimeVideo/5.0");
        let range = header_value_range(&req, "Host").unwrap();
        assert_eq!(&req[range], b"cloudfront.net");
        let range = header_value_range(&req, "user-agent").unwrap();
        assert_eq!(&req[range], b"PrimeVideo/5.0");
        assert!(header_value_range(&req, "Cookie").is_none());
    }

    #[test]
    fn response_has_content_type_and_body() {
        let resp = response(200, "OK", "video/mp4", &[0u8; 10]);
        let text = String::from_utf8_lossy(&resp);
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: video/mp4\r\n"));
        assert!(text.contains("Content-Length: 10\r\n"));
        assert_eq!(resp.len(), resp.len() - 10 + 10);
    }

    #[test]
    fn block_page_is_403() {
        let page = forbidden_block_page();
        assert!(page.starts_with(b"HTTP/1.1 403 Forbidden\r\n"));
    }

    #[test]
    fn find_basics() {
        assert_eq!(find(b"hello world", b"world"), Some(6));
        assert_eq!(find(b"hello", b"xyz"), None);
        assert_eq!(find(b"", b"x"), None);
        assert_eq!(find(b"x", b""), None);
    }
}
