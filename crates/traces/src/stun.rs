//! STUN message encoding/decoding (RFC 5389 framing) including Microsoft's
//! proprietary attributes.
//!
//! The testbed DPI device classifies Skype by finding the
//! `MS-SERVICE-QUALITY` attribute (type `0x8055`) in the **first** client
//! packet of a UDP flow (§6.1) — so the Skype trace must be a structurally
//! valid STUN binding request carrying that attribute.

/// STUN magic cookie (RFC 5389).
pub const MAGIC_COOKIE: u32 = 0x2112_A442;
/// Binding Request message type.
pub const BINDING_REQUEST: u16 = 0x0001;
/// Binding Success Response message type.
pub const BINDING_RESPONSE: u16 = 0x0101;
/// Microsoft MS-SERVICE-QUALITY attribute (MS-TURN extensions).
pub const ATTR_MS_SERVICE_QUALITY: u16 = 0x8055;
/// Microsoft MS-VERSION attribute.
pub const ATTR_MS_VERSION: u16 = 0x8008;
/// SOFTWARE attribute (RFC 5389).
pub const ATTR_SOFTWARE: u16 = 0x8022;

/// One STUN attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StunAttribute {
    pub attr_type: u16,
    pub value: Vec<u8>,
}

/// A STUN message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StunMessage {
    pub message_type: u16,
    pub transaction_id: [u8; 12],
    pub attributes: Vec<StunAttribute>,
}

impl StunMessage {
    /// A binding request with a deterministic transaction id.
    pub fn binding_request(seed: u8) -> StunMessage {
        let mut txn = [0u8; 12];
        for (i, b) in txn.iter_mut().enumerate() {
            *b = seed.wrapping_mul(31).wrapping_add(i as u8 * 7);
        }
        StunMessage {
            message_type: BINDING_REQUEST,
            transaction_id: txn,
            attributes: Vec::new(),
        }
    }

    pub fn with_attribute(mut self, attr_type: u16, value: impl Into<Vec<u8>>) -> StunMessage {
        self.attributes.push(StunAttribute {
            attr_type,
            value: value.into(),
        });
        self
    }

    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut attrs = Vec::new();
        for a in &self.attributes {
            attrs.extend_from_slice(&a.attr_type.to_be_bytes());
            attrs.extend_from_slice(&(a.value.len() as u16).to_be_bytes());
            attrs.extend_from_slice(&a.value);
            while attrs.len() % 4 != 0 {
                attrs.push(0); // attributes are 32-bit aligned
            }
        }
        let mut out = Vec::with_capacity(20 + attrs.len());
        out.extend_from_slice(&self.message_type.to_be_bytes());
        out.extend_from_slice(&(attrs.len() as u16).to_be_bytes());
        out.extend_from_slice(&MAGIC_COOKIE.to_be_bytes());
        out.extend_from_slice(&self.transaction_id);
        out.extend_from_slice(&attrs);
        out
    }

    /// Decode from wire bytes.
    pub fn decode(data: &[u8]) -> Option<StunMessage> {
        if data.len() < 20 {
            return None;
        }
        let message_type = u16::from_be_bytes([data[0], data[1]]);
        let length = u16::from_be_bytes([data[2], data[3]]) as usize;
        let cookie = u32::from_be_bytes([data[4], data[5], data[6], data[7]]);
        if cookie != MAGIC_COOKIE || 20 + length > data.len() {
            return None;
        }
        let mut transaction_id = [0u8; 12];
        transaction_id.copy_from_slice(&data[8..20]);
        let mut attributes = Vec::new();
        let mut i = 20;
        let end = 20 + length;
        while i + 4 <= end {
            let attr_type = u16::from_be_bytes([data[i], data[i + 1]]);
            let alen = u16::from_be_bytes([data[i + 2], data[i + 3]]) as usize;
            i += 4;
            if i + alen > end {
                return None;
            }
            attributes.push(StunAttribute {
                attr_type,
                value: data[i..i + alen].to_vec(),
            });
            i += alen;
            i += (4 - (alen % 4)) % 4; // skip padding
        }
        Some(StunMessage {
            message_type,
            transaction_id,
            attributes,
        })
    }

    pub fn attribute(&self, attr_type: u16) -> Option<&[u8]> {
        self.attributes
            .iter()
            .find(|a| a.attr_type == attr_type)
            .map(|a| a.value.as_slice())
    }
}

/// The byte offset range where a given attribute's *type field* sits inside
/// an encoded message — the matching field the testbed classifier keys on.
pub fn attribute_type_range(encoded: &[u8], attr_type: u16) -> Option<std::ops::Range<usize>> {
    let needle = attr_type.to_be_bytes();
    let mut i = 20;
    while i + 4 <= encoded.len() {
        if encoded[i..i + 2] == needle {
            return Some(i..i + 2);
        }
        let alen = u16::from_be_bytes([encoded[i + 2], encoded[i + 3]]) as usize;
        i += 4 + alen + (4 - (alen % 4)) % 4;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skype_like() -> StunMessage {
        StunMessage::binding_request(3)
            .with_attribute(ATTR_MS_VERSION, vec![0, 0, 0, 6])
            .with_attribute(ATTR_MS_SERVICE_QUALITY, vec![0, 1, 0, 0])
            .with_attribute(ATTR_SOFTWARE, &b"Skype"[..])
    }

    #[test]
    fn roundtrip() {
        let msg = skype_like();
        let decoded = StunMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn service_quality_attribute_present() {
        let msg = skype_like();
        assert_eq!(
            msg.attribute(ATTR_MS_SERVICE_QUALITY),
            Some(&[0, 1, 0, 0][..])
        );
        let wire = msg.encode();
        // The classifier looks for the raw 0x8055 type bytes.
        let range = attribute_type_range(&wire, ATTR_MS_SERVICE_QUALITY).unwrap();
        assert_eq!(&wire[range], &[0x80, 0x55]);
    }

    #[test]
    fn padding_keeps_alignment() {
        let msg = StunMessage::binding_request(1).with_attribute(ATTR_SOFTWARE, &b"abc"[..]);
        let wire = msg.encode();
        assert_eq!(wire.len() % 4, 0);
        let decoded = StunMessage::decode(&wire).unwrap();
        assert_eq!(decoded.attribute(ATTR_SOFTWARE), Some(&b"abc"[..]));
    }

    #[test]
    fn decode_rejects_bad_cookie_and_truncation() {
        let mut wire = skype_like().encode();
        wire[4] ^= 0xff;
        assert!(StunMessage::decode(&wire).is_none());

        let wire = skype_like().encode();
        assert!(StunMessage::decode(&wire[..10]).is_none());
    }

    #[test]
    fn binding_response_type() {
        let mut msg = StunMessage::binding_request(9);
        msg.message_type = BINDING_RESPONSE;
        let decoded = StunMessage::decode(&msg.encode()).unwrap();
        assert_eq!(decoded.message_type, BINDING_RESPONSE);
    }
}
