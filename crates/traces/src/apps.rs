//! The built-in application trace library (§5: "we can provide built-in
//! traces that are distributed with the tool").
//!
//! Each builder produces a wire-accurate trace carrying exactly the
//! features the paper's classifiers matched on:
//!
//! | App | Feature | Paper |
//! |---|---|---|
//! | Amazon Prime Video | `cloudfront.net` Host header | §6.2 |
//! | YouTube (HTTPS) | `.googlevideo.com` TLS SNI | §6.2 |
//! | YouTube (QUIC) | UDP long-header packets | §6.2 |
//! | Spotify | `spotify.com` Host + audio content type | §6.1 |
//! | NBC Sports | HTTP + `Content-Type: video` response | §6.3 |
//! | Skype | STUN `MS-SERVICE-QUALITY` (0x8055) in first packet | §6.1 |
//! | economist.com | `GET` + `economist.com` Host (GFC-blocked) | §6.5 |
//! | facebook.com | `facebook.com` Host (Iran-blocked) | §6.6 |

use crate::http::{get_request, response};
use crate::quic::initial_packet;
use crate::recorded::{RecordedTrace, Sender, TraceMessage, TraceProtocol};
use crate::stun::{StunMessage, ATTR_MS_SERVICE_QUALITY, ATTR_MS_VERSION, BINDING_RESPONSE};
use crate::tls::{client_hello, server_hello_and_data};

/// Deterministic pseudo-video bytes (looks like compressed media: no long
/// runs, not valid UTF-8).
pub fn media_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 24) as u8
        })
        .collect()
}

/// Amazon Prime Video over HTTP: GET with a CloudFront Host header and a
/// `video/mp4` response of `video_bytes` bytes.
pub fn amazon_prime_http(video_bytes: usize) -> RecordedTrace {
    let mut t = RecordedTrace::new("AmazonPrimeVideo", TraceProtocol::Tcp, 80);
    t.push_stream(
        Sender::Client,
        &get_request(
            "d25xi40x97liuc.cloudfront.net",
            "/dm/2$HDR/video/segment-0001.mp4",
            "AmazonPrimeVideo/5.0 AndroidTV",
        ),
    );
    t.push_stream(
        Sender::Server,
        &response(200, "OK", "video/mp4", &media_bytes(video_bytes, 0xA11CE)),
    );
    t
}

/// Spotify over HTTP: audio streaming via a spotify CDN hostname.
pub fn spotify_http(audio_bytes: usize) -> RecordedTrace {
    let mut t = RecordedTrace::new("Spotify", TraceProtocol::Tcp, 80);
    t.push_stream(
        Sender::Client,
        &get_request(
            "audio-fa.scdn.co.spotify.com",
            "/audio/track-9f3a.ogg",
            "Spotify/8.8 Android/33",
        ),
    );
    t.push_stream(
        Sender::Server,
        &response(200, "OK", "audio/ogg", &media_bytes(audio_bytes, 0x5707)),
    );
    t
}

/// ESPN streaming video over HTTP (a testbed §6.1 application).
pub fn espn_http(video_bytes: usize) -> RecordedTrace {
    let mut t = RecordedTrace::new("ESPN", TraceProtocol::Tcp, 80);
    t.push_stream(
        Sender::Client,
        &get_request(
            "vod.espncdn.com",
            "/hls/2023/segment-19.ts",
            "ESPN/6.2 iOS/16",
        ),
    );
    t.push_stream(
        Sender::Server,
        &response(200, "OK", "video/MP2T", &media_bytes(video_bytes, 0xE592)),
    );
    t
}

/// NBC Sports over HTTP — the AT&T Stream Saver case study (§6.3): the
/// classifier matches standard HTTP tokens client-side and
/// `Content-Type: video` server-side.
pub fn nbcsports_http(video_bytes: usize) -> RecordedTrace {
    let mut t = RecordedTrace::new("NBCSports", TraceProtocol::Tcp, 80);
    t.push_stream(
        Sender::Client,
        &get_request(
            "stream.nbcsports.com",
            "/events/live/master-1080.m3u8",
            "NBCSports/7.1",
        ),
    );
    t.push_stream(
        Sender::Server,
        &response(200, "OK", "video/mp4", &media_bytes(video_bytes, 0x2bc5)),
    );
    t
}

/// YouTube over HTTPS: TLS ClientHello with a `.googlevideo.com` SNI, then
/// opaque records both ways.
pub fn youtube_https(video_bytes: usize) -> RecordedTrace {
    let mut t = RecordedTrace::new("YouTube", TraceProtocol::Tcp, 443);
    t.push_stream(
        Sender::Client,
        &client_hello("r4---sn-p5qlsnsr.googlevideo.com"),
    );
    t.push_stream(Sender::Server, &server_hello_and_data(2048));
    // Client finished + request records (opaque).
    t.push_stream(Sender::Client, &media_bytes(512, 0x7007));
    // Server "video" records.
    t.push_stream(Sender::Server, &media_bytes(video_bytes, 0x77be));
    t
}

/// YouTube over QUIC (UDP): not classified by T-Mobile or the GFC — the
/// easy evasion path the paper highlights.
pub fn youtube_quic(video_bytes: usize) -> RecordedTrace {
    let mut t = RecordedTrace::new("YouTube-QUIC", TraceProtocol::Udp, 443);
    t.push_message(TraceMessage::client(initial_packet(0x42, 1180)));
    t.push_message(TraceMessage::server(initial_packet(0x43, 1180)));
    for (i, chunk) in media_bytes(video_bytes, 0x9019).chunks(1200).enumerate() {
        let sender = if i % 20 == 0 {
            Sender::Client // occasional ACK-carrying datagram
        } else {
            Sender::Server
        };
        t.push_message(TraceMessage {
            sender,
            payload: chunk.to_vec(),
            gap_micros: 0,
        });
    }
    t
}

/// Skype: STUN binding request carrying `MS-SERVICE-QUALITY` in the first
/// client packet, a binding response, then bidirectional voice datagrams.
pub fn skype_stun(voice_packets: usize) -> RecordedTrace {
    let mut t = RecordedTrace::new("Skype", TraceProtocol::Udp, 3478);
    let req = StunMessage::binding_request(0x5c)
        .with_attribute(ATTR_MS_VERSION, vec![0, 0, 0, 6])
        .with_attribute(ATTR_MS_SERVICE_QUALITY, vec![0, 1, 0, 0]);
    t.push_message(TraceMessage::client(req.encode()));
    let mut resp = StunMessage::binding_request(0x5d);
    resp.message_type = BINDING_RESPONSE;
    t.push_message(TraceMessage::server(resp.encode()));
    for i in 0..voice_packets {
        let payload = media_bytes(160, 0x70 + i as u64);
        let msg = TraceMessage {
            sender: if i % 2 == 0 {
                Sender::Client
            } else {
                Sender::Server
            },
            payload,
            gap_micros: 20_000, // 20 ms voice frames
        };
        t.push_message(msg);
    }
    t
}

/// A GFC-censored website fetch: `GET` + `economist.com` Host (§6.5).
pub fn economist_http() -> RecordedTrace {
    let mut t = RecordedTrace::new("economist.com", TraceProtocol::Tcp, 80);
    t.push_stream(
        Sender::Client,
        &get_request("www.economist.com", "/weeklyedition", "Mozilla/5.0"),
    );
    t.push_stream(
        Sender::Server,
        &response(200, "OK", "text/html", &page_bytes(64_000)),
    );
    t
}

/// An Iran-censored website fetch: `facebook.com` Host on port 80 (§6.6).
pub fn facebook_http() -> RecordedTrace {
    let mut t = RecordedTrace::new("facebook.com", TraceProtocol::Tcp, 80);
    t.push_stream(
        Sender::Client,
        &get_request("www.facebook.com", "/", "Mozilla/5.0"),
    );
    t.push_stream(
        Sender::Server,
        &response(200, "OK", "text/html", &page_bytes(48_000)),
    );
    t
}

/// A benign control site no classifier matches.
pub fn control_http() -> RecordedTrace {
    let mut t = RecordedTrace::new("control", TraceProtocol::Tcp, 80);
    t.push_stream(
        Sender::Client,
        &get_request("www.example.org", "/index.html", "Mozilla/5.0"),
    );
    t.push_stream(
        Sender::Server,
        &response(200, "OK", "text/html", &page_bytes(8_000)),
    );
    t
}

/// Deterministic compressible HTML-ish page content.
fn page_bytes(len: usize) -> Vec<u8> {
    let template = b"<p>Lorem ipsum dolor sit amet, consectetur adipiscing elit.</p>\n";
    template.iter().copied().cycle().take(len).collect()
}

/// All built-in traces with small payloads, for tests and demos.
pub fn builtin_traces() -> Vec<RecordedTrace> {
    vec![
        amazon_prime_http(200_000),
        spotify_http(100_000),
        espn_http(200_000),
        nbcsports_http(200_000),
        youtube_https(200_000),
        youtube_quic(100_000),
        skype_stun(50),
        economist_http(),
        facebook_http(),
        control_http(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::ParsedRequest;
    use crate::tls::extract_sni;

    #[test]
    fn prime_video_has_cloudfront_host() {
        let t = amazon_prime_http(10_000);
        let req = ParsedRequest::parse(&t.messages[0].payload).unwrap();
        assert!(req.header("Host").unwrap().contains("cloudfront.net"));
        assert!(t.total_bytes() > 10_000);
    }

    #[test]
    fn youtube_sni_is_googlevideo() {
        let t = youtube_https(10_000);
        let sni = extract_sni(&t.messages[0].payload).unwrap();
        assert!(sni.ends_with(".googlevideo.com"));
    }

    #[test]
    fn skype_first_packet_has_service_quality() {
        let t = skype_stun(10);
        let first = &t.messages[0];
        assert_eq!(first.sender, Sender::Client);
        let msg = StunMessage::decode(&first.payload).unwrap();
        assert!(msg.attribute(ATTR_MS_SERVICE_QUALITY).is_some());
        // Voice frames carry 20 ms gaps.
        assert_eq!(t.messages[2].gap_micros, 20_000);
    }

    #[test]
    fn censored_sites_carry_keywords() {
        let gfc = economist_http();
        let stream = gfc.client_stream();
        assert!(crate::http::find(&stream, b"economist.com").is_some());
        let iran = facebook_http();
        assert!(crate::http::find(&iran.client_stream(), b"facebook.com").is_some());
        assert_eq!(iran.server_port, 80);
    }

    #[test]
    fn quic_trace_is_udp_with_long_headers() {
        let t = youtube_quic(5_000);
        assert_eq!(t.protocol, TraceProtocol::Udp);
        assert!(crate::quic::looks_like_quic(&t.messages[0].payload));
    }

    #[test]
    fn control_has_no_target_keywords() {
        let c = control_http();
        let stream = c.client_stream();
        for kw in [
            &b"cloudfront"[..],
            b"googlevideo",
            b"economist",
            b"facebook",
            b"spotify",
        ] {
            assert!(crate::http::find(&stream, kw).is_none());
        }
    }

    #[test]
    fn builtins_are_nonempty_and_named() {
        let all = builtin_traces();
        assert_eq!(all.len(), 10);
        for t in &all {
            assert!(!t.messages.is_empty(), "{} empty", t.app);
            assert!(t.client_bytes() > 0, "{} no client bytes", t.app);
        }
    }

    #[test]
    fn media_bytes_deterministic_and_diverse() {
        let a = media_bytes(4096, 1);
        assert_eq!(a, media_bytes(4096, 1));
        assert_ne!(a, media_bytes(4096, 2));
        // Entropy sanity: at least 200 distinct byte values.
        let mut seen = [false; 256];
        for b in &a {
            seen[*b as usize] = true;
        }
        assert!(seen.iter().filter(|s| **s).count() > 200);
    }
}
