//! Deterministic tracing and metrics for the lib·erate pipeline.
//!
//! The paper's whole method is observation: detect, characterize, and
//! evaluate all hinge on seeing exactly what the classifier did to each
//! replayed packet (§4, Fig. 3). This crate is the audit substrate those
//! phases write into: a [`Journal`] of structured events timestamped with
//! the *simulation* clock (never the wall clock, so identical seeds give
//! byte-identical journals), an atomic [`Metrics`] counter registry for
//! hot paths, JSONL export, and a per-phase span summary.
//!
//! The crate sits below `netsim` in the dependency graph, so timestamps
//! are raw microseconds (`SimTime::as_micros()` at the call sites) rather
//! than `SimTime` values.

pub mod hist;
pub mod journal;
pub mod jsonl;
pub mod metrics;
pub mod reader;
pub mod spantree;
pub mod summary;

pub use hist::{Hist, HistSnapshot, Histogram};
pub use journal::{Event, EventKind, Journal, Phase};
pub use jsonl::{to_jsonl, validate_jsonl};
pub use metrics::{Counter, Metrics};
pub use reader::{parse_journal, ParsedJournal};
pub use spantree::{build_span_forest, critical_path, folded_stacks, SpanForest, SpanNode};
pub use summary::{phase_summaries, PhaseSummary};
