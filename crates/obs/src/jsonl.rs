//! JSONL export and validation.
//!
//! The vendored `serde` shim is marker-traits-only, so serialization is
//! hand-rolled — which is what makes the byte-level determinism guarantee
//! easy to state: keys are emitted in a fixed order (`t_us`, `phase`,
//! `event`, `worker`/`span` when present, then kind-specific fields),
//! events in record order, the counter snapshot in `Counter::ALL` order,
//! and the non-empty deterministic histograms in `Hist::ALL` order, so
//! identical runs produce identical bytes. Host-time histograms never
//! reach the export (see `Hist::is_deterministic`).

use std::fmt::Write as _;

use crate::journal::{Event, EventKind, Journal};
use crate::metrics::Counter;

/// Serialize the journal (events, then one `counter` line per counter,
/// then one `hist` line per non-empty deterministic histogram) as JSON
/// Lines.
pub fn to_jsonl(journal: &Journal) -> String {
    let events = journal.events();
    let mut out = String::new();
    let mut last_t = 0u64;
    for ev in &events {
        last_t = last_t.max(ev.t_us);
        write_event(&mut out, ev);
    }
    for c in Counter::ALL {
        let _ = writeln!(
            out,
            "{{\"t_us\":{},\"phase\":null,\"event\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            last_t,
            c.name(),
            journal.metrics.get(c)
        );
    }
    for (h, snap) in journal.metrics.hist_snapshot() {
        if !h.is_deterministic() || snap.count == 0 {
            continue;
        }
        let _ = write!(
            out,
            "{{\"t_us\":{},\"phase\":null,\"event\":\"hist\",\"name\":\"{}\",\
             \"count\":{},\"sum\":{},\"max\":{},\"buckets\":[",
            last_t,
            h.name(),
            snap.count,
            snap.sum,
            snap.max
        );
        for (i, (idx, n)) in snap.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{idx},{n}]");
        }
        out.push_str("]}\n");
    }
    out
}

fn write_event(out: &mut String, ev: &Event) {
    let _ = write!(out, "{{\"t_us\":{},\"phase\":", ev.t_us);
    match ev.phase {
        Some(p) => {
            let _ = write!(out, "\"{}\"", p.name());
        }
        None => out.push_str("null"),
    }
    let _ = write!(out, ",\"event\":\"{}\"", ev.kind.name());
    // Present only on events merged from a pool worker, so sequential
    // journals keep their pre-engine byte layout.
    if let Some(w) = ev.worker {
        let _ = write!(out, ",\"worker\":{w}");
    }
    // Span starts/ends carry their id in kind-specific fields; for every
    // other event `span` names the innermost enclosing span.
    if !matches!(
        ev.kind,
        EventKind::SpanStart { .. } | EventKind::SpanEnd { .. }
    ) {
        if let Some(s) = ev.span {
            let _ = write!(out, ",\"span\":{s}");
        }
    }
    match &ev.kind {
        EventKind::SpanStart { id, parent, .. } => {
            let _ = write!(out, ",\"id\":{id},\"parent\":");
            match parent {
                Some(p) => {
                    let _ = write!(out, "{p}");
                }
                None => out.push_str("null"),
            }
        }
        EventKind::SpanEnd { id, .. } => {
            let _ = write!(out, ",\"id\":{id}");
        }
        EventKind::FlowReset => {}
        EventKind::SessionStarted {
            env,
            seed,
            substrate,
        } => {
            let _ = write!(out, ",\"env\":{},\"seed\":{}", json_str(env), seed);
            // The simulator is the default backend; omitting its tag keeps
            // sim journals byte-stable (same trick as the worker field).
            if substrate != "sim" {
                let _ = write!(out, ",\"substrate\":{}", json_str(substrate));
            }
        }
        EventKind::PacketInjected { bytes } => {
            let _ = write!(out, ",\"bytes\":{bytes}");
        }
        EventKind::ClassifierVerdict { class, rule_id } => {
            let _ = write!(
                out,
                ",\"class\":{},\"rule_id\":{}",
                json_str(class),
                json_str(rule_id)
            );
        }
        EventKind::CacheHit { key } => {
            let _ = write!(out, ",\"key\":{}", json_str(key));
        }
        EventKind::CacheMiss { key } => {
            let _ = write!(out, ",\"key\":{}", json_str(key));
        }
        EventKind::TechniqueTried { technique, evaded } => {
            let _ = write!(
                out,
                ",\"technique\":{},\"evaded\":{}",
                json_str(technique),
                evaded
            );
        }
        EventKind::ReplayFinished {
            replay,
            bytes_sent,
            server_bytes,
            blocked,
        } => {
            let _ = write!(
                out,
                ",\"replay\":{replay},\"bytes_sent\":{bytes_sent},\
                 \"server_bytes\":{server_bytes},\"blocked\":{blocked}"
            );
        }
        EventKind::RuleSwap { device, rules } => {
            let _ = write!(out, ",\"device\":{},\"rules\":{}", json_str(device), rules);
        }
        EventKind::TechniquePublished {
            generation,
            technique,
        } => {
            let _ = write!(
                out,
                ",\"generation\":{generation},\"technique\":{}",
                json_str(technique)
            );
        }
        EventKind::FallbackEngaged { technique } => {
            let _ = write!(out, ",\"technique\":{}", json_str(technique));
        }
    }
    out.push_str("}\n");
}

/// A JSON string literal for `s` (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validate a JSONL journal: every non-empty line must parse as a JSON
/// object with a numeric `t_us` and a string `event`. Returns the number
/// of valid lines.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_object_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let t_us = fields.iter().find(|(k, _)| k == "t_us");
        match t_us {
            Some((_, JsonValue::Number(_))) => {}
            Some(_) => return Err(format!("line {}: \"t_us\" is not a number", i + 1)),
            None => return Err(format!("line {}: missing \"t_us\"", i + 1)),
        }
        let event = fields.iter().find(|(k, _)| k == "event");
        match event {
            Some((_, JsonValue::String(_))) => {}
            Some(_) => return Err(format!("line {}: \"event\" is not a string", i + 1)),
            None => return Err(format!("line {}: missing \"event\"", i + 1)),
        }
        count += 1;
    }
    Ok(count)
}

/// Parsed JSON value. Fully typed so the `obs-query` reader can recover
/// counters, histogram buckets, and span ids from an exported journal.
/// Numbers are `f64` — exact for every integer the journal emits (all
/// well under 2^53).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse one line as a JSON object, returning its top-level fields.
pub fn parse_object_line(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let fields = p.parse_object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<Vec<(String, JsonValue)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => Ok(JsonValue::Object(self.parse_object()?)),
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Array(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(format!("unexpected value at byte {}", self.pos)),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("malformed number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("malformed number at byte {start}"))?;
        let n: f64 = text
            .parse()
            .map_err(|_| format!("malformed number at byte {start}"))?;
        Ok(JsonValue::Number(n))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogates validate as the replacement char;
                            // the journal never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar from the source str.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{EventKind, Phase};
    use crate::metrics::Counter;

    #[test]
    fn export_validates_and_counts() {
        let j = Journal::new();
        j.record(
            0,
            EventKind::SessionStarted {
                env: "Testbed".to_string(),
                seed: 7,
                substrate: "sim".to_string(),
            },
        );
        j.span_start(5, Phase::BlindSearch);
        j.record(10, EventKind::PacketInjected { bytes: 1460 });
        j.record(
            12,
            EventKind::ClassifierVerdict {
                class: "video".to_string(),
                rule_id: "host:\"quoted\"".to_string(),
            },
        );
        j.span_end(20, Phase::BlindSearch);
        j.metrics.add(Counter::PacketsStepped, 3);

        let text = to_jsonl(&j);
        let lines = validate_jsonl(&text).expect("journal validates");
        // 5 events + all counters + one hist line (the closing
        // blind-search span fed its sim-latency histogram).
        assert_eq!(lines, 5 + Counter::ALL.len() + 1);
        // Counter lines carry the final sim timestamp and fixed order.
        let last = text.lines().last().unwrap();
        assert_eq!(
            last,
            "{\"t_us\":20,\"phase\":null,\"event\":\"hist\",\
             \"name\":\"blind-search-sim-micros\",\"count\":1,\"sum\":15,\
             \"max\":15,\"buckets\":[[15,1]]}"
        );
        let first_counter = text
            .lines()
            .find(|l| l.contains("\"event\":\"counter\""))
            .unwrap();
        assert!(
            first_counter.contains("\"name\":\"packets-stepped\",\"value\":3"),
            "{first_counter}"
        );
    }

    #[test]
    fn fixed_key_order() {
        let j = Journal::new();
        j.span_start(1, Phase::Detect);
        j.span_start(2, Phase::Replay);
        j.record(3, EventKind::PacketInjected { bytes: 7 });
        j.span_end(4, Phase::Replay);
        let text = to_jsonl(&j);
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_us\":1,\"phase\":\"detect\",\"event\":\"span_start\",\"id\":1,\"parent\":null}"
        );
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_us\":2,\"phase\":\"replay\",\"event\":\"span_start\",\"id\":2,\"parent\":1}"
        );
        // Attribution skips the micro replay phase; the span id does not.
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_us\":3,\"phase\":\"detect\",\"event\":\"packet_injected\",\"span\":2,\"bytes\":7}"
        );
        assert_eq!(
            lines.next().unwrap(),
            "{\"t_us\":4,\"phase\":\"replay\",\"event\":\"span_end\",\"id\":2}"
        );
    }

    #[test]
    fn worker_field_appears_only_on_absorbed_events() {
        let main = Journal::new();
        main.span_start(1, Phase::Detect);
        let w = Journal::new();
        w.record(2, EventKind::FlowReset);
        main.absorb_worker(3, &w);

        let text = to_jsonl(&main);
        let mut lines = text.lines();
        let first = lines.next().unwrap();
        assert!(!first.contains("\"worker\""), "{first}");
        let second = lines.next().unwrap();
        assert_eq!(
            second,
            "{\"t_us\":2,\"phase\":null,\"event\":\"flow_reset\",\"worker\":3}"
        );
        assert!(validate_jsonl(&text).is_ok());
    }

    #[test]
    fn escaping_survives_validation() {
        let j = Journal::new();
        j.record(
            0,
            EventKind::CacheMiss {
                key: "net/\"app\"\\with\nnewline\tand\u{1}ctl".to_string(),
            },
        );
        let text = to_jsonl(&j);
        assert!(validate_jsonl(&text).is_ok(), "{text}");
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(validate_jsonl("{\"t_us\":1,\"event\":\"x\"}\nnot json\n").is_err());
        assert!(
            validate_jsonl("{\"event\":\"x\"}\n").is_err(),
            "missing t_us"
        );
        assert!(
            validate_jsonl("{\"t_us\":\"one\",\"event\":\"x\"}\n").is_err(),
            "string t_us"
        );
        assert!(validate_jsonl("{\"t_us\":1}\n").is_err(), "missing event");
        assert!(
            validate_jsonl("{\"t_us\":1,\"event\":\"x\"} extra\n").is_err(),
            "trailing garbage"
        );
    }

    /// `json_str` output with the quotes stripped, re-parsed as a JSON
    /// string body — the round trip every escape must survive.
    fn roundtrip(s: &str) -> String {
        let lit = json_str(s);
        let line = format!("{{\"t_us\":0,\"event\":\"x\",\"k\":{lit}}}");
        let fields = parse_object_line(&line).expect("escaped string parses");
        match fields.iter().find(|(k, _)| k == "k") {
            Some((_, JsonValue::String(v))) => v.clone(),
            other => panic!("expected string field, got {other:?}"),
        }
    }

    #[test]
    fn every_control_character_roundtrips() {
        for c in 0u32..0x20 {
            let ch = char::from_u32(c).unwrap();
            let s = format!("a{ch}b");
            assert_eq!(roundtrip(&s), s, "control char U+{c:04X}");
            // The escaped form must contain no raw control bytes.
            assert!(
                json_str(&s).bytes().all(|b| b >= 0x20),
                "raw control byte leaked for U+{c:04X}"
            );
        }
    }

    #[test]
    fn quotes_and_backslashes_roundtrip() {
        for s in [
            "\"",
            "\\",
            "\\\"",
            "\\\\",
            "a\"b\\c",
            "\\u0041",
            "ends with \\",
            "\"quoted\"",
        ] {
            assert_eq!(roundtrip(s), s, "{s:?}");
        }
        // `\u0041` typed literally must not collapse into `A`.
        assert_eq!(json_str("\\u0041"), "\"\\\\u0041\"");
    }

    #[test]
    fn non_ascii_is_emitted_as_raw_utf8() {
        // Raw payload bytes become rule ids and cache keys; multi-byte
        // scalars (including astral-plane ones) must pass through as
        // UTF-8, never as lone surrogate escapes.
        for s in ["café", "日本語", "🦀 crab", "mixed π≈3.14159"] {
            let lit = json_str(s);
            assert!(!lit.contains("\\u"), "unneeded escape in {lit}");
            assert_eq!(roundtrip(s), s);
        }
    }

    #[test]
    fn parser_maps_surrogate_escapes_to_replacement() {
        // The journal never emits surrogates, but a hand-edited file
        // must not produce an invalid Rust string.
        let line = "{\"t_us\":0,\"event\":\"x\",\"k\":\"\\ud800\"}";
        let fields = parse_object_line(line).unwrap();
        assert_eq!(
            fields.iter().find(|(k, _)| k == "k").unwrap().1,
            JsonValue::String("\u{fffd}".to_string())
        );
    }

    #[test]
    fn del_and_separators_stay_raw_but_valid() {
        // U+007F and the U+2028/U+2029 separators are legal raw inside
        // JSON strings; the escaper leaves them alone.
        for s in ["\u{7f}", "\u{2028}", "\u{2029}"] {
            assert_eq!(roundtrip(s), s);
        }
    }

    #[test]
    fn typed_parser_recovers_values() {
        let line = "{\"t_us\":12,\"ok\":true,\"no\":false,\"nul\":null,\
                    \"arr\":[[1,2],[3,4]],\"neg\":-5}";
        let fields = parse_object_line(line).unwrap();
        let get = |k: &str| &fields.iter().find(|(f, _)| f == k).unwrap().1;
        assert_eq!(get("t_us").as_u64(), Some(12));
        assert_eq!(get("ok").as_bool(), Some(true));
        assert_eq!(get("nul"), &JsonValue::Null);
        assert_eq!(get("neg").as_u64(), None);
        match get("arr") {
            JsonValue::Array(items) => {
                assert_eq!(items.len(), 2);
                assert_eq!(
                    items[0],
                    JsonValue::Array(vec![JsonValue::Number(1.0), JsonValue::Number(2.0)])
                );
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_blank_lines_are_fine() {
        assert_eq!(validate_jsonl("").unwrap(), 0);
        assert_eq!(
            validate_jsonl("{\"t_us\":0,\"event\":\"a\"}\n\n{\"t_us\":1,\"event\":\"b\"}\n")
                .unwrap(),
            2
        );
    }
}
