//! JSONL export and validation.
//!
//! The vendored `serde` shim is marker-traits-only, so serialization is
//! hand-rolled — which is what makes the byte-level determinism guarantee
//! easy to state: keys are emitted in a fixed order (`t_us`, `phase`,
//! `event`, `worker` when present, then kind-specific fields), events in
//! record order, and the
//! counter snapshot in `Counter::ALL` order, so identical runs produce
//! identical bytes.

use std::fmt::Write as _;

use crate::journal::{Event, EventKind, Journal};
use crate::metrics::Counter;

/// Serialize the journal (events, then one `counter` line per counter)
/// as JSON Lines.
pub fn to_jsonl(journal: &Journal) -> String {
    let events = journal.events();
    let mut out = String::new();
    let mut last_t = 0u64;
    for ev in &events {
        last_t = last_t.max(ev.t_us);
        write_event(&mut out, ev);
    }
    for c in Counter::ALL {
        let _ = writeln!(
            out,
            "{{\"t_us\":{},\"phase\":null,\"event\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            last_t,
            c.name(),
            journal.metrics.get(c)
        );
    }
    out
}

fn write_event(out: &mut String, ev: &Event) {
    let _ = write!(out, "{{\"t_us\":{},\"phase\":", ev.t_us);
    match ev.phase {
        Some(p) => {
            let _ = write!(out, "\"{}\"", p.name());
        }
        None => out.push_str("null"),
    }
    let _ = write!(out, ",\"event\":\"{}\"", ev.kind.name());
    // Present only on events merged from a pool worker, so sequential
    // journals keep their pre-engine byte layout.
    if let Some(w) = ev.worker {
        let _ = write!(out, ",\"worker\":{w}");
    }
    match &ev.kind {
        EventKind::SpanStart { .. } | EventKind::SpanEnd { .. } | EventKind::FlowReset => {}
        EventKind::SessionStarted { env, seed } => {
            let _ = write!(out, ",\"env\":{},\"seed\":{}", json_str(env), seed);
        }
        EventKind::PacketInjected { bytes } => {
            let _ = write!(out, ",\"bytes\":{bytes}");
        }
        EventKind::ClassifierVerdict { class, rule_id } => {
            let _ = write!(
                out,
                ",\"class\":{},\"rule_id\":{}",
                json_str(class),
                json_str(rule_id)
            );
        }
        EventKind::CacheHit { key } => {
            let _ = write!(out, ",\"key\":{}", json_str(key));
        }
        EventKind::CacheMiss { key } => {
            let _ = write!(out, ",\"key\":{}", json_str(key));
        }
        EventKind::TechniqueTried { technique, evaded } => {
            let _ = write!(
                out,
                ",\"technique\":{},\"evaded\":{}",
                json_str(technique),
                evaded
            );
        }
        EventKind::ReplayFinished {
            replay,
            bytes_sent,
            server_bytes,
            blocked,
        } => {
            let _ = write!(
                out,
                ",\"replay\":{replay},\"bytes_sent\":{bytes_sent},\
                 \"server_bytes\":{server_bytes},\"blocked\":{blocked}"
            );
        }
        EventKind::RuleSwap { device, rules } => {
            let _ = write!(out, ",\"device\":{},\"rules\":{}", json_str(device), rules);
        }
        EventKind::TechniquePublished {
            generation,
            technique,
        } => {
            let _ = write!(
                out,
                ",\"generation\":{generation},\"technique\":{}",
                json_str(technique)
            );
        }
        EventKind::FallbackEngaged { technique } => {
            let _ = write!(out, ",\"technique\":{}", json_str(technique));
        }
    }
    out.push_str("}\n");
}

/// A JSON string literal for `s` (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Validate a JSONL journal: every non-empty line must parse as a JSON
/// object with a numeric `t_us` and a string `event`. Returns the number
/// of valid lines.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut count = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_object_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let t_us = fields.iter().find(|(k, _)| k == "t_us");
        match t_us {
            Some((_, JsonValue::Number)) => {}
            Some(_) => return Err(format!("line {}: \"t_us\" is not a number", i + 1)),
            None => return Err(format!("line {}: missing \"t_us\"", i + 1)),
        }
        let event = fields.iter().find(|(k, _)| k == "event");
        match event {
            Some((_, JsonValue::String(_))) => {}
            Some(_) => return Err(format!("line {}: \"event\" is not a string", i + 1)),
            None => return Err(format!("line {}: missing \"event\"", i + 1)),
        }
        count += 1;
    }
    Ok(count)
}

/// Parsed JSON value, shape-only where the validator doesn't need the
/// content (numbers, nested containers).
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool,
    Number,
    String(String),
    Array,
    Object,
}

/// Parse one line as a JSON object, returning its top-level fields.
fn parse_object_line(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let fields = p.parse_object()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn parse_object(&mut self) -> Result<Vec<(String, JsonValue)>, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(fields);
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(fields);
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => {
                self.parse_object()?;
                Ok(JsonValue::Object)
            }
            Some(b'[') => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(JsonValue::Array);
                }
                loop {
                    self.skip_ws();
                    self.parse_value()?;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(JsonValue::Array);
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(format!("unexpected value at byte {}", self.pos)),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("malformed number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        Ok(JsonValue::Number)
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogates validate as the replacement char;
                            // the journal never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar from the source str.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{EventKind, Phase};
    use crate::metrics::Counter;

    #[test]
    fn export_validates_and_counts() {
        let j = Journal::new();
        j.record(
            0,
            EventKind::SessionStarted {
                env: "Testbed".to_string(),
                seed: 7,
            },
        );
        j.span_start(5, Phase::BlindSearch);
        j.record(10, EventKind::PacketInjected { bytes: 1460 });
        j.record(
            12,
            EventKind::ClassifierVerdict {
                class: "video".to_string(),
                rule_id: "host:\"quoted\"".to_string(),
            },
        );
        j.span_end(20, Phase::BlindSearch);
        j.metrics.add(Counter::PacketsStepped, 3);

        let text = to_jsonl(&j);
        let lines = validate_jsonl(&text).expect("journal validates");
        assert_eq!(lines, 5 + Counter::ALL.len());
        // Counter lines carry the final sim timestamp and fixed order.
        let last = text.lines().last().unwrap();
        assert!(last.contains("\"t_us\":20"), "{last}");
        assert!(last.contains("\"name\":\"rule-swaps\""), "{last}");
        let first_counter = text
            .lines()
            .find(|l| l.contains("\"event\":\"counter\""))
            .unwrap();
        assert!(
            first_counter.contains("\"name\":\"packets-stepped\",\"value\":3"),
            "{first_counter}"
        );
    }

    #[test]
    fn fixed_key_order() {
        let j = Journal::new();
        j.span_start(1, Phase::Detect);
        let text = to_jsonl(&j);
        let first = text.lines().next().unwrap();
        assert_eq!(
            first,
            "{\"t_us\":1,\"phase\":\"detect\",\"event\":\"span_start\"}"
        );
    }

    #[test]
    fn worker_field_appears_only_on_absorbed_events() {
        let main = Journal::new();
        main.span_start(1, Phase::Detect);
        let w = Journal::new();
        w.record(2, EventKind::FlowReset);
        main.absorb_worker(3, &w);

        let text = to_jsonl(&main);
        let mut lines = text.lines();
        let first = lines.next().unwrap();
        assert!(!first.contains("\"worker\""), "{first}");
        let second = lines.next().unwrap();
        assert_eq!(
            second,
            "{\"t_us\":2,\"phase\":null,\"event\":\"flow_reset\",\"worker\":3}"
        );
        assert!(validate_jsonl(&text).is_ok());
    }

    #[test]
    fn escaping_survives_validation() {
        let j = Journal::new();
        j.record(
            0,
            EventKind::CacheMiss {
                key: "net/\"app\"\\with\nnewline\tand\u{1}ctl".to_string(),
            },
        );
        let text = to_jsonl(&j);
        assert!(validate_jsonl(&text).is_ok(), "{text}");
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(validate_jsonl("{\"t_us\":1,\"event\":\"x\"}\nnot json\n").is_err());
        assert!(
            validate_jsonl("{\"event\":\"x\"}\n").is_err(),
            "missing t_us"
        );
        assert!(
            validate_jsonl("{\"t_us\":\"one\",\"event\":\"x\"}\n").is_err(),
            "string t_us"
        );
        assert!(validate_jsonl("{\"t_us\":1}\n").is_err(), "missing event");
        assert!(
            validate_jsonl("{\"t_us\":1,\"event\":\"x\"} extra\n").is_err(),
            "trailing garbage"
        );
    }

    #[test]
    fn empty_and_blank_lines_are_fine() {
        assert_eq!(validate_jsonl("").unwrap(), 0);
        assert_eq!(
            validate_jsonl("{\"t_us\":0,\"event\":\"a\"}\n\n{\"t_us\":1,\"event\":\"b\"}\n")
                .unwrap(),
            2
        );
    }
}
