//! The event journal: an append-only log of what the pipeline did, in
//! simulation time.
//!
//! Phases mirror Fig. 3 of the paper: detect (inverted control), the two
//! characterization searches (blind byte search §5.1, position probe
//! §5.2), evaluation of the Table 3 taxonomy, and deployment through the
//! rule cache. Spans nest — a deploy span that triggers a fresh
//! characterization encloses blind-search/position-probe spans — and every
//! typed event is attributed to the innermost open span at record time.

use parking_lot::Mutex;

use crate::metrics::Metrics;

/// A pipeline phase (Fig. 3 step) that can be spanned in the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    Detect,
    BlindSearch,
    PositionProbe,
    Evaluate,
    Deploy,
}

impl Phase {
    pub const ALL: [Phase; 5] = [
        Phase::Detect,
        Phase::BlindSearch,
        Phase::PositionProbe,
        Phase::Evaluate,
        Phase::Deploy,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Phase::Detect => "detect",
            Phase::BlindSearch => "blind-search",
            Phase::PositionProbe => "position-probe",
            Phase::Evaluate => "evaluate",
            Phase::Deploy => "deploy",
        }
    }

    /// Position in `Phase::ALL`; used as an array index by the summary.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// What happened. Every variant carries only deterministic data — values
/// derived from the trace, the seed, or the simulation clock.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    SpanStart {
        phase: Phase,
    },
    SpanEnd {
        phase: Phase,
    },
    /// A `Session` came up against an environment with a seed. Recording
    /// the seed makes journals self-describing and guarantees different
    /// seeds produce different journals.
    SessionStarted {
        env: String,
        seed: u64,
    },
    /// A client packet entered the simulated network.
    PacketInjected {
        bytes: u64,
    },
    /// The DPI device classified a flow.
    ClassifierVerdict {
        class: String,
        rule_id: String,
    },
    /// A client RST changed DPI flow state (flush or timeout shortening).
    FlowReset,
    CacheHit {
        key: String,
    },
    CacheMiss {
        key: String,
    },
    /// One Table 3 candidate was evaluated end to end.
    TechniqueTried {
        technique: String,
        evaded: bool,
    },
    /// One replay finished; `replay` is the session's running count.
    ReplayFinished {
        replay: u64,
        bytes_sent: u64,
        server_bytes: u64,
        blocked: bool,
    },
    /// A DPI device's rule set was hot-swapped mid-deployment.
    RuleSwap {
        device: String,
        rules: u64,
    },
    /// The deployment pool atomically published a (re)characterized
    /// technique under a new generation stamp.
    TechniquePublished {
        generation: u64,
        technique: String,
    },
    /// A flow parked on a fallback-ladder technique after the published
    /// technique burned mid-wave.
    FallbackEngaged {
        technique: String,
    },
}

impl EventKind {
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SpanStart { .. } => "span_start",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::SessionStarted { .. } => "session_started",
            EventKind::PacketInjected { .. } => "packet_injected",
            EventKind::ClassifierVerdict { .. } => "classifier_verdict",
            EventKind::FlowReset => "flow_reset",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::TechniqueTried { .. } => "technique_tried",
            EventKind::ReplayFinished { .. } => "replay_finished",
            EventKind::RuleSwap { .. } => "rule_swap",
            EventKind::TechniquePublished { .. } => "technique_published",
            EventKind::FallbackEngaged { .. } => "fallback_engaged",
        }
    }
}

/// One journal entry. `t_us` is microseconds on the simulation clock
/// (`SimTime::as_micros()` at the call site — never the wall clock).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub t_us: u64,
    /// Innermost open span when the event was recorded. For
    /// `SpanStart`/`SpanEnd` this is the span's own phase.
    pub phase: Option<Phase>,
    /// Pool worker whose session recorded this event; `None` in a
    /// single-session run (and omitted from the JSONL), so sequential
    /// journals are byte-identical to pre-engine ones. Set by
    /// [`Journal::absorb_worker`], never at record time.
    pub worker: Option<u32>,
    pub kind: EventKind,
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    stack: Vec<Phase>,
}

/// The journal: event log plus counter registry, shared as an
/// `Arc<Journal>` by `Environment`, `Session`, and the path elements.
/// All execution is synchronous today, so the mutex is uncontended; it
/// exists so the handle can be cloned freely across layers.
#[derive(Debug, Default)]
pub struct Journal {
    inner: Mutex<Inner>,
    pub metrics: Metrics,
}

impl Journal {
    pub fn new() -> Journal {
        Journal::default()
    }

    /// Record a typed event, attributed to the innermost open span.
    pub fn record(&self, t_us: u64, kind: EventKind) {
        let mut inner = self.inner.lock();
        let phase = inner.stack.last().copied();
        inner.events.push(Event {
            t_us,
            phase,
            worker: None,
            kind,
        });
    }

    /// Open a phase span at `t_us`.
    pub fn span_start(&self, t_us: u64, phase: Phase) {
        let mut inner = self.inner.lock();
        inner.stack.push(phase);
        inner.events.push(Event {
            t_us,
            phase: Some(phase),
            worker: None,
            kind: EventKind::SpanStart { phase },
        });
    }

    /// Close the innermost span of `phase` at `t_us`. Tolerates a span
    /// that was never opened (the end event is still recorded, so the
    /// imbalance is visible in the journal rather than a panic).
    pub fn span_end(&self, t_us: u64, phase: Phase) {
        let mut inner = self.inner.lock();
        if let Some(pos) = inner.stack.iter().rposition(|&p| p == phase) {
            inner.stack.remove(pos);
        }
        inner.events.push(Event {
            t_us,
            phase: Some(phase),
            worker: None,
            kind: EventKind::SpanEnd { phase },
        });
    }

    /// Fold a pool worker's journal into this one: its events are
    /// appended tagged `worker = Some(w)` (in their original order), and
    /// its counter values are added to this journal's registry. Callers
    /// absorb workers in ascending index order so the merged journal is
    /// deterministic for a fixed seed and worker count.
    pub fn absorb_worker(&self, worker: u32, other: &Journal) {
        let events = other.events();
        {
            let mut inner = self.inner.lock();
            inner.events.extend(events.into_iter().map(|mut e| {
                e.worker = Some(worker);
                e
            }));
        }
        for (counter, value) in other.metrics.snapshot() {
            if value > 0 {
                self.metrics.add(counter, value);
            }
        }
    }

    /// Innermost open span, if any.
    pub fn current_phase(&self) -> Option<Phase> {
        self.inner.lock().stack.last().copied()
    }

    /// A snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().events.clone()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_inherit_innermost_phase() {
        let j = Journal::new();
        j.record(0, EventKind::FlowReset);
        j.span_start(10, Phase::Deploy);
        j.span_start(20, Phase::BlindSearch);
        j.record(25, EventKind::PacketInjected { bytes: 100 });
        j.span_end(30, Phase::BlindSearch);
        j.record(35, EventKind::PacketInjected { bytes: 50 });
        j.span_end(40, Phase::Deploy);

        let evs = j.events();
        assert_eq!(evs[0].phase, None);
        assert_eq!(evs[3].phase, Some(Phase::BlindSearch));
        assert_eq!(evs[5].phase, Some(Phase::Deploy));
        assert_eq!(j.current_phase(), None);
    }

    #[test]
    fn unbalanced_end_is_recorded_not_fatal() {
        let j = Journal::new();
        j.span_end(5, Phase::Evaluate);
        assert_eq!(j.len(), 1);
        assert_eq!(j.current_phase(), None);
    }

    #[test]
    fn absorb_worker_tags_events_and_sums_counters() {
        use crate::metrics::Counter;

        let main = Journal::new();
        main.record(0, EventKind::FlowReset);
        main.metrics.add(Counter::Verdicts, 1);

        let w0 = Journal::new();
        w0.record(5, EventKind::PacketInjected { bytes: 10 });
        w0.metrics.add(Counter::Verdicts, 2);
        let w1 = Journal::new();
        w1.record(3, EventKind::PacketInjected { bytes: 20 });
        w1.metrics.add(Counter::PacketsInjected, 1);

        main.absorb_worker(0, &w0);
        main.absorb_worker(1, &w1);

        let evs = main.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].worker, None);
        assert_eq!(evs[1].worker, Some(0));
        assert_eq!(evs[2].worker, Some(1));
        assert_eq!(main.metrics.get(Counter::Verdicts), 3);
        assert_eq!(main.metrics.get(Counter::PacketsInjected), 1);
    }

    #[test]
    fn phase_index_matches_all_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
