//! The event journal: an append-only log of what the pipeline did, in
//! simulation time.
//!
//! Phases mirror Fig. 3 of the paper: detect (inverted control), the two
//! characterization searches (blind byte search §5.1, position probe
//! §5.2), evaluation of the Table 3 taxonomy, and deployment through the
//! rule cache. Spans nest — a deploy span that triggers a fresh
//! characterization encloses blind-search/position-probe spans — and every
//! typed event is attributed to the innermost open span at record time.

use std::sync::atomic::{AtomicBool, Ordering};

use parking_lot::Mutex;

use crate::hist::Hist;
use crate::metrics::Metrics;

/// A pipeline phase that can be spanned in the journal. The first five
/// mirror Fig. 3 of the paper; `Wave` and `Replay` are *micro* phases —
/// engine-level spans that nest inside a Fig. 3 phase to show where its
/// time went (one wave bucket, one replayed trace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    Detect,
    BlindSearch,
    PositionProbe,
    Evaluate,
    Deploy,
    Wave,
    Replay,
}

impl Phase {
    pub const ALL: [Phase; 7] = [
        Phase::Detect,
        Phase::BlindSearch,
        Phase::PositionProbe,
        Phase::Evaluate,
        Phase::Deploy,
        Phase::Wave,
        Phase::Replay,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Phase::Detect => "detect",
            Phase::BlindSearch => "blind-search",
            Phase::PositionProbe => "position-probe",
            Phase::Evaluate => "evaluate",
            Phase::Deploy => "deploy",
            Phase::Wave => "wave",
            Phase::Replay => "replay",
        }
    }

    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.iter().copied().find(|p| p.name() == name)
    }

    /// Position in `Phase::ALL`; used as an array index by the summary.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Micro phases are engine plumbing, not Fig. 3 steps. Events keep
    /// being *attributed* (`Event::phase`) to the innermost open Fig. 3
    /// phase so per-phase replay/packet accounting is unchanged by the
    /// finer spans; micro spans still appear in the span tree via ids.
    pub fn is_micro(self) -> bool {
        matches!(self, Phase::Wave | Phase::Replay)
    }
}

/// What happened. Every variant carries only deterministic data — values
/// derived from the trace, the seed, or the simulation clock.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened. `id` is unique within one journal (pool workers
    /// have their own id sequences; a merged journal keys spans by
    /// `(worker, id)`), `parent` is the id of the enclosing open span.
    SpanStart {
        phase: Phase,
        id: u64,
        parent: Option<u64>,
    },
    /// A span closed. `id` is 0 for an end with no matching start (the
    /// imbalance stays visible in the journal rather than panicking).
    SpanEnd {
        phase: Phase,
        id: u64,
    },
    /// A `Session` came up against an environment with a seed. Recording
    /// the seed makes journals self-describing and guarantees different
    /// seeds produce different journals. `substrate` names the backend
    /// the session ran on ("sim", "nft"); the JSONL encoding omits it for
    /// "sim" so simulator journals are stable across the seam refactor.
    SessionStarted {
        env: String,
        seed: u64,
        substrate: String,
    },
    /// A client packet entered the simulated network.
    PacketInjected {
        bytes: u64,
    },
    /// The DPI device classified a flow.
    ClassifierVerdict {
        class: String,
        rule_id: String,
    },
    /// A client RST changed DPI flow state (flush or timeout shortening).
    FlowReset,
    CacheHit {
        key: String,
    },
    CacheMiss {
        key: String,
    },
    /// One Table 3 candidate was evaluated end to end.
    TechniqueTried {
        technique: String,
        evaded: bool,
    },
    /// One replay finished; `replay` is the session's running count.
    ReplayFinished {
        replay: u64,
        bytes_sent: u64,
        server_bytes: u64,
        blocked: bool,
    },
    /// A DPI device's rule set was hot-swapped mid-deployment.
    RuleSwap {
        device: String,
        rules: u64,
    },
    /// The deployment pool atomically published a (re)characterized
    /// technique under a new generation stamp.
    TechniquePublished {
        generation: u64,
        technique: String,
    },
    /// A flow parked on a fallback-ladder technique after the published
    /// technique burned mid-wave.
    FallbackEngaged {
        technique: String,
    },
}

impl EventKind {
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SpanStart { .. } => "span_start",
            EventKind::SpanEnd { .. } => "span_end",
            EventKind::SessionStarted { .. } => "session_started",
            EventKind::PacketInjected { .. } => "packet_injected",
            EventKind::ClassifierVerdict { .. } => "classifier_verdict",
            EventKind::FlowReset => "flow_reset",
            EventKind::CacheHit { .. } => "cache_hit",
            EventKind::CacheMiss { .. } => "cache_miss",
            EventKind::TechniqueTried { .. } => "technique_tried",
            EventKind::ReplayFinished { .. } => "replay_finished",
            EventKind::RuleSwap { .. } => "rule_swap",
            EventKind::TechniquePublished { .. } => "technique_published",
            EventKind::FallbackEngaged { .. } => "fallback_engaged",
        }
    }
}

/// One journal entry. `t_us` is microseconds on the simulation clock
/// (`SimTime::as_micros()` at the call site — never the wall clock).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub t_us: u64,
    /// Innermost open *Fig. 3* span when the event was recorded — micro
    /// phases (`Wave`, `Replay`) are skipped for attribution so the
    /// per-phase accounting matches the paper's pipeline. For
    /// `SpanStart`/`SpanEnd` this is the span's own phase.
    pub phase: Option<Phase>,
    /// Pool worker whose session recorded this event; `None` in a
    /// single-session run (and omitted from the JSONL), so sequential
    /// journals are byte-identical to pre-engine ones. Set by
    /// [`Journal::absorb_worker`], never at record time.
    pub worker: Option<u32>,
    /// Id of the innermost open span of *any* phase at record time. For
    /// `SpanStart`/`SpanEnd` this is the span's own id. Together with
    /// `SpanStart::parent`, this nests every event into the span tree.
    pub span: Option<u64>,
    pub kind: EventKind,
}

/// One open span on the stack: phase, id, and when it opened (so the
/// closing end can feed the per-phase sim-latency histogram).
#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    phase: Phase,
    id: u64,
    start_us: u64,
}

#[derive(Debug, Default)]
struct Inner {
    events: Vec<Event>,
    stack: Vec<OpenSpan>,
    /// Next span id; ids start at 1 (0 marks an unmatched span end).
    next_span: u64,
}

/// The journal: event log plus counter registry, shared as an
/// `Arc<Journal>` by `Environment`, `Session`, and the path elements.
/// All execution is synchronous today, so the mutex is uncontended; it
/// exists so the handle can be cloned freely across layers.
#[derive(Debug)]
pub struct Journal {
    inner: Mutex<Inner>,
    /// When false every record/span/observe call is a no-op. `exp-obs`
    /// uses this to measure tracing overhead (journal on vs off) on an
    /// otherwise identical workload; counters stay live either way.
    enabled: AtomicBool,
    pub metrics: Metrics,
}

impl Default for Journal {
    fn default() -> Journal {
        Journal {
            inner: Mutex::default(),
            enabled: AtomicBool::new(true),
            metrics: Metrics::default(),
        }
    }
}

impl Journal {
    pub fn new() -> Journal {
        Journal::default()
    }

    /// A journal whose record/span/observe calls are no-ops (counters
    /// still count). The baseline side of the `exp-obs` overhead gate.
    pub fn disabled() -> Journal {
        let j = Journal::new();
        j.set_enabled(false);
        j
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Record a typed event, attributed to the innermost open Fig. 3
    /// span (micro spans carry ids but never attribution).
    pub fn record(&self, t_us: u64, kind: EventKind) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        let phase = inner
            .stack
            .iter()
            .rev()
            .find(|s| !s.phase.is_micro())
            .map(|s| s.phase);
        let span = inner.stack.last().map(|s| s.id);
        inner.events.push(Event {
            t_us,
            phase,
            worker: None,
            span,
            kind,
        });
    }

    /// Record one histogram sample, gated like events so the disabled
    /// journal measures a true tracing-off baseline.
    pub fn observe(&self, h: Hist, v: u64) {
        if self.is_enabled() {
            self.metrics.observe(h, v);
        }
    }

    /// Open a phase span at `t_us`; returns its id (0 when disabled).
    pub fn span_start(&self, t_us: u64, phase: Phase) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let mut inner = self.inner.lock();
        inner.next_span += 1;
        let id = inner.next_span;
        let parent = inner.stack.last().map(|s| s.id);
        inner.stack.push(OpenSpan {
            phase,
            id,
            start_us: t_us,
        });
        inner.events.push(Event {
            t_us,
            phase: Some(phase),
            worker: None,
            span: Some(id),
            kind: EventKind::SpanStart { phase, id, parent },
        });
        id
    }

    /// Close the innermost span of `phase` at `t_us`, feeding the
    /// phase's sim-latency histogram. Tolerates a span that was never
    /// opened (the end event is still recorded with id 0, so the
    /// imbalance is visible in the journal rather than a panic).
    pub fn span_end(&self, t_us: u64, phase: Phase) {
        if !self.is_enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        let mut id = 0;
        if let Some(pos) = inner.stack.iter().rposition(|s| s.phase == phase) {
            let open = inner.stack.remove(pos);
            id = open.id;
            self.metrics
                .observe(Hist::for_phase(phase), t_us.saturating_sub(open.start_us));
        }
        inner.events.push(Event {
            t_us,
            phase: Some(phase),
            worker: None,
            span: Some(id),
            kind: EventKind::SpanEnd { phase, id },
        });
    }

    /// Fold a pool worker's journal into this one: its events are
    /// appended tagged `worker = Some(w)` (in their original order), its
    /// counter values are added to this journal's registry, and its
    /// histograms merge bucket-wise. Span ids stay worker-local — a
    /// merged journal keys spans by `(worker, id)`. Callers absorb
    /// workers in ascending index order so the merged journal is
    /// deterministic for a fixed seed and worker count.
    pub fn absorb_worker(&self, worker: u32, other: &Journal) {
        let events = other.events();
        {
            let mut inner = self.inner.lock();
            inner.events.extend(events.into_iter().map(|mut e| {
                e.worker = Some(worker);
                e
            }));
        }
        for (counter, value) in other.metrics.snapshot() {
            if value > 0 {
                self.metrics.add(counter, value);
            }
        }
        self.metrics.merge_hists(&other.metrics);
    }

    /// Splice a reactor lane's *staged* journal into this one as if its
    /// events had been recorded inline, `dt_us` later on this journal's
    /// timeline. This is the canonicalization half of the event-driven
    /// engine's determinism contract (`liberate::reactor`): every lane
    /// records into a private staged journal on a virtual timeline
    /// starting at the wave's opening instant, and the reactor splices
    /// the lanes back in **admission order** with `dt_us` set to the sum
    /// of the earlier lanes' durations — reproducing, byte for byte, the
    /// journal a sequential run of the same jobs would have written.
    ///
    /// Concretely:
    /// - staged timestamps are rebased by `dt_us`;
    /// - staged span ids (a private 1.. sequence) are renumbered after
    ///   this journal's, and staged root spans are re-parented onto this
    ///   journal's innermost open span (the enclosing `Wave`);
    /// - events the lane recorded outside any non-micro span inherit this
    ///   journal's innermost open Fig. 3 phase, exactly as they would
    ///   have had they been recorded inline under it;
    /// - `ReplayFinished::replay` ordinals (lane-local 1..) are rebased
    ///   by `replay_base`, the session replays that canonically precede
    ///   this lane;
    /// - counters are added and histograms merged bucket-wise (always,
    ///   even when event recording is disabled).
    pub fn splice_staged(&self, staged: &Journal, dt_us: u64, replay_base: u64) {
        for (counter, value) in staged.metrics.snapshot() {
            if value > 0 {
                self.metrics.add(counter, value);
            }
        }
        self.metrics.merge_hists(&staged.metrics);
        if !self.is_enabled() {
            return;
        }
        let events = staged.events();
        let id_base = {
            let staged_inner = staged.inner.lock();
            staged_inner.next_span
        };
        let mut inner = self.inner.lock();
        let ctx_phase = inner
            .stack
            .iter()
            .rev()
            .find(|s| !s.phase.is_micro())
            .map(|s| s.phase);
        let ctx_span = inner.stack.last().map(|s| s.id);
        let base = inner.next_span;
        inner.next_span = base + id_base;
        let remap = |id: Option<u64>| match id {
            // 0 marks an unmatched span end; keep the imbalance visible.
            Some(0) => Some(0),
            Some(id) => Some(id + base),
            None => ctx_span,
        };
        inner.events.extend(events.into_iter().map(|mut e| {
            e.t_us += dt_us;
            if e.phase.is_none() {
                e.phase = ctx_phase;
            }
            e.span = remap(e.span);
            match &mut e.kind {
                EventKind::SpanStart { id, parent, .. } => {
                    *id += base;
                    *parent = remap(*parent);
                }
                EventKind::SpanEnd { id, .. } => {
                    if *id != 0 {
                        *id += base;
                    }
                }
                EventKind::ReplayFinished { replay, .. } => {
                    *replay += replay_base;
                }
                _ => {}
            }
            e
        }));
    }

    /// Innermost open span's phase, micro or not, if any.
    pub fn current_phase(&self) -> Option<Phase> {
        self.inner.lock().stack.last().map(|s| s.phase)
    }

    /// A snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.inner.lock().events.clone()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_inherit_innermost_phase() {
        let j = Journal::new();
        j.record(0, EventKind::FlowReset);
        j.span_start(10, Phase::Deploy);
        j.span_start(20, Phase::BlindSearch);
        j.record(25, EventKind::PacketInjected { bytes: 100 });
        j.span_end(30, Phase::BlindSearch);
        j.record(35, EventKind::PacketInjected { bytes: 50 });
        j.span_end(40, Phase::Deploy);

        let evs = j.events();
        assert_eq!(evs[0].phase, None);
        assert_eq!(evs[0].span, None);
        assert_eq!(evs[3].phase, Some(Phase::BlindSearch));
        assert_eq!(evs[3].span, Some(2));
        assert_eq!(evs[5].phase, Some(Phase::Deploy));
        assert_eq!(evs[5].span, Some(1));
        assert_eq!(j.current_phase(), None);
    }

    #[test]
    fn span_ids_nest_with_parents() {
        let j = Journal::new();
        let outer = j.span_start(0, Phase::Detect);
        let inner = j.span_start(5, Phase::Replay);
        assert_eq!(outer, 1);
        assert_eq!(inner, 2);
        j.span_end(9, Phase::Replay);
        j.span_end(10, Phase::Detect);

        let evs = j.events();
        assert_eq!(
            evs[0].kind,
            EventKind::SpanStart {
                phase: Phase::Detect,
                id: 1,
                parent: None
            }
        );
        assert_eq!(
            evs[1].kind,
            EventKind::SpanStart {
                phase: Phase::Replay,
                id: 2,
                parent: Some(1)
            }
        );
        assert_eq!(
            evs[2].kind,
            EventKind::SpanEnd {
                phase: Phase::Replay,
                id: 2
            }
        );
    }

    #[test]
    fn micro_phases_carry_ids_but_not_attribution() {
        use crate::hist::Hist;

        let j = Journal::new();
        j.span_start(0, Phase::BlindSearch);
        j.span_start(10, Phase::Replay);
        j.record(15, EventKind::PacketInjected { bytes: 9 });
        j.span_end(40, Phase::Replay);
        j.span_end(50, Phase::BlindSearch);

        let evs = j.events();
        // Attribution skips the micro Replay span; the span id does not.
        assert_eq!(evs[2].phase, Some(Phase::BlindSearch));
        assert_eq!(evs[2].span, Some(2));
        // Closing spans fed the per-phase sim-latency histograms.
        assert_eq!(j.metrics.hist(Hist::ReplaySimMicros).sum(), 30);
        assert_eq!(j.metrics.hist(Hist::BlindSearchSimMicros).sum(), 50);
    }

    #[test]
    fn unbalanced_end_is_recorded_not_fatal() {
        let j = Journal::new();
        j.span_end(5, Phase::Evaluate);
        assert_eq!(j.len(), 1);
        assert_eq!(
            j.events()[0].kind,
            EventKind::SpanEnd {
                phase: Phase::Evaluate,
                id: 0
            }
        );
        assert_eq!(j.current_phase(), None);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        use crate::hist::Hist;
        use crate::metrics::Counter;

        let j = Journal::disabled();
        assert_eq!(j.span_start(0, Phase::Detect), 0);
        j.record(5, EventKind::FlowReset);
        j.observe(Hist::BlindRounds, 3);
        j.span_end(10, Phase::Detect);
        assert!(j.is_empty());
        assert!(j.metrics.hist(Hist::BlindRounds).is_empty());
        // Counters bypass the gate: they are the cheap always-on surface.
        j.metrics.incr(Counter::FlowResets);
        assert_eq!(j.metrics.get(Counter::FlowResets), 1);
    }

    #[test]
    fn absorb_worker_tags_events_and_sums_counters() {
        use crate::hist::Hist;
        use crate::metrics::Counter;

        let main = Journal::new();
        main.record(0, EventKind::FlowReset);
        main.metrics.add(Counter::Verdicts, 1);
        main.observe(Hist::BlindRounds, 4);

        let w0 = Journal::new();
        w0.record(5, EventKind::PacketInjected { bytes: 10 });
        w0.metrics.add(Counter::Verdicts, 2);
        w0.observe(Hist::BlindRounds, 6);
        let w1 = Journal::new();
        w1.record(3, EventKind::PacketInjected { bytes: 20 });
        w1.metrics.add(Counter::PacketsInjected, 1);

        main.absorb_worker(0, &w0);
        main.absorb_worker(1, &w1);

        let evs = main.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].worker, None);
        assert_eq!(evs[1].worker, Some(0));
        assert_eq!(evs[2].worker, Some(1));
        assert_eq!(main.metrics.get(Counter::Verdicts), 3);
        assert_eq!(main.metrics.get(Counter::PacketsInjected), 1);
        let rounds = main.metrics.hist(Hist::BlindRounds).snapshot();
        assert_eq!(rounds.count, 2);
        assert_eq!(rounds.sum, 10);
    }

    #[test]
    fn splice_staged_matches_inline_recording() {
        use crate::metrics::Counter;

        // Reference: everything recorded inline on one journal.
        let inline = Journal::new();
        inline.span_start(0, Phase::BlindSearch);
        inline.span_start(0, Phase::Wave);
        inline.span_start(10, Phase::Replay);
        inline.record(15, EventKind::PacketInjected { bytes: 9 });
        inline.record(
            20,
            EventKind::ReplayFinished {
                replay: 3,
                bytes_sent: 9,
                server_bytes: 0,
                blocked: false,
            },
        );
        inline.span_end(20, Phase::Replay);
        inline.span_end(20, Phase::Wave);
        inline.span_end(30, Phase::BlindSearch);

        // Same work staged on a lane timeline starting at 0, spliced at
        // dt=10 with two canonically-earlier replays.
        let main = Journal::new();
        main.span_start(0, Phase::BlindSearch);
        main.span_start(0, Phase::Wave);
        let staged = Journal::new();
        staged.span_start(0, Phase::Replay);
        staged.record(5, EventKind::PacketInjected { bytes: 9 });
        staged.metrics.incr(Counter::PacketsInjected);
        staged.record(
            10,
            EventKind::ReplayFinished {
                replay: 1,
                bytes_sent: 9,
                server_bytes: 0,
                blocked: false,
            },
        );
        staged.span_end(10, Phase::Replay);
        main.splice_staged(&staged, 10, 2);
        main.span_end(20, Phase::Wave);
        main.span_end(30, Phase::BlindSearch);

        assert_eq!(main.events(), inline.events());
        assert_eq!(main.metrics.get(Counter::PacketsInjected), 1);
        // The id sequence continues past the spliced spans.
        assert_eq!(main.span_start(40, Phase::Detect), 4);
    }

    #[test]
    fn splice_into_disabled_journal_keeps_counters_only() {
        use crate::metrics::Counter;

        let main = Journal::disabled();
        let staged = Journal::new();
        staged.record(5, EventKind::FlowReset);
        staged.metrics.incr(Counter::FlowResets);
        main.splice_staged(&staged, 0, 0);
        assert!(main.is_empty());
        assert_eq!(main.metrics.get(Counter::FlowResets), 1);
    }

    #[test]
    fn phase_from_name_roundtrips() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        assert_eq!(Phase::from_name("nope"), None);
    }

    #[test]
    fn phase_index_matches_all_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }
}
