//! Hot-path counters: a fixed registry of atomics cheap enough to bump
//! from `Network::run_until`'s event loop without perturbing experiments.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::hist::{Hist, HistSnapshot, Histogram};

/// Every counter the pipeline maintains. The numeric discriminant indexes
/// the atomic array in [`Metrics`]; `ALL` fixes the export order so JSONL
/// journals are byte-stable across runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Counter {
    /// Simulator events dispatched by `netsim::Network::run_until`.
    PacketsStepped,
    /// Client packets entering the network via `send_from_client`.
    PacketsInjected,
    /// Flow-table entries created by the DPI device.
    FlowsCreated,
    /// Flow-table entries evicted (timeout expiry or RST flush).
    FlowsEvicted,
    /// Replays executed by `Session::replay_schedule`.
    ReplaysExecuted,
    /// Payload bytes blinded during characterization probes.
    BytesBlinded,
    /// Schedule steps lowered to wire activity during replay.
    StepsLowered,
    /// Rule-cache lookups that found an entry.
    CacheHits,
    /// Rule-cache lookups that missed.
    CacheMisses,
    /// Classification verdicts emitted by the DPI device.
    Verdicts,
    /// Client RSTs that changed DPI flow state.
    FlowResets,
    /// Evasion techniques attempted during evaluation.
    TechniquesTried,
    /// Payload bytes the DPI matcher actually examined. The naive rescan
    /// model pays per applicable rule per (re)scan; the compiled automaton
    /// pays once per stream byte (plus refeeds after an overlap rewrite).
    MatcherBytesScanned,
    /// States in compiled rule automata (added once per lazy compile).
    AutomatonStates,
    /// Live application flows driven by `DeploymentPool::run_flows`.
    DeployFlows,
    /// Re-characterization waves the deployment pool has run (one per
    /// acknowledged classifier change, regardless of worker count).
    RecharacterizeWaves,
    /// Flows parked on a fallback-ladder technique after the published
    /// technique burned mid-wave.
    FallbackParks,
    /// Rule-set hot swaps applied to a DPI device mid-deployment.
    RuleSwaps,
    /// Deep copies of wire/payload buffers on the packet hot path
    /// (copy-on-write faults and the few remaining sanctioned copies).
    /// Paired with [`Counter::PayloadBytesCopied`] for volume.
    PayloadCopies,
    /// Bytes materialized by those payload copies.
    PayloadBytesCopied,
    /// Scheduler iterations of the event-driven replay reactor (one per
    /// task poll or timer-wheel advance).
    ReactorTicks,
    /// Flow tasks admitted into a reactor's ready queue.
    ReactorTasksAdmitted,
    /// Timer-wheel entries fired by the reactor.
    ReactorTimerFires,
    /// Flow tasks whose poll panicked and was contained by the reactor.
    ReactorTaskPanics,
}

impl Counter {
    pub const ALL: [Counter; 24] = [
        Counter::PacketsStepped,
        Counter::PacketsInjected,
        Counter::FlowsCreated,
        Counter::FlowsEvicted,
        Counter::ReplaysExecuted,
        Counter::BytesBlinded,
        Counter::StepsLowered,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::Verdicts,
        Counter::FlowResets,
        Counter::TechniquesTried,
        Counter::MatcherBytesScanned,
        Counter::AutomatonStates,
        Counter::DeployFlows,
        Counter::RecharacterizeWaves,
        Counter::FallbackParks,
        Counter::RuleSwaps,
        Counter::PayloadCopies,
        Counter::PayloadBytesCopied,
        Counter::ReactorTicks,
        Counter::ReactorTasksAdmitted,
        Counter::ReactorTimerFires,
        Counter::ReactorTaskPanics,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Counter::PacketsStepped => "packets-stepped",
            Counter::PacketsInjected => "packets-injected",
            Counter::FlowsCreated => "flows-created",
            Counter::FlowsEvicted => "flows-evicted",
            Counter::ReplaysExecuted => "replays-executed",
            Counter::BytesBlinded => "bytes-blinded",
            Counter::StepsLowered => "steps-lowered",
            Counter::CacheHits => "cache-hits",
            Counter::CacheMisses => "cache-misses",
            Counter::Verdicts => "verdicts",
            Counter::FlowResets => "flow-resets",
            Counter::TechniquesTried => "techniques-tried",
            Counter::MatcherBytesScanned => "matcher-bytes-scanned",
            Counter::AutomatonStates => "automaton-states",
            Counter::DeployFlows => "deploy-flows",
            Counter::RecharacterizeWaves => "recharacterize-waves",
            Counter::FallbackParks => "fallback-parks",
            Counter::RuleSwaps => "rule-swaps",
            Counter::PayloadCopies => "payload-copies",
            Counter::PayloadBytesCopied => "payload-bytes-copied",
            Counter::ReactorTicks => "reactor-ticks",
            Counter::ReactorTasksAdmitted => "reactor-tasks-admitted",
            Counter::ReactorTimerFires => "reactor-timer-fires",
            Counter::ReactorTaskPanics => "reactor-task-panics",
        }
    }
}

/// The counter registry. Shared behind the `Arc<Journal>` that rides on
/// `Environment`/`Session`; increments are relaxed atomics because all
/// counters are independent and only read after the run quiesces.
///
/// The histogram table is allocated on first sample: at ~1000 buckets
/// per histogram it is ~100 KiB of real memory, and a reactor wave
/// carries one `Metrics` per in-flight lane — a 100k-flow wave must not
/// pay 100 KiB per lane for tables the disabled lane journals never
/// touch (`Journal::observe` gates samples on the enabled flag).
#[derive(Debug, Default)]
pub struct Metrics {
    counters: [AtomicU64; Counter::ALL.len()],
    hists: std::sync::OnceLock<Box<[Histogram]>>,
}

impl Metrics {
    pub fn new() -> Metrics {
        Metrics::default()
    }

    fn hist_table(&self) -> &[Histogram] {
        self.hists
            .get_or_init(|| (0..Hist::ALL.len()).map(|_| Histogram::default()).collect())
    }

    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    pub fn add(&self, c: Counter, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    /// All counters in `Counter::ALL` order.
    pub fn snapshot(&self) -> Vec<(Counter, u64)> {
        Counter::ALL.iter().map(|&c| (c, self.get(c))).collect()
    }

    /// Record one sample into a histogram.
    pub fn observe(&self, h: Hist, v: u64) {
        self.hist_table()[h as usize].record(v);
    }

    pub fn hist(&self, h: Hist) -> &Histogram {
        &self.hist_table()[h as usize]
    }

    /// All histograms in `Hist::ALL` order, mirroring [`Self::snapshot`]
    /// so exports stay byte-identical across platforms. A registry that
    /// never recorded a sample snapshots as all-empty without allocating
    /// its table.
    pub fn hist_snapshot(&self) -> Vec<(Hist, HistSnapshot)> {
        match self.hists.get() {
            Some(table) => Hist::ALL
                .iter()
                .map(|&h| (h, table[h as usize].snapshot()))
                .collect(),
            None => Hist::ALL
                .iter()
                .map(|&h| (h, HistSnapshot::default()))
                .collect(),
        }
    }

    /// Fold another registry's histograms into this one (bucket-wise
    /// addition; see `Histogram::merge`). Counters are merged separately
    /// by `Journal::absorb_worker`.
    pub fn merge_hists(&self, other: &Metrics) {
        let Some(theirs) = other.hists.get() else {
            return;
        };
        for h in Hist::ALL {
            let hist = &theirs[h as usize];
            if !hist.is_empty() {
                self.hist_table()[h as usize].merge(hist);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incr_add_get_roundtrip() {
        let m = Metrics::new();
        m.incr(Counter::PacketsStepped);
        m.incr(Counter::PacketsStepped);
        m.add(Counter::BytesBlinded, 40);
        assert_eq!(m.get(Counter::PacketsStepped), 2);
        assert_eq!(m.get(Counter::BytesBlinded), 40);
        assert_eq!(m.get(Counter::CacheHits), 0);
    }

    #[test]
    fn snapshot_follows_declared_order() {
        let m = Metrics::new();
        m.incr(Counter::Verdicts);
        let snap = m.snapshot();
        assert_eq!(snap.len(), Counter::ALL.len());
        for (i, (c, _)) in snap.iter().enumerate() {
            assert_eq!(*c, Counter::ALL[i]);
        }
        assert_eq!(snap[Counter::Verdicts as usize].1, 1);
    }

    #[test]
    fn hist_snapshot_follows_declared_order() {
        let m = Metrics::new();
        m.observe(Hist::BlindRounds, 7);
        let snap = m.hist_snapshot();
        assert_eq!(snap.len(), Hist::ALL.len());
        for (i, (h, _)) in snap.iter().enumerate() {
            assert_eq!(*h, Hist::ALL[i]);
        }
        assert_eq!(snap[Hist::BlindRounds as usize].1.count, 1);
        assert_eq!(snap[Hist::BlindRounds as usize].1.sum, 7);
    }

    #[test]
    fn merge_hists_sums_bucketwise() {
        let a = Metrics::new();
        let b = Metrics::new();
        a.observe(Hist::WaveOccupancy, 2);
        b.observe(Hist::WaveOccupancy, 2);
        b.observe(Hist::WaveOccupancy, 9);
        a.merge_hists(&b);
        let snap = a.hist(Hist::WaveOccupancy).snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.max, 9);
    }

    #[test]
    fn names_are_unique_and_kebab() {
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::ALL.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'), "{n}");
        }
    }
}
