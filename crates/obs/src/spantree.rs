//! Span trees: reconstruct the detect → blind-search → wave → replay
//! nesting from a journal's span events, attribute each root's
//! simulated time to its dominant child chain (the critical path), and
//! export folded stacks in the flamegraph collapsed format.
//!
//! Span ids are unique within one worker's journal and merged journals
//! key spans by `(worker, id)`, so a pooled run yields one forest with
//! per-worker subtrees side by side.

use std::collections::HashMap;

use crate::journal::{Event, EventKind, Phase};

/// One reconstructed span. `end_us` is `None` for a span whose end was
/// never recorded (a crashed or truncated run).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    pub worker: Option<u32>,
    pub id: u64,
    pub phase: Phase,
    pub start_us: u64,
    pub end_us: Option<u64>,
    /// Indices into `SpanForest::nodes`, in start order.
    pub children: Vec<usize>,
    /// Index of the parent node, if any.
    pub parent: Option<usize>,
}

impl SpanNode {
    /// Simulated duration; an unclosed span contributes zero.
    pub fn duration_us(&self) -> u64 {
        self.end_us
            .map_or(0, |end| end.saturating_sub(self.start_us))
    }
}

/// All spans of a journal, with root indices in start order.
#[derive(Debug, Clone, Default)]
pub struct SpanForest {
    pub nodes: Vec<SpanNode>,
    pub roots: Vec<usize>,
}

impl SpanForest {
    /// Self time of a node: its duration minus its children's.
    pub fn self_us(&self, idx: usize) -> u64 {
        let node = &self.nodes[idx];
        let child_sum: u64 = node
            .children
            .iter()
            .map(|&c| self.nodes[c].duration_us())
            .sum();
        node.duration_us().saturating_sub(child_sum)
    }
}

/// Reconstruct the span forest from a journal's events. Unmatched span
/// ends (id 0) are ignored; a start whose parent id was never seen
/// becomes a root, so a truncated journal still yields a usable forest.
pub fn build_span_forest(events: &[Event]) -> SpanForest {
    let mut forest = SpanForest::default();
    let mut by_key: HashMap<(Option<u32>, u64), usize> = HashMap::new();
    for ev in events {
        match &ev.kind {
            EventKind::SpanStart { phase, id, parent } => {
                let parent_idx = parent.and_then(|p| by_key.get(&(ev.worker, p)).copied());
                let idx = forest.nodes.len();
                forest.nodes.push(SpanNode {
                    worker: ev.worker,
                    id: *id,
                    phase: *phase,
                    start_us: ev.t_us,
                    end_us: None,
                    children: Vec::new(),
                    parent: parent_idx,
                });
                by_key.insert((ev.worker, *id), idx);
                match parent_idx {
                    Some(p) => forest.nodes[p].children.push(idx),
                    None => forest.roots.push(idx),
                }
            }
            EventKind::SpanEnd { id, .. } if *id != 0 => {
                if let Some(&idx) = by_key.get(&(ev.worker, *id)) {
                    forest.nodes[idx].end_us = Some(ev.t_us);
                }
            }
            _ => {}
        }
    }
    forest
}

/// The dominant chain under `root`: at every level, descend into the
/// child with the longest simulated duration (ties break toward the
/// earlier-started child, so the path is deterministic). Returns node
/// indices from the root down.
pub fn critical_path(forest: &SpanForest, root: usize) -> Vec<usize> {
    let mut path = vec![root];
    let mut cur = root;
    loop {
        let node = &forest.nodes[cur];
        let Some(&next) = node.children.iter().max_by(|&&a, &&b| {
            let (da, db) = (forest.nodes[a].duration_us(), forest.nodes[b].duration_us());
            // max_by keeps the *last* maximal element; order start
            // times in reverse so the earlier child wins ties.
            da.cmp(&db)
                .then(forest.nodes[b].start_us.cmp(&forest.nodes[a].start_us))
                .then(b.cmp(&a))
        }) else {
            return path;
        };
        path.push(next);
        cur = next;
    }
}

/// Folded stacks in the flamegraph collapsed format: one line per
/// distinct `worker;phase;…;phase` frame stack, weighted by the summed
/// *self* time (simulated micros) of spans at that stack. Lines come
/// out sorted, so same-seed journals fold to identical bytes.
pub fn folded_stacks(forest: &SpanForest) -> Vec<(String, u64)> {
    let mut agg: HashMap<String, u64> = HashMap::new();
    for idx in 0..forest.nodes.len() {
        let node = &forest.nodes[idx];
        let mut frames = vec![node.phase.name().to_string()];
        let mut up = node.parent;
        while let Some(p) = up {
            frames.push(forest.nodes[p].phase.name().to_string());
            up = forest.nodes[p].parent;
        }
        frames.push(match node.worker {
            Some(w) => format!("w{w}"),
            None => "main".to_string(),
        });
        frames.reverse();
        *agg.entry(frames.join(";")).or_insert(0) += forest.self_us(idx);
    }
    let mut rows: Vec<(String, u64)> = agg.into_iter().collect();
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;

    fn sample() -> SpanForest {
        let j = Journal::new();
        j.span_start(0, Phase::BlindSearch); // id 1
        j.span_start(10, Phase::Wave); // id 2
        j.span_start(10, Phase::Replay); // id 3
        j.span_end(40, Phase::Replay);
        j.span_start(40, Phase::Replay); // id 4
        j.span_end(90, Phase::Replay);
        j.span_end(95, Phase::Wave);
        j.span_end(100, Phase::BlindSearch);
        build_span_forest(&j.events())
    }

    #[test]
    fn nesting_is_reconstructed() {
        let f = sample();
        assert_eq!(f.roots, vec![0]);
        assert_eq!(f.nodes[0].phase, Phase::BlindSearch);
        assert_eq!(f.nodes[0].children, vec![1]);
        assert_eq!(f.nodes[1].children, vec![2, 3]);
        assert_eq!(f.nodes[2].parent, Some(1));
        assert_eq!(f.nodes[0].duration_us(), 100);
        assert_eq!(f.nodes[3].duration_us(), 50);
    }

    #[test]
    fn critical_path_follows_dominant_children() {
        let f = sample();
        let path = critical_path(&f, 0);
        let phases: Vec<_> = path.iter().map(|&i| f.nodes[i].phase).collect();
        assert_eq!(phases, vec![Phase::BlindSearch, Phase::Wave, Phase::Replay]);
        // The 50 us second replay dominates the 30 us first.
        assert_eq!(f.nodes[*path.last().unwrap()].id, 4);
    }

    #[test]
    fn ties_break_toward_earlier_start() {
        let j = Journal::new();
        j.span_start(0, Phase::Detect); // id 1
        j.span_start(5, Phase::Replay); // id 2, 10 us
        j.span_end(15, Phase::Replay);
        j.span_start(20, Phase::Replay); // id 3, 10 us
        j.span_end(30, Phase::Replay);
        j.span_end(40, Phase::Detect);
        let f = build_span_forest(&j.events());
        let path = critical_path(&f, 0);
        assert_eq!(f.nodes[*path.last().unwrap()].id, 2);
    }

    #[test]
    fn folded_stacks_carry_self_time() {
        let f = sample();
        let rows = folded_stacks(&f);
        let find = |s: &str| rows.iter().find(|(k, _)| k == s).map(|(_, v)| *v);
        // Root self time: 100 total − 85 in the wave.
        assert_eq!(find("main;blind-search"), Some(15));
        // Wave self time: 85 − (30 + 50) in replays.
        assert_eq!(find("main;blind-search;wave"), Some(5));
        // Both replays fold into one stack.
        assert_eq!(find("main;blind-search;wave;replay"), Some(80));
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "sorted: {rows:?}");
    }

    #[test]
    fn per_worker_subtrees_do_not_collide() {
        let main = Journal::new();
        let w0 = Journal::new();
        w0.span_start(0, Phase::Deploy); // id 1 in w0
        w0.span_end(10, Phase::Deploy);
        let w1 = Journal::new();
        w1.span_start(0, Phase::Deploy); // id 1 in w1 too
        w1.span_start(2, Phase::Replay);
        w1.span_end(8, Phase::Replay);
        w1.span_end(10, Phase::Deploy);
        main.absorb_worker(0, &w0);
        main.absorb_worker(1, &w1);

        let f = build_span_forest(&main.events());
        assert_eq!(f.roots.len(), 2);
        let rows = folded_stacks(&f);
        assert!(rows.iter().any(|(k, _)| k == "w0;deploy"));
        assert!(rows.iter().any(|(k, _)| k == "w1;deploy;replay"));
    }

    #[test]
    fn unclosed_spans_contribute_zero() {
        let j = Journal::new();
        j.span_start(5, Phase::Evaluate);
        let f = build_span_forest(&j.events());
        assert_eq!(f.nodes[0].end_us, None);
        assert_eq!(f.nodes[0].duration_us(), 0);
        assert_eq!(folded_stacks(&f)[0], ("main;evaluate".to_string(), 0));
    }
}
