//! Per-phase span accounting: how many spans each Fig. 3 phase opened,
//! how much simulated time they covered, and what flowed through them.

use crate::journal::{Event, EventKind, Phase};

/// Aggregates for one phase across a whole journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSummary {
    pub phase: Phase,
    /// Completed span_start/span_end pairs.
    pub spans: u64,
    /// Total simulated microseconds inside completed spans.
    pub sim_us: u64,
    /// Replays finished while this phase was innermost.
    pub replays: u64,
    /// Client packets injected while this phase was innermost.
    pub packets: u64,
    /// Client payload bytes injected while this phase was innermost.
    pub bytes: u64,
}

/// Fold a journal's events into one row per phase, in `Phase::ALL` order.
pub fn phase_summaries(events: &[Event]) -> Vec<PhaseSummary> {
    let mut rows: Vec<PhaseSummary> = Phase::ALL
        .iter()
        .map(|&phase| PhaseSummary {
            phase,
            spans: 0,
            sim_us: 0,
            replays: 0,
            packets: 0,
            bytes: 0,
        })
        .collect();
    // Open-span start times, per phase (spans of the same phase can nest
    // in principle; pair each end with the most recent start).
    let mut open: Vec<Vec<u64>> = vec![Vec::new(); Phase::ALL.len()];
    for ev in events {
        match &ev.kind {
            EventKind::SpanStart { phase, .. } => open[phase.index()].push(ev.t_us),
            EventKind::SpanEnd { phase, .. } => {
                if let Some(start) = open[phase.index()].pop() {
                    let row = &mut rows[phase.index()];
                    row.spans += 1;
                    row.sim_us += ev.t_us.saturating_sub(start);
                }
            }
            EventKind::ReplayFinished { .. } => {
                if let Some(p) = ev.phase {
                    rows[p.index()].replays += 1;
                }
            }
            EventKind::PacketInjected { bytes } => {
                if let Some(p) = ev.phase {
                    rows[p.index()].packets += 1;
                    rows[p.index()].bytes += *bytes;
                }
            }
            _ => {}
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::Journal;

    #[test]
    fn spans_and_traffic_aggregate_per_phase() {
        let j = Journal::new();
        j.span_start(0, Phase::Detect);
        j.record(10, EventKind::PacketInjected { bytes: 100 });
        j.record(
            20,
            EventKind::ReplayFinished {
                replay: 1,
                bytes_sent: 100,
                server_bytes: 0,
                blocked: false,
            },
        );
        j.span_end(30, Phase::Detect);
        j.span_start(40, Phase::BlindSearch);
        j.record(50, EventKind::PacketInjected { bytes: 200 });
        j.span_end(100, Phase::BlindSearch);

        let rows = phase_summaries(&j.events());
        let detect = rows[Phase::Detect.index()];
        assert_eq!(detect.spans, 1);
        assert_eq!(detect.sim_us, 30);
        assert_eq!(detect.replays, 1);
        assert_eq!(detect.packets, 1);
        assert_eq!(detect.bytes, 100);
        let blind = rows[Phase::BlindSearch.index()];
        assert_eq!(blind.sim_us, 60);
        assert_eq!(blind.bytes, 200);
        assert_eq!(rows[Phase::Deploy.index()].spans, 0);
    }

    #[test]
    fn nested_spans_attribute_to_innermost() {
        let j = Journal::new();
        j.span_start(0, Phase::Deploy);
        j.span_start(10, Phase::BlindSearch);
        j.record(15, EventKind::PacketInjected { bytes: 10 });
        j.span_end(20, Phase::BlindSearch);
        j.record(25, EventKind::PacketInjected { bytes: 20 });
        j.span_end(30, Phase::Deploy);

        let rows = phase_summaries(&j.events());
        assert_eq!(rows[Phase::BlindSearch.index()].packets, 1);
        assert_eq!(rows[Phase::Deploy.index()].packets, 1);
        assert_eq!(rows[Phase::Deploy.index()].sim_us, 30);
    }

    #[test]
    fn unmatched_end_contributes_nothing() {
        let j = Journal::new();
        j.span_end(10, Phase::Evaluate);
        let rows = phase_summaries(&j.events());
        assert_eq!(rows[Phase::Evaluate.index()].spans, 0);
        assert_eq!(rows[Phase::Evaluate.index()].sim_us, 0);
    }
}
