//! Log-linear latency histograms: distribution-aware measurement for the
//! profiling layer.
//!
//! The Wehe line of work shows differentiation claims stand or fall on
//! distributions, not means, and the ROADMAP's hot-path questions ("why
//! does host_cpu_ms grow with worker count?") need quantiles to answer.
//! This is an HDR-style histogram with no dependencies: values bucket
//! into powers of two subdivided into 16 linear sub-buckets, giving a
//! worst-case relative error of 1/16 ≈ 6% across the full `u64` range
//! with a fixed 976-slot table. Buckets are relaxed atomics so hot paths
//! can record without locking; merges add bucket-wise and are therefore
//! deterministic regardless of interleaving.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::journal::Phase;

/// Linear sub-buckets per power of two (the "significant figures" knob).
const SUB: u64 = 16;
const SUB_BITS: u32 = 4;

/// Total bucket count: 16 unit buckets for 0..16, then 16 sub-buckets
/// for each of the 60 octaves [2^4, 2^64).
pub const NUM_BUCKETS: usize = (SUB + 60 * SUB) as usize;

/// Bucket index for a value. Values below `SUB` get exact unit buckets;
/// above, the top `SUB_BITS+1` significant bits pick the slot.
pub fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) - SUB;
    (shift as u64 * SUB + SUB + sub) as usize
}

/// Inclusive lower bound of a bucket — the deterministic representative
/// value reported for quantiles that land in it.
pub fn bucket_low(index: usize) -> u64 {
    let i = index as u64;
    if i < SUB {
        return i;
    }
    let shift = (i - SUB) / SUB;
    let sub = (i - SUB) % SUB;
    (SUB + sub) << shift
}

/// A point-in-time copy of one histogram, in export form: sparse
/// `(bucket index, count)` pairs in ascending index order plus the exact
/// count/sum/max. Two histograms fed the same values snapshot
/// identically, so snapshots are safe to pin byte-for-byte.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub buckets: Vec<(u32, u64)>,
}

impl HistSnapshot {
    /// Value at quantile `q` in `[0, 1]`: the lower bound of the bucket
    /// holding the `ceil(q * count)`-th recorded value, clamped to the
    /// exact max. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_low(idx as usize).min(self.max);
            }
        }
        self.max
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The live histogram: a fixed table of relaxed atomic buckets plus
/// count/sum/max. Recording is two `fetch_add`s, one `fetch_add` on the
/// bucket, and a `fetch_max` — cheap enough for per-packet paths.
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Fold `other` into `self` bucket-wise. Addition commutes, so the
    /// result is independent of merge order — pool workers absorbed in
    /// any order produce the same merged snapshot.
    pub fn merge(&self, other: &Histogram) {
        for (i, b) in other.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        HistSnapshot {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            buckets,
        }
    }

    /// Convenience: quantile over a fresh snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// Every histogram the pipeline maintains, mirroring [`crate::Counter`]:
/// the numeric discriminant indexes the table in `Metrics`, and `ALL`
/// fixes the export order so JSONL journals stay byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hist {
    /// Simulated span latency per Fig. 3 phase (observed automatically
    /// when a span closes; see `Journal::span_end`).
    DetectSimMicros,
    BlindSearchSimMicros,
    PositionProbeSimMicros,
    EvaluateSimMicros,
    DeploySimMicros,
    /// Simulated latency of one pool wave bucket (`SessionPool::run_wave`).
    WaveSimMicros,
    /// Simulated latency of one replay (`Session::replay_schedule`).
    ReplaySimMicros,
    /// Host wall-clock micros per replay. The only non-deterministic
    /// histogram: excluded from JSONL export, consumed by `exp-obs`.
    ReplayHostMicros,
    /// Jobs handled by one worker bucket in one wave.
    WaveOccupancy,
    /// Payload bytes a DPI device had tracked on a flow when the flow was
    /// evicted or flushed (per-flow scan volume).
    FlowBytesScanned,
    /// Blinding rounds spent by one field characterization.
    BlindRounds,
    /// Payload bytes per client packet entering the simulated network.
    InjectBytes,
    /// Simulated micros between consecutive dispatched simulator events.
    StepSimMicros,
    /// Ready-queue depth sampled at each reactor scheduler tick.
    ReadyQueueDepth,
    /// Host wall-clock micros per reactor scheduler tick. Like
    /// [`Hist::ReplayHostMicros`], non-deterministic and excluded from
    /// JSONL export; consumed by `exp-scale`.
    ReactorTickMicros,
}

impl Hist {
    pub const ALL: [Hist; 15] = [
        Hist::DetectSimMicros,
        Hist::BlindSearchSimMicros,
        Hist::PositionProbeSimMicros,
        Hist::EvaluateSimMicros,
        Hist::DeploySimMicros,
        Hist::WaveSimMicros,
        Hist::ReplaySimMicros,
        Hist::ReplayHostMicros,
        Hist::WaveOccupancy,
        Hist::FlowBytesScanned,
        Hist::BlindRounds,
        Hist::InjectBytes,
        Hist::StepSimMicros,
        Hist::ReadyQueueDepth,
        Hist::ReactorTickMicros,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Hist::DetectSimMicros => "detect-sim-micros",
            Hist::BlindSearchSimMicros => "blind-search-sim-micros",
            Hist::PositionProbeSimMicros => "position-probe-sim-micros",
            Hist::EvaluateSimMicros => "evaluate-sim-micros",
            Hist::DeploySimMicros => "deploy-sim-micros",
            Hist::WaveSimMicros => "wave-sim-micros",
            Hist::ReplaySimMicros => "replay-sim-micros",
            Hist::ReplayHostMicros => "replay-host-micros",
            Hist::WaveOccupancy => "wave-occupancy",
            Hist::FlowBytesScanned => "flow-bytes-scanned",
            Hist::BlindRounds => "blind-rounds",
            Hist::InjectBytes => "inject-bytes",
            Hist::StepSimMicros => "step-sim-micros",
            Hist::ReadyQueueDepth => "ready-queue-depth",
            Hist::ReactorTickMicros => "reactor-tick-micros",
        }
    }

    /// The sim-latency histogram a closing span of `phase` feeds.
    pub fn for_phase(phase: Phase) -> Hist {
        match phase {
            Phase::Detect => Hist::DetectSimMicros,
            Phase::BlindSearch => Hist::BlindSearchSimMicros,
            Phase::PositionProbe => Hist::PositionProbeSimMicros,
            Phase::Evaluate => Hist::EvaluateSimMicros,
            Phase::Deploy => Hist::DeploySimMicros,
            Phase::Wave => Hist::WaveSimMicros,
            Phase::Replay => Hist::ReplaySimMicros,
        }
    }

    /// Whether the histogram's values derive only from the seed, the
    /// trace, and the simulation clock. Non-deterministic histograms
    /// (host wall-clock timings) are excluded from JSONL export so
    /// same-seed journals stay byte-identical.
    pub fn is_deterministic(self) -> bool {
        !matches!(self, Hist::ReplayHostMicros | Hist::ReactorTickMicros)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_invertible() {
        let mut last = None;
        for v in [0u64, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX] {
            let idx = bucket_of(v);
            assert!(idx < NUM_BUCKETS, "v={v} idx={idx}");
            assert!(bucket_low(idx) <= v, "low bound exceeds value for {v}");
            if let Some(prev) = last {
                assert!(idx >= prev, "bucket index not monotone at {v}");
            }
            last = Some(idx);
        }
        // Unit buckets below SUB are exact.
        for v in 0..16u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [20u64, 100, 999, 4096, 70_000, 1 << 33] {
            let low = bucket_low(bucket_of(v));
            let err = (v - low) as f64 / v as f64;
            assert!(err < 1.0 / SUB as f64 + 1e-9, "v={v} low={low} err={err}");
        }
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        let p50 = h.quantile(0.50);
        let p99 = h.quantile(0.99);
        assert!((40..=50).contains(&p50), "p50={p50}");
        assert!((90..=100).contains(&p99), "p99={p99}");
        assert_eq!(h.quantile(1.0), 100);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 77, 12_000] {
            a.record(v);
        }
        for v in [9u64, 77, 5] {
            b.record(v);
        }
        let ab = Histogram::new();
        ab.merge(&a);
        ab.merge(&b);
        let ba = Histogram::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.snapshot(), ba.snapshot());
        assert_eq!(ab.count(), 6);
        assert_eq!(ab.max(), 12_000);
    }

    #[test]
    fn snapshot_is_sparse_and_sorted() {
        let h = Histogram::new();
        h.record(1_000_000);
        h.record(2);
        h.record(2);
        let snap = h.snapshot();
        assert_eq!(snap.buckets.len(), 2);
        assert!(snap.buckets[0].0 < snap.buckets[1].0);
        assert_eq!(snap.buckets[0], (bucket_of(2) as u32, 2));
    }

    #[test]
    fn registry_names_are_unique_and_kebab() {
        let mut names: Vec<_> = Hist::ALL.iter().map(|h| h.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Hist::ALL.len());
        for n in names {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '-'), "{n}");
        }
    }

    #[test]
    fn discriminants_match_all_order() {
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
        }
    }

    #[test]
    fn only_host_time_is_nondeterministic() {
        let nondet: Vec<_> = Hist::ALL.iter().filter(|h| !h.is_deterministic()).collect();
        assert_eq!(
            nondet,
            vec![&Hist::ReplayHostMicros, &Hist::ReactorTickMicros]
        );
    }
}
