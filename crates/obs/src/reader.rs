//! Journal reader: the inverse of [`crate::jsonl::to_jsonl`].
//!
//! `obs-query` works on exported journals, not live `Journal` handles,
//! so this module parses a JSONL file back into typed [`Event`]s plus
//! the counter and histogram snapshots. Because the export is total —
//! every field of every `EventKind` is written — the round trip is
//! lossless, and the query engine gets to reuse the same summary and
//! span-tree code the tests run against in-memory journals.

use crate::hist::HistSnapshot;
use crate::journal::{Event, EventKind, Phase};
use crate::jsonl::{parse_object_line, JsonValue};

/// A journal recovered from its JSONL export.
#[derive(Debug, Clone, Default)]
pub struct ParsedJournal {
    pub events: Vec<Event>,
    /// Counter lines in file (= `Counter::ALL`) order.
    pub counters: Vec<(String, u64)>,
    /// Histogram lines in file (= `Hist::ALL`) order.
    pub hists: Vec<(String, HistSnapshot)>,
}

impl ParsedJournal {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

/// Parse a complete JSONL journal. Fails on the first malformed or
/// unrecognized line, with its 1-based line number.
pub fn parse_journal(text: &str) -> Result<ParsedJournal, String> {
    let mut out = ParsedJournal::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        parse_line(line, &mut out).map_err(|e| format!("line {}: {e}", i + 1))?;
    }
    Ok(out)
}

fn parse_line(line: &str, out: &mut ParsedJournal) -> Result<(), String> {
    let fields = parse_object_line(line)?;
    let get = |k: &str| fields.iter().find(|(f, _)| f == k).map(|(_, v)| v);
    let req_u64 = |k: &str| {
        get(k)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("missing or non-numeric \"{k}\""))
    };
    let req_str = |k: &str| {
        get(k)
            .and_then(JsonValue::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing or non-string \"{k}\""))
    };
    let req_bool = |k: &str| {
        get(k)
            .and_then(JsonValue::as_bool)
            .ok_or_else(|| format!("missing or non-bool \"{k}\""))
    };

    let t_us = req_u64("t_us")?;
    let event = req_str("event")?;

    match event.as_str() {
        "counter" => {
            out.counters.push((req_str("name")?, req_u64("value")?));
            return Ok(());
        }
        "hist" => {
            let mut snap = HistSnapshot {
                count: req_u64("count")?,
                sum: req_u64("sum")?,
                max: req_u64("max")?,
                buckets: Vec::new(),
            };
            let Some(JsonValue::Array(items)) = get("buckets") else {
                return Err("missing or non-array \"buckets\"".to_string());
            };
            for item in items {
                let JsonValue::Array(pair) = item else {
                    return Err("histogram bucket is not a pair".to_string());
                };
                match (
                    pair.first().and_then(JsonValue::as_u64),
                    pair.get(1).and_then(JsonValue::as_u64),
                ) {
                    (Some(idx), Some(n)) if pair.len() == 2 => {
                        snap.buckets.push((idx as u32, n));
                    }
                    _ => return Err("histogram bucket is not a [index, count] pair".to_string()),
                }
            }
            out.hists.push((req_str("name")?, snap));
            return Ok(());
        }
        _ => {}
    }

    let phase = match get("phase") {
        Some(JsonValue::String(s)) => {
            Some(Phase::from_name(s).ok_or_else(|| format!("unknown phase \"{s}\""))?)
        }
        Some(JsonValue::Null) | None => None,
        Some(other) => return Err(format!("\"phase\" is not a string: {other:?}")),
    };
    let worker = match get("worker") {
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| "non-numeric \"worker\"".to_string())? as u32,
        ),
        None => None,
    };
    let span_field = match get("span") {
        Some(v) => Some(
            v.as_u64()
                .ok_or_else(|| "non-numeric \"span\"".to_string())?,
        ),
        None => None,
    };

    let span_phase = || phase.ok_or_else(|| format!("span event \"{event}\" carries no phase"));
    let kind = match event.as_str() {
        "span_start" => {
            let parent = match get("parent") {
                Some(JsonValue::Null) | None => None,
                Some(v) => Some(
                    v.as_u64()
                        .ok_or_else(|| "non-numeric \"parent\"".to_string())?,
                ),
            };
            EventKind::SpanStart {
                phase: span_phase()?,
                id: req_u64("id")?,
                parent,
            }
        }
        "span_end" => EventKind::SpanEnd {
            phase: span_phase()?,
            id: req_u64("id")?,
        },
        "session_started" => EventKind::SessionStarted {
            env: req_str("env")?,
            seed: req_u64("seed")?,
            // Absent before the substrate seam (and omitted by the
            // simulator backend since): default to "sim".
            substrate: match get("substrate") {
                Some(v) => v
                    .as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "non-string \"substrate\"".to_string())?,
                None => "sim".to_string(),
            },
        },
        "packet_injected" => EventKind::PacketInjected {
            bytes: req_u64("bytes")?,
        },
        "classifier_verdict" => EventKind::ClassifierVerdict {
            class: req_str("class")?,
            rule_id: req_str("rule_id")?,
        },
        "flow_reset" => EventKind::FlowReset,
        "cache_hit" => EventKind::CacheHit {
            key: req_str("key")?,
        },
        "cache_miss" => EventKind::CacheMiss {
            key: req_str("key")?,
        },
        "technique_tried" => EventKind::TechniqueTried {
            technique: req_str("technique")?,
            evaded: req_bool("evaded")?,
        },
        "replay_finished" => EventKind::ReplayFinished {
            replay: req_u64("replay")?,
            bytes_sent: req_u64("bytes_sent")?,
            server_bytes: req_u64("server_bytes")?,
            blocked: req_bool("blocked")?,
        },
        "rule_swap" => EventKind::RuleSwap {
            device: req_str("device")?,
            rules: req_u64("rules")?,
        },
        "technique_published" => EventKind::TechniquePublished {
            generation: req_u64("generation")?,
            technique: req_str("technique")?,
        },
        "fallback_engaged" => EventKind::FallbackEngaged {
            technique: req_str("technique")?,
        },
        other => return Err(format!("unknown event \"{other}\"")),
    };

    // Span boundaries carry their own id as the span field (the export
    // elides it in favor of "id"); other events carry the enclosing id.
    let span = match &kind {
        EventKind::SpanStart { id, .. } | EventKind::SpanEnd { id, .. } => Some(*id),
        _ => span_field,
    };
    out.events.push(Event {
        t_us,
        phase,
        worker,
        span,
        kind,
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Hist;
    use crate::journal::Journal;
    use crate::jsonl::to_jsonl;
    use crate::metrics::Counter;

    /// Round-trip: export a journal, parse it back, export the parse.
    #[test]
    fn export_parse_roundtrip_is_lossless() {
        let j = Journal::new();
        j.record(
            0,
            EventKind::SessionStarted {
                env: "Testbed".to_string(),
                seed: 7,
                substrate: "sim".to_string(),
            },
        );
        j.span_start(1, Phase::Deploy);
        j.span_start(2, Phase::Replay);
        j.record(3, EventKind::PacketInjected { bytes: 1460 });
        j.record(
            4,
            EventKind::ReplayFinished {
                replay: 1,
                bytes_sent: 1460,
                server_bytes: 200,
                blocked: false,
            },
        );
        j.span_end(5, Phase::Replay);
        j.record(
            6,
            EventKind::ClassifierVerdict {
                class: "video".to_string(),
                rule_id: "host:\"x\"".to_string(),
            },
        );
        j.span_end(7, Phase::Deploy);
        j.metrics.add(Counter::PacketsInjected, 1);
        j.observe(Hist::BlindRounds, 12);

        let text = to_jsonl(&j);
        let parsed = parse_journal(&text).expect("parses");
        assert_eq!(parsed.events, j.events());
        assert_eq!(parsed.counter("packets-injected"), 1);
        assert_eq!(parsed.counter("verdicts"), 0);
        let rounds = parsed.hist("blind-rounds").expect("hist exported");
        assert_eq!(rounds.count, 1);
        assert_eq!(rounds.sum, 12);
        // Per-phase latency hists fed by the closing spans also survive.
        assert!(parsed.hist("replay-sim-micros").is_some());
        assert_eq!(parsed.counters.len(), Counter::ALL.len());
    }

    #[test]
    fn worker_tags_survive() {
        let main = Journal::new();
        let w = Journal::new();
        w.span_start(1, Phase::Evaluate);
        w.span_end(2, Phase::Evaluate);
        main.absorb_worker(3, &w);
        let parsed = parse_journal(&to_jsonl(&main)).unwrap();
        assert_eq!(parsed.events[0].worker, Some(3));
        assert_eq!(parsed.events, main.events());
    }

    #[test]
    fn substrate_tags_roundtrip_and_default_to_sim() {
        // Non-default backends tag the session; the tag survives a parse.
        let j = Journal::new();
        j.record(
            0,
            EventKind::SessionStarted {
                env: "China".to_string(),
                seed: 9,
                substrate: "nft".to_string(),
            },
        );
        let text = to_jsonl(&j);
        assert!(text.contains("\"substrate\":\"nft\""), "{text}");
        let parsed = parse_journal(&text).expect("parses");
        assert_eq!(parsed.events, j.events());

        // Pre-seam journals (no substrate field) parse as the simulator.
        let legacy = "{\"t_us\":0,\"event\":\"session_started\",\"env\":\"Testbed\",\"seed\":7}\n";
        let parsed = parse_journal(legacy).expect("parses");
        assert_eq!(
            parsed.events[0].kind,
            EventKind::SessionStarted {
                env: "Testbed".to_string(),
                seed: 7,
                substrate: "sim".to_string(),
            }
        );
    }

    #[test]
    fn bad_lines_carry_line_numbers() {
        let err = parse_journal("{\"t_us\":0,\"event\":\"flow_reset\"}\nnope\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
        let err = parse_journal("{\"t_us\":0,\"event\":\"mystery\"}\n").unwrap_err();
        assert!(err.contains("unknown event"), "{err}");
    }
}
