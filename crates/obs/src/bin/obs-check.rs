//! Validate a JSONL journal produced by `--trace` / `LIBERATE_TRACE`.
//!
//! Exit codes: 0 valid, 1 invalid journal, 2 usage or I/O error.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = match args.as_slice() {
        [p] => p,
        _ => {
            eprintln!("usage: obs-check <journal.jsonl>");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obs-check: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match liberate_obs::validate_jsonl(&text) {
        Ok(n) => {
            println!("obs-check: {path}: {n} lines ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs-check: {path}: {e}");
            ExitCode::from(1)
        }
    }
}
