//! Query engine over exported JSONL journals.
//!
//! Subcommands:
//!
//! - `summary <j>`            — per-phase span/replay/traffic table
//! - `hist <j> [name]`        — histogram quantile tables
//! - `top <j> [n]`            — the n slowest replays by simulated time
//! - `tree <j>`               — the reconstructed span tree, indented
//! - `critical <j>`           — per root span, the dominant child chain
//! - `folded <j>`             — flamegraph folded stacks (self time)
//! - `filter <j> [--phase p] [--worker w] [--event e]` — raw event lines
//! - `diff <a> <b>`           — counter deltas + histogram-quantile
//!   shifts; exits 1 when the journals drift (the regression primitive
//!   CI gates on)
//! - `bench-history <json> <history.jsonl>` — append a bench result as
//!   one compacted JSONL line
//!
//! Exit codes: 0 ok (diff: no drift), 1 drift or invalid journal,
//! 2 usage or I/O error.

use std::fmt::Write as _;
use std::process::ExitCode;

use liberate_obs::jsonl::{parse_object_line, JsonValue};
use liberate_obs::spantree::{build_span_forest, critical_path, folded_stacks, SpanForest};
use liberate_obs::{parse_journal, phase_summaries, Event, EventKind, ParsedJournal, Phase};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("obs-query: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "summary" => one_journal(rest, |j| Ok(print!("{}", render_summary(j)))),
        "hist" => {
            let (path, name) = match rest {
                [p] => (p, None),
                [p, n] => (p, Some(n.as_str())),
                _ => return Err(usage()),
            };
            let j = load(path)?;
            print!("{}", render_hists(&j, name)?);
            Ok(ExitCode::SUCCESS)
        }
        "top" => {
            let (path, n) = match rest {
                [p] => (p, 10usize),
                [p, n] => (p, n.parse().map_err(|_| format!("bad count {n:?}"))?),
                _ => return Err(usage()),
            };
            let j = load(path)?;
            print!("{}", render_top(&j, n));
            Ok(ExitCode::SUCCESS)
        }
        "tree" => one_journal(rest, |j| {
            Ok(print!("{}", render_tree(&build_span_forest(&j.events))))
        }),
        "critical" => one_journal(rest, |j| {
            Ok(print!("{}", render_critical(&build_span_forest(&j.events))))
        }),
        "folded" => one_journal(rest, |j| {
            for (stack, us) in folded_stacks(&build_span_forest(&j.events)) {
                println!("{stack} {us}");
            }
            Ok(())
        }),
        "filter" => {
            let (path, rest) = rest.split_first().ok_or_else(usage)?;
            let mut phase = None;
            let mut worker = None;
            let mut event = None;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let val = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
                match flag.as_str() {
                    "--phase" => phase = Some(val.clone()),
                    "--worker" => {
                        worker = Some(
                            val.parse::<u64>()
                                .map_err(|_| format!("bad worker {val:?}"))?,
                        )
                    }
                    "--event" => event = Some(val.clone()),
                    _ => return Err(usage()),
                }
            }
            let text = read(path)?;
            print!(
                "{}",
                filter_lines(&text, phase.as_deref(), worker, event.as_deref())?
            );
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let [a, b] = rest else { return Err(usage()) };
            let (ja, jb) = (load(a)?, load(b)?);
            let report = render_diff(&ja, &jb);
            if report.is_empty() {
                println!("obs-query diff: no drift");
                Ok(ExitCode::SUCCESS)
            } else {
                print!("{report}");
                Ok(ExitCode::from(1))
            }
        }
        "bench-history" => {
            let [json, history] = rest else {
                return Err(usage());
            };
            let text = read(json)?;
            let line = compact_json(&text)?;
            // Dedup: CI reruns regenerate identical bench datasets; an
            // exact repeat of (experiment, dataset) would only pad the
            // history with noise, so it is skipped rather than appended.
            let existing = match std::fs::read_to_string(history) {
                Ok(t) => t,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
                Err(e) => return Err(format!("{history}: {e}")),
            };
            if existing.lines().any(|l| l == line) {
                println!(
                    "obs-query: {json} already in {history} (same experiment and dataset); skipped"
                );
                return Ok(ExitCode::SUCCESS);
            }
            let mut out = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(history)
                .map_err(|e| format!("{history}: {e}"))?;
            use std::io::Write as _;
            writeln!(out, "{line}").map_err(|e| format!("{history}: {e}"))?;
            println!("obs-query: appended {json} to {history}");
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(usage()),
    }
}

fn usage() -> String {
    "usage: obs-query <summary|hist|top|tree|critical|folded|filter|diff|bench-history> ..."
        .to_string()
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| {
        if e.kind() == std::io::ErrorKind::NotFound {
            format!("no journal at {path} (check the --trace path that produced it)")
        } else {
            format!("{path}: {e}")
        }
    })
}

fn load(path: &str) -> Result<ParsedJournal, String> {
    parse_journal(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

fn one_journal(
    rest: &[String],
    f: impl FnOnce(&ParsedJournal) -> Result<(), String>,
) -> Result<ExitCode, String> {
    let [path] = rest else { return Err(usage()) };
    f(&load(path)?)?;
    Ok(ExitCode::SUCCESS)
}

fn render_summary(j: &ParsedJournal) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>6} {:>12} {:>8} {:>8} {:>12}",
        "phase", "spans", "sim_us", "replays", "packets", "bytes"
    );
    for row in phase_summaries(&j.events) {
        let _ = writeln!(
            out,
            "{:<16} {:>6} {:>12} {:>8} {:>8} {:>12}",
            row.phase.name(),
            row.spans,
            row.sim_us,
            row.replays,
            row.packets,
            row.bytes
        );
    }
    out
}

fn render_hists(j: &ParsedJournal, only: Option<&str>) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "hist", "count", "p50", "p90", "p99", "max", "mean"
    );
    let mut matched = false;
    for (name, snap) in &j.hists {
        if only.is_some_and(|o| o != name) {
            continue;
        }
        matched = true;
        let _ = writeln!(
            out,
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>12.1}",
            name,
            snap.count,
            snap.quantile(0.50),
            snap.quantile(0.90),
            snap.quantile(0.99),
            snap.max,
            snap.mean()
        );
    }
    if let Some(o) = only {
        if !matched {
            return Err(format!("no histogram named {o:?} in this journal"));
        }
    }
    Ok(out)
}

/// The n slowest replays by simulated duration: replay spans from the
/// forest, tied back to the enclosing Fig. 3 phase via parents. Ties
/// break toward earlier start then lower worker, so output is stable.
fn render_top(j: &ParsedJournal, n: usize) -> String {
    let forest = build_span_forest(&j.events);
    let mut replays: Vec<usize> = (0..forest.nodes.len())
        .filter(|&i| forest.nodes[i].phase == Phase::Replay)
        .collect();
    replays.sort_by_key(|&i| {
        let node = &forest.nodes[i];
        (
            std::cmp::Reverse(node.duration_us()),
            node.start_us,
            node.worker,
        )
    });
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>8} {:>12} {:>12} {:<16}",
        "worker", "span", "start_us", "sim_us", "under"
    );
    for &i in replays.iter().take(n) {
        let node = &forest.nodes[i];
        let under = node
            .parent
            .map(|p| enclosing_major(&forest, p))
            .unwrap_or("-");
        let _ = writeln!(
            out,
            "{:<8} {:>8} {:>12} {:>12} {:<16}",
            node.worker.map_or("main".to_string(), |w| format!("w{w}")),
            node.id,
            node.start_us,
            node.duration_us(),
            under
        );
    }
    out
}

/// Walk ancestors until a non-micro phase names the Fig. 3 step.
fn enclosing_major(forest: &SpanForest, mut idx: usize) -> &'static str {
    loop {
        let node = &forest.nodes[idx];
        if !node.phase.is_micro() {
            return node.phase.name();
        }
        match node.parent {
            Some(p) => idx = p,
            None => return node.phase.name(),
        }
    }
}

fn render_tree(forest: &SpanForest) -> String {
    fn walk(forest: &SpanForest, idx: usize, depth: usize, out: &mut String) {
        let node = &forest.nodes[idx];
        let _ = writeln!(
            out,
            "{:indent$}{} #{}{} [{} .. {}] {} us",
            "",
            node.phase.name(),
            node.id,
            node.worker.map_or(String::new(), |w| format!(" w{w}")),
            node.start_us,
            node.end_us.map_or("?".to_string(), |e| e.to_string()),
            node.duration_us(),
            indent = depth * 2
        );
        for &c in &node.children {
            walk(forest, c, depth + 1, out);
        }
    }
    let mut out = String::new();
    for &r in &forest.roots {
        walk(forest, r, 0, &mut out);
    }
    out
}

fn render_critical(forest: &SpanForest) -> String {
    let mut out = String::new();
    for &root in &forest.roots {
        let path = critical_path(forest, root);
        let total = forest.nodes[root].duration_us();
        let mut chain = String::new();
        for (i, &idx) in path.iter().enumerate() {
            let node = &forest.nodes[idx];
            if i > 0 {
                chain.push_str(" -> ");
            }
            let _ = write!(
                chain,
                "{}#{}{} ({} us)",
                node.phase.name(),
                node.id,
                node.worker.map_or(String::new(), |w| format!("@w{w}")),
                node.duration_us()
            );
        }
        let _ = writeln!(out, "{total:>10} us  {chain}");
    }
    out
}

fn filter_lines(
    text: &str,
    phase: Option<&str>,
    worker: Option<u64>,
    event: Option<&str>,
) -> Result<String, String> {
    let mut out = String::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let fields = parse_object_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let get = |k: &str| fields.iter().find(|(f, _)| f == k).map(|(_, v)| v);
        if let Some(p) = phase {
            if get("phase").and_then(JsonValue::as_str) != Some(p) {
                continue;
            }
        }
        if let Some(w) = worker {
            if get("worker").and_then(JsonValue::as_u64) != Some(w) {
                continue;
            }
        }
        if let Some(e) = event {
            if get("event").and_then(JsonValue::as_str) != Some(e) {
                continue;
            }
        }
        out.push_str(line);
        out.push('\n');
    }
    Ok(out)
}

/// Counter deltas and histogram-quantile shifts between two journals.
/// Empty string means the observable surfaces are identical. Event
/// streams are compared by length and first divergence so a same-seed
/// pair that differs anywhere is still caught.
fn render_diff(a: &ParsedJournal, b: &ParsedJournal) -> String {
    let mut out = String::new();
    let names: Vec<&String> = {
        let mut n: Vec<&String> = a.counters.iter().map(|(k, _)| k).collect();
        for (k, _) in &b.counters {
            if !n.contains(&k) {
                n.push(k);
            }
        }
        n
    };
    for name in names {
        let (va, vb) = (a.counter(name), b.counter(name));
        if va != vb {
            let _ = writeln!(
                out,
                "counter {name}: {va} -> {vb} ({:+})",
                vb as i128 - va as i128
            );
        }
    }

    let hist_names: Vec<&String> = {
        let mut n: Vec<&String> = a.hists.iter().map(|(k, _)| k).collect();
        for (k, _) in &b.hists {
            if !n.contains(&k) {
                n.push(k);
            }
        }
        n
    };
    let empty = liberate_obs::HistSnapshot::default();
    for name in hist_names {
        let ha = a.hist(name).unwrap_or(&empty);
        let hb = b.hist(name).unwrap_or(&empty);
        if ha == hb {
            continue;
        }
        let _ = writeln!(out, "hist {name}:");
        let _ = writeln!(out, "  count: {} -> {}", ha.count, hb.count);
        for (label, q) in [("p50", 0.50), ("p90", 0.90), ("p99", 0.99)] {
            let (qa, qb) = (ha.quantile(q), hb.quantile(q));
            if qa != qb {
                let _ = writeln!(out, "  {label}: {qa} -> {qb}");
            }
        }
        if ha.max != hb.max {
            let _ = writeln!(out, "  max: {} -> {}", ha.max, hb.max);
        }
    }

    if a.events.len() != b.events.len() {
        let _ = writeln!(
            out,
            "events: {} -> {} lines",
            a.events.len(),
            b.events.len()
        );
    } else if let Some(i) = (0..a.events.len()).find(|&i| a.events[i] != b.events[i]) {
        let _ = writeln!(out, "events: first divergence at index {i}");
        let _ = writeln!(out, "  a: {}", describe(&a.events[i]));
        let _ = writeln!(out, "  b: {}", describe(&b.events[i]));
    }
    out
}

fn describe(ev: &Event) -> String {
    format!(
        "t_us={} phase={} event={}{}",
        ev.t_us,
        ev.phase.map_or("null", Phase::name),
        ev.kind.name(),
        match &ev.kind {
            EventKind::SpanStart { id, .. } | EventKind::SpanEnd { id, .. } => format!(" id={id}"),
            _ => String::new(),
        }
    )
}

/// Strip insignificant whitespace from a JSON document so it fits on one
/// JSONL line. String-aware: whitespace inside string literals (and
/// escaped quotes) survives untouched.
fn compact_json(text: &str) -> Result<String, String> {
    let mut out = String::with_capacity(text.len());
    let mut in_string = false;
    let mut escaped = false;
    for ch in text.chars() {
        if in_string {
            out.push(ch);
            if escaped {
                escaped = false;
            } else if ch == '\\' {
                escaped = true;
            } else if ch == '"' {
                in_string = false;
            }
            continue;
        }
        match ch {
            '"' => {
                in_string = true;
                out.push(ch);
            }
            c if c.is_whitespace() => {}
            c => out.push(c),
        }
    }
    if in_string {
        return Err("unterminated string in JSON document".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberate_obs::{to_jsonl, Journal};

    fn sample_text() -> String {
        let j = Journal::new();
        j.span_start(0, Phase::Detect);
        j.span_start(10, Phase::Replay);
        j.record(
            20,
            EventKind::ReplayFinished {
                replay: 1,
                bytes_sent: 100,
                server_bytes: 50,
                blocked: false,
            },
        );
        j.span_end(30, Phase::Replay);
        j.span_end(40, Phase::Detect);
        to_jsonl(&j)
    }

    #[test]
    fn top_ranks_replays_and_names_the_enclosing_phase() {
        let j = parse_journal(&sample_text()).unwrap();
        let out = render_top(&j, 5);
        assert!(out.contains("detect"), "{out}");
        assert!(out.lines().count() == 2, "{out}");
    }

    #[test]
    fn diff_reports_counter_and_hist_drift() {
        let a = parse_journal(&sample_text()).unwrap();
        let mut b = parse_journal(&sample_text()).unwrap();
        assert!(render_diff(&a, &b).is_empty());
        for c in b.counters.iter_mut() {
            if c.0 == "replays-executed" {
                c.1 += 2;
            }
        }
        let report = render_diff(&a, &b);
        assert!(
            report.contains("counter replays-executed: 0 -> 2 (+2)"),
            "{report}"
        );
    }

    #[test]
    fn filter_selects_matching_raw_lines() {
        let text = sample_text();
        let only = filter_lines(&text, Some("replay"), None, Some("span_end")).unwrap();
        assert_eq!(only.lines().count(), 1, "{only}");
        assert!(only.contains("\"event\":\"span_end\""));
    }

    #[test]
    fn compact_json_preserves_strings() {
        let compacted =
            compact_json("{\n  \"name\": \"two  spaces\",\n  \"n\": [1, 2]\n}").unwrap();
        assert_eq!(compacted, "{\"name\":\"two  spaces\",\"n\":[1,2]}");
    }

    /// Re-recording an identical bench dataset must not grow the history:
    /// the (experiment, dataset) line dedups, while a changed dataset for
    /// the same experiment still appends.
    #[test]
    fn bench_history_skips_exact_repeats() {
        let dir = std::env::temp_dir();
        let bench = dir.join(format!("obs-query-bench-{}.json", std::process::id()));
        let history = dir.join(format!("obs-query-hist-{}.jsonl", std::process::id()));
        std::fs::remove_file(&history).ok();
        let args = |b: &std::path::Path| {
            vec![
                "bench-history".to_string(),
                b.display().to_string(),
                history.display().to_string(),
            ]
        };

        std::fs::write(&bench, "{\n  \"experiment\": \"e1\",\n  \"rounds\": 7\n}").unwrap();
        run(&args(&bench)).unwrap();
        run(&args(&bench)).unwrap();
        let text = std::fs::read_to_string(&history).unwrap();
        assert_eq!(text.lines().count(), 1, "exact repeat must dedup: {text}");

        // Same experiment, new dataset: appends.
        std::fs::write(&bench, "{\"experiment\":\"e1\",\"rounds\":8}").unwrap();
        run(&args(&bench)).unwrap();
        let text = std::fs::read_to_string(&history).unwrap();
        assert_eq!(text.lines().count(), 2, "{text}");
        assert!(text.lines().all(|l| l.contains("\"experiment\":\"e1\"")));

        std::fs::remove_file(&bench).ok();
        std::fs::remove_file(&history).ok();
    }

    /// A missing journal path must surface as a one-line error (which
    /// `main` maps to exit 2), never a panic, for every subcommand that
    /// loads a journal.
    #[test]
    fn missing_journal_is_a_friendly_one_line_error() {
        for cmd in ["summary", "hist", "top", "tree", "critical", "folded"] {
            let err = run(&[cmd.to_string(), "/nonexistent/j.jsonl".to_string()])
                .expect_err("missing file must error");
            assert!(err.contains("no journal at /nonexistent/j.jsonl"), "{err}");
            assert_eq!(err.lines().count(), 1, "one line, not a backtrace: {err}");
        }
        let err = run(&[
            "diff".to_string(),
            "/nonexistent/a.jsonl".to_string(),
            "/nonexistent/b.jsonl".to_string(),
        ])
        .expect_err("missing diff inputs must error");
        assert!(err.contains("no journal at"), "{err}");
    }

    /// A journal truncated mid-line (a crashed writer, a partial copy)
    /// must report the offending line number in a single-line error
    /// instead of panicking.
    #[test]
    fn truncated_journal_reports_the_line_and_errors_cleanly() {
        let text = sample_text();
        let cut = &text[..text.len() - 10];
        assert!(!cut.ends_with('\n'), "the cut must land mid-line");
        let path =
            std::env::temp_dir().join(format!("obs-query-trunc-{}.jsonl", std::process::id()));
        std::fs::write(&path, cut).unwrap();
        for cmd in ["summary", "tree", "top"] {
            let err = run(&[cmd.to_string(), path.display().to_string()])
                .expect_err("truncated journal must error");
            let last_line = cut.lines().count();
            assert!(err.contains(&format!("line {last_line}")), "{err}");
            assert_eq!(err.lines().count(), 1, "{err}");
        }
        std::fs::remove_file(&path).ok();
    }
}
