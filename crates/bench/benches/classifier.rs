//! Classifier-throughput benchmarks: packets-per-second through each DPI
//! profile, and raw rule-matching speed.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use liberate_dpi::device::DpiDevice;
use liberate_dpi::profiles;
use liberate_netsim::element::{Effects, PathElement};
use liberate_netsim::time::SimTime;
use liberate_packet::flow::Direction;
use liberate_packet::packet::Packet;
use liberate_packet::tcp::TcpFlags;
use liberate_traces::http::get_request;

fn flow_packets(host: &str, n_data: usize) -> Vec<Vec<u8>> {
    let client = profiles::CLIENT_ADDR;
    let server = profiles::SERVER_ADDR;
    let mut out = Vec::new();
    let syn = Packet::tcp(client, server, 40_000, 80, 1_000, 0, vec![]).with_flags(TcpFlags::SYN);
    out.push(syn.serialize());
    let req = get_request(host, "/v", "bench/1.0");
    let mut seq = 1_001u32;
    out.push(Packet::tcp(client, server, 40_000, 80, seq, 1, req.clone()).serialize());
    seq += req.len() as u32;
    for i in 0..n_data {
        let body = vec![(i % 251) as u8; 1400];
        out.push(Packet::tcp(client, server, 40_000, 80, seq, 1, body).serialize());
        seq += 1400;
    }
    out
}

fn bench_device(c: &mut Criterion) {
    let mut g = c.benchmark_group("classifier/device");
    let configs = vec![
        ("testbed", profiles::testbed_device()),
        ("tmobile", profiles::tmus_device()),
        ("gfc", profiles::gfc_device(0)),
        ("iran", profiles::iran_device()),
    ];
    let packets = flow_packets("x.cloudfront.net", 64);
    let bytes: usize = packets.iter().map(Vec::len).sum();
    for (name, config) in configs {
        g.throughput(Throughput::Bytes(bytes as u64));
        g.bench_function(format!("{name}_67pkt_flow"), |b| {
            b.iter(|| {
                let mut dev = DpiDevice::new(config.clone());
                let mut fx = Effects::default();
                for (i, wire) in packets.iter().enumerate() {
                    black_box(dev.process(
                        SimTime::from_micros(i as u64),
                        Direction::ClientToServer,
                        wire.clone(),
                        &mut fx,
                    ));
                }
            })
        });
    }
    g.finish();
}

fn bench_rules(c: &mut Criterion) {
    use liberate_dpi::rules::{MatchRule, RuleSet};
    let rules = RuleSet::new(vec![
        MatchRule::keyword("a", "video", &b"cloudfront.net"[..]),
        MatchRule::keyword("b", "video", &b".googlevideo.com"[..]),
        MatchRule::keyword("c", "music", &b"spotify.com"[..]),
        MatchRule::keyword("d", "blocked", &b"economist.com"[..]),
    ]);
    let hit = get_request("x.cloudfront.net", "/v", "bench/1.0");
    let miss = get_request("benign.example.net", "/v", "bench/1.0");
    let mut g = c.benchmark_group("classifier/rules");
    g.throughput(Throughput::Bytes(hit.len() as u64));
    g.bench_function("first_match_hit", |b| {
        b.iter(|| {
            black_box(rules.first_match(black_box(&hit), Direction::ClientToServer, 80, Some(0)))
        })
    });
    g.bench_function("first_match_miss", |b| {
        b.iter(|| {
            black_box(rules.first_match(black_box(&miss), Direction::ClientToServer, 80, Some(0)))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_device, bench_rules);
criterion_main!(benches);
