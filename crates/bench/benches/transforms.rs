//! Evasion-transform benchmarks: how fast schedules are rewritten — this
//! is the only per-flow work lib·erate adds at deployment time, so it must
//! be negligible next to packet I/O.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use liberate::prelude::*;
use liberate_traces::apps;

fn ctx_for(trace: &liberate_traces::recorded::RecordedTrace) -> EvasionContext {
    let payload = &trace.messages[0].payload;
    let pos = liberate_traces::http::find(payload, b"cloudfront.net").unwrap();
    EvasionContext {
        matching_fields: vec![liberate_packet::mutate::ByteRegion::new(0, pos..pos + 14)],
        decoy: decoy_request(),
        middlebox_ttl: 3,
    }
}

fn bench_apply(c: &mut Criterion) {
    let trace = apps::amazon_prime_http(1_000_000);
    let ctx = ctx_for(&trace);
    let schedule = Schedule::from_trace(&trace);
    let mut g = c.benchmark_group("transforms/apply");
    for technique in [
        Technique::InertLowTtl,
        Technique::InertTcpWrongChecksum,
        Technique::TcpSegmentSplit { segments: 5 },
        Technique::TcpSegmentReorder { segments: 2 },
        Technique::IpFragmentSplit { pieces: 2 },
        Technique::TtlRstBeforeMatch,
        Technique::DummyPrefixData { bytes: 1 },
    ] {
        g.bench_function(technique.description(), |b| {
            b.iter(|| black_box(technique.apply(black_box(&schedule), &ctx)))
        });
    }
    g.finish();
}

fn bench_schedule_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("transforms/schedule");
    for mb in [1usize, 10] {
        let trace = apps::amazon_prime_http(mb * 1_000_000);
        g.bench_function(format!("from_trace_{mb}MB"), |b| {
            b.iter(|| black_box(Schedule::from_trace(black_box(&trace))))
        });
    }
    g.finish();
}

fn bench_craft(c: &mut Criterion) {
    use liberate_packet::packet::Packet;
    let craft = Craft {
        ttl: Some(3),
        ip_bad_checksum: true,
        tcp_bad_checksum: true,
        ..Craft::default()
    };
    let mut g = c.benchmark_group("transforms/craft");
    g.bench_function("apply_and_serialize", |b| {
        b.iter(|| {
            let mut pkt = Packet::tcp(
                std::net::Ipv4Addr::new(10, 0, 0, 1),
                std::net::Ipv4Addr::new(10, 0, 0, 2),
                40_000,
                80,
                1,
                1,
                vec![0u8; 512],
            );
            craft.apply(&mut pkt);
            black_box(pkt.serialize())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_apply, bench_schedule_build, bench_craft);
criterion_main!(benches);
