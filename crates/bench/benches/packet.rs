//! Micro-benchmarks for the wire-format layer: build, parse, validate,
//! checksum, fragment/reassemble.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use liberate_packet::prelude::*;
use std::net::Ipv4Addr;

fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i % 251) as u8).collect()
}

fn tcp_packet(n: usize) -> Packet {
    Packet::tcp(
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        40000,
        80,
        1000,
        2000,
        payload(n),
    )
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet/serialize");
    for n in [64usize, 1460] {
        g.throughput(Throughput::Bytes(n as u64));
        let pkt = tcp_packet(n);
        g.bench_function(format!("tcp_{n}B"), |b| {
            b.iter(|| black_box(pkt.serialize()))
        });
    }
    g.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet/parse");
    for n in [64usize, 1460] {
        let wire = tcp_packet(n).serialize();
        g.throughput(Throughput::Bytes(wire.len() as u64));
        g.bench_function(format!("tcp_{n}B"), |b| {
            b.iter(|| black_box(ParsedPacket::parse(black_box(&wire))))
        });
    }
    g.finish();
}

fn bench_validate(c: &mut Criterion) {
    let mut g = c.benchmark_group("packet/validate");
    let clean = tcp_packet(1460).serialize();
    g.bench_function("clean_1460B", |b| {
        b.iter(|| black_box(validate_wire(black_box(&clean))))
    });
    let mut bad = tcp_packet(1460);
    bad.tcp_mut().checksum = liberate_packet::checksum::ChecksumSpec::Fixed(7);
    bad.ip.options = vec![IpOption::StreamId(1)];
    let bad = bad.serialize();
    g.bench_function("malformed_1460B", |b| {
        b.iter(|| black_box(validate_wire(black_box(&bad))))
    });
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let data = payload(1460);
    let mut g = c.benchmark_group("packet/checksum");
    g.throughput(Throughput::Bytes(1460));
    g.bench_function("internet_checksum_1460B", |b| {
        b.iter(|| {
            black_box(liberate_packet::checksum::internet_checksum(black_box(
                &data,
            )))
        })
    });
    g.finish();
}

fn bench_fragment(c: &mut Criterion) {
    let wire = tcp_packet(1460).serialize();
    let mut g = c.benchmark_group("packet/fragment");
    g.bench_function("fragment_1460B_into_3", |b| {
        b.iter(|| black_box(fragment_packet(black_box(&wire), 512)))
    });
    let frags = fragment_packet(&wire, 512);
    g.bench_function("reassemble_3_fragments", |b| {
        b.iter(|| {
            let mut r = Reassembler::new(OverlapPolicy::FirstWins);
            let mut done = None;
            for f in &frags {
                done = r.push(f);
            }
            black_box(done)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_parse,
    bench_validate,
    bench_checksum,
    bench_fragment
);
criterion_main!(benches);
