//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! - **Stream vs per-packet matching** in the DPI engine: the cost of a
//!   classifier doing sequence-tracked reassembly vs matching each packet
//!   independently (why real deployments cut corners — the corner-cutting
//!   is what lib·erate exploits).
//! - **Prepend-probe step size**: MTU-sized vs 1-byte probes during
//!   position characterization.
//! - **Planner pruning**: evaluation cost with and without
//!   characterization-informed pruning.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use liberate::prelude::*;
use liberate_dpi::device::DpiDevice;
use liberate_dpi::inspect::{InspectScope, ReassemblyMode};
use liberate_dpi::profiles;
use liberate_netsim::element::{Effects, PathElement};
use liberate_netsim::time::SimTime;
use liberate_packet::flow::Direction;
use liberate_packet::packet::Packet;
use liberate_packet::tcp::TcpFlags;

fn flow(n_data: usize) -> Vec<Vec<u8>> {
    let client = profiles::CLIENT_ADDR;
    let server = profiles::SERVER_ADDR;
    let mut out = Vec::new();
    out.push(
        Packet::tcp(client, server, 40_000, 80, 1_000, 0, vec![])
            .with_flags(TcpFlags::SYN)
            .serialize(),
    );
    let req = liberate_traces::http::get_request("bench.example.net", "/x", "b/1");
    let mut seq = 1_001u32;
    out.push(Packet::tcp(client, server, 40_000, 80, seq, 1, req.clone()).serialize());
    seq += req.len() as u32;
    for i in 0..n_data {
        let body = vec![(i % 251) as u8; 1400];
        out.push(Packet::tcp(client, server, 40_000, 80, seq, 1, body).serialize());
        seq += 1400;
    }
    out
}

/// Ablation 1: per-packet vs full-stream classifier cost.
fn bench_reassembly_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/reassembly_mode");
    let packets = flow(64);
    let bytes: usize = packets.iter().map(Vec::len).sum();
    g.throughput(Throughput::Bytes(bytes as u64));

    let mut per_packet = profiles::iran_device();
    per_packet.inspect.port_whitelist = None;
    per_packet.inspect.scope = InspectScope::AllPackets;

    let mut full_stream = profiles::gfc_device(0);
    full_stream.inspect.reassembly = ReassemblyMode::FullStream {
        gate_prefixes: vec![b"GET ".to_vec()],
        window_bytes: 64 * 1024,
    };

    for (name, config) in [("per_packet", per_packet), ("full_stream", full_stream)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut dev = DpiDevice::new(config.clone());
                let mut fx = Effects::default();
                for (i, wire) in packets.iter().enumerate() {
                    black_box(dev.process(
                        SimTime::from_micros(i as u64),
                        Direction::ClientToServer,
                        wire.clone(),
                        &mut fx,
                    ));
                }
            })
        });
    }
    g.finish();
}

/// Ablation 2: planner with vs without characterization pruning — the
/// evaluation replays needed before a working technique is found against
/// the all-packets Iranian classifier.
fn bench_planner_pruning(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/planner");
    g.sample_size(10);
    let trace = liberate_traces::apps::facebook_http();

    let run = |pruned: bool| {
        let mut s = Session::new(EnvKind::Iran, OsKind::Linux, LiberateConfig::default());
        let payload = &trace.messages[0].payload;
        let pos = liberate_traces::http::find(payload, b"facebook.com").unwrap();
        let ctx = EvasionContext {
            matching_fields: vec![liberate_packet::mutate::ByteRegion::new(0, pos..pos + 12)],
            decoy: decoy_request(),
            middlebox_ttl: 8,
        };
        let inputs = EvaluationInputs {
            signal: Signal::Blocking,
            ctx,
            rotate_server_ports: false,
        };
        let position = PositionProfile {
            prepend_break: if pruned { None } else { Some(1) },
            packet_based: false,
            matches_all_packets: pruned,
        };
        find_working_technique(&mut s, &trace, &position, &inputs)
            .map(|(_, tries)| tries)
            .unwrap_or(0)
    };

    g.bench_function("pruned_all_packets_profile", |b| {
        b.iter(|| black_box(run(true)))
    });
    g.bench_function("unpruned_naive_order", |b| b.iter(|| black_box(run(false))));
    g.finish();
}

/// Ablation 3: prepend-probe step size (MTU vs 1-byte probes).
fn bench_probe_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/prepend_probe");
    g.sample_size(10);
    for (name, bytes) in [("mtu_probes", 1400usize), ("tiny_probes", 1usize)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut s =
                    Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
                let mut trace = liberate_traces::apps::amazon_prime_http(20_000);
                trace.messages.insert(
                    0,
                    liberate_traces::recorded::TraceMessage::client(vec![b'x'; bytes]),
                );
                black_box(s.replay_trace(&trace, &ReplayOpts::default()))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_reassembly_modes,
    bench_planner_pruning,
    bench_probe_step
);
criterion_main!(benches);
