//! End-to-end phase benchmarks: wall-clock cost of running detection,
//! characterization, and localization against the simulated testbed.
//! (The *simulated-network* time those phases consume is the subject of
//! exp-costs; this measures the reproduction's own compute cost.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use liberate::prelude::*;
use liberate_traces::apps;

fn bench_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("phases/detect");
    g.sample_size(20);
    g.bench_function("testbed_prime_50KB", |b| {
        b.iter(|| {
            let mut s = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
            black_box(detect(&mut s, &apps::amazon_prime_http(50_000)))
        })
    });
    g.finish();
}

fn bench_characterization(c: &mut Criterion) {
    let mut g = c.benchmark_group("phases/characterize");
    g.sample_size(10);
    g.bench_function("testbed_prime_20KB", |b| {
        b.iter(|| {
            let mut s = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
            black_box(characterize(
                &mut s,
                &apps::amazon_prime_http(20_000),
                &Signal::Readout,
                &CharacterizeOpts::default(),
            ))
        })
    });
    g.bench_function("gfc_economist", |b| {
        b.iter(|| {
            let mut s = Session::new(EnvKind::Gfc, OsKind::Linux, LiberateConfig::default());
            black_box(characterize(
                &mut s,
                &apps::economist_http(),
                &Signal::Blocking,
                &CharacterizeOpts {
                    rotate_server_ports: true,
                    ..Default::default()
                },
            ))
        })
    });
    g.finish();
}

fn bench_localization(c: &mut Criterion) {
    let mut g = c.benchmark_group("phases/localize");
    g.sample_size(10);
    g.bench_function("gfc_ttl_sweep", |b| {
        b.iter(|| {
            let mut s = Session::new(EnvKind::Gfc, OsKind::Linux, LiberateConfig::default());
            black_box(locate_middlebox(
                &mut s,
                &apps::control_http(),
                &liberate_traces::http::get_request("www.economist.com", "/d", "p"),
                &Signal::Blocking,
            ))
        })
    });
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("phases/replay");
    g.sample_size(20);
    let trace = apps::amazon_prime_http(1_000_000);
    g.bench_function("tmobile_1MB_throttled", |b| {
        b.iter(|| {
            let mut s = Session::new(EnvKind::TMobile, OsKind::Linux, LiberateConfig::default());
            black_box(s.replay_trace(&trace, &ReplayOpts::default()))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_detection,
    bench_characterization,
    bench_localization,
    bench_replay
);
criterion_main!(benches);
