//! Shared `--trace <path>` handling for the `exp-*` binaries: every
//! experiment can dump its observability journal as JSONL and print a
//! per-phase span summary.
//!
//! The path comes from the `--trace <path>` (or `--trace=<path>`)
//! command-line flag, falling back to the `LIBERATE_TRACE` environment
//! variable. When neither is set the journal still records in memory but
//! nothing is written or printed.

use std::sync::Arc;

use liberate::report::{fmt_bytes, TextTable};
use liberate_obs::{phase_summaries, to_jsonl, Journal};

/// The journal dump path requested for this run, if any. The `--trace`
/// argument wins over the `LIBERATE_TRACE` environment variable.
pub fn trace_path() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--trace" {
            return args.next();
        }
        if let Some(p) = a.strip_prefix("--trace=") {
            return Some(p.to_string());
        }
    }
    std::env::var("LIBERATE_TRACE")
        .ok()
        .filter(|s| !s.is_empty())
}

/// Worker-session count requested via `--workers <n>` (or
/// `--workers=<n>`), defaulting to 1 — the sequential, pre-engine path.
/// Values below 1 and unparsable values fall back to 1.
pub fn workers() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--workers" {
            if let Some(v) = args.next() {
                return v.parse().unwrap_or(1).max(1);
            }
        }
        if let Some(v) = a.strip_prefix("--workers=") {
            return v.parse().unwrap_or(1).max(1);
        }
    }
    1
}

/// Render the per-phase span summary (count, simulated duration, replays,
/// packets, bytes) with the same table builder the experiments use.
pub fn render_phase_summary(journal: &Journal) -> String {
    let events = journal.events();
    let mut table = TextTable::new(&["Phase", "Spans", "Sim time", "Replays", "Packets", "Bytes"]);
    for s in phase_summaries(&events) {
        table.row(vec![
            s.phase.name().to_string(),
            format!("{}", s.spans),
            format!("{:.2} s", s.sim_us as f64 / 1e6),
            format!("{}", s.replays),
            format!("{}", s.packets),
            fmt_bytes(s.bytes),
        ]);
    }
    table.render()
}

/// If tracing was requested, write the journal as JSONL to the requested
/// path and print the per-phase summary. Call once at the end of `main`.
pub fn finish(journal: &Arc<Journal>) {
    let Some(path) = trace_path() else {
        return;
    };
    let jsonl = to_jsonl(journal);
    if let Err(e) = std::fs::write(&path, jsonl) {
        eprintln!("trace: cannot write {path}: {e}");
        std::process::exit(2);
    }
    println!(
        "\ntrace: {} journal events written to {path}",
        journal.len()
    );
    println!("{}", render_phase_summary(journal));
}
