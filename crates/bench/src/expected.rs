//! The paper's published results, encoded as ground truth.
//!
//! Table 3 (CC?/RS? per environment plus the per-OS server-response
//! columns) is transcribed row-by-row from the paper; the `table3`
//! experiment and the workspace integration tests compare measurements
//! against it.

use liberate::prelude::{Reach, Technique};

/// One expected (CC?, RS?) cell. `cc: None` is the paper's "—" (the
/// network does not classify this flow).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    pub cc: Option<bool>,
    pub rs: Reach,
}

const fn cell(cc: Option<bool>, rs: Reach) -> Cell {
    Cell { cc, rs }
}
const Y: Option<bool> = Some(true);
const N: Option<bool> = Some(false);
const NA: Option<bool> = None;

/// Expected per-OS behaviour for a server receiving the technique's
/// packets (Table 3's right-hand columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsExpect {
    /// Dropped silently (a ✓ for inert rows).
    Dropped,
    /// Delivered to the application (an × for inert rows; a ✓ for
    /// splitting/reordering rows).
    Delivered,
    /// Delivered truncated to the claimed length (footnote 5).
    DeliveredTruncated,
    /// Answered with a RST (footnote 6).
    RstResponse,
    /// Not applicable (the packet never reaches any server by design).
    NotApplicable,
}

/// One expected Table 3 row: Testbed, T-Mobile, China, Iran cells; the
/// AT&T CC-only column; and the Linux/macOS/Windows columns.
#[derive(Debug, Clone)]
pub struct ExpectedRow {
    pub technique: Technique,
    pub testbed: Cell,
    pub tmobile: Cell,
    pub china: Cell,
    pub iran: Cell,
    pub att_cc: bool,
    pub os: [OsExpect; 3],
}

/// Table 3, in the paper's row order.
pub fn table3() -> Vec<ExpectedRow> {
    use OsExpect::*;
    use Reach::{No, Transformed, Yes};
    use Technique::*;
    let row = |technique: Technique,
               testbed: Cell,
               tmobile: Cell,
               china: Cell,
               iran: Cell,
               os: [OsExpect; 3]| ExpectedRow {
        technique,
        testbed,
        tmobile,
        china,
        iran,
        att_cc: false, // every AT&T cell in Table 3 is ×
        os,
    };
    vec![
        // --- Inert packet insertion ("Dropped by OS?") ---
        row(
            InertLowTtl,
            cell(Y, No),
            cell(Y, No),
            cell(Y, No),
            cell(N, No),
            [NotApplicable, NotApplicable, NotApplicable],
        ),
        row(
            InertIpInvalidVersion,
            cell(N, No),
            cell(N, No),
            cell(N, No),
            cell(N, No),
            [Dropped, Dropped, Dropped],
        ),
        row(
            InertIpInvalidHeaderLength,
            cell(N, No),
            cell(N, No),
            cell(N, No),
            cell(N, No),
            [Dropped, Dropped, Dropped],
        ),
        row(
            InertIpTotalLengthLong,
            cell(Y, No),
            cell(N, No),
            cell(N, No),
            cell(N, No),
            [Dropped, Dropped, Dropped],
        ),
        row(
            InertIpTotalLengthShort,
            cell(N, No),
            cell(N, No),
            cell(N, No),
            cell(N, No),
            [Dropped, Dropped, Dropped],
        ),
        row(
            InertIpWrongProtocol,
            cell(Y, Yes),
            cell(N, Yes),
            cell(N, Yes),
            cell(N, No),
            [Dropped, Dropped, Dropped],
        ),
        row(
            InertIpWrongChecksum,
            cell(Y, No),
            cell(N, No),
            cell(N, No),
            cell(N, No),
            [Dropped, Dropped, Dropped],
        ),
        row(
            InertIpInvalidOptions,
            cell(Y, Yes),
            cell(Y, No),
            cell(N, No),
            cell(N, No),
            [Delivered, Delivered, Dropped],
        ),
        row(
            InertIpDeprecatedOptions,
            cell(Y, Yes),
            cell(Y, No),
            cell(N, No),
            cell(N, No),
            [Delivered, Delivered, Delivered],
        ),
        row(
            InertTcpWrongSeq,
            cell(Y, Yes),
            cell(N, No),
            cell(N, Yes),
            cell(N, No),
            [Dropped, Dropped, Dropped],
        ),
        row(
            InertTcpWrongChecksum,
            cell(Y, Yes),
            cell(N, No),
            cell(Y, Transformed),
            cell(N, No),
            [Dropped, Dropped, Dropped],
        ),
        row(
            InertTcpNoAckFlag,
            cell(Y, No),
            cell(N, No),
            cell(Y, Yes),
            cell(N, No),
            [Dropped, Dropped, Dropped],
        ),
        row(
            InertTcpInvalidDataOffset,
            cell(N, Yes),
            cell(N, No),
            cell(N, Yes),
            cell(N, No),
            [Dropped, Dropped, Dropped],
        ),
        row(
            InertTcpInvalidFlags,
            cell(Y, Yes),
            cell(N, No),
            cell(N, Yes),
            cell(N, No),
            [Dropped, Dropped, RstResponse],
        ),
        row(
            InertUdpBadChecksum,
            cell(Y, Yes),
            cell(NA, No),
            cell(NA, Yes),
            cell(NA, Yes),
            [Dropped, Dropped, Dropped],
        ),
        row(
            InertUdpLengthLong,
            cell(Y, Yes),
            cell(NA, No),
            cell(NA, No),
            cell(NA, Yes),
            [Dropped, Dropped, Dropped],
        ),
        row(
            InertUdpLengthShort,
            cell(Y, Yes),
            cell(NA, No),
            cell(NA, No),
            cell(NA, Yes),
            [DeliveredTruncated, Dropped, Dropped],
        ),
        // --- Payload splitting ("Delivered by OS?") ---
        row(
            IpFragmentSplit { pieces: 2 },
            cell(Y, Transformed),
            cell(N, Transformed),
            cell(N, Transformed),
            cell(N, No),
            [Delivered, Delivered, Delivered],
        ),
        row(
            TcpSegmentSplit { segments: 2 },
            cell(Y, Yes),
            cell(Y, Yes),
            cell(N, Yes),
            cell(Y, Yes),
            [Delivered, Delivered, Delivered],
        ),
        // --- Payload reordering ---
        row(
            IpFragmentReorder { pieces: 2 },
            cell(Y, Transformed),
            cell(N, Transformed),
            cell(N, Transformed),
            cell(N, No),
            [Delivered, Delivered, Delivered],
        ),
        row(
            TcpSegmentReorder { segments: 2 },
            cell(Y, Yes),
            cell(Y, Yes),
            cell(N, Yes),
            cell(Y, Yes),
            [Delivered, Delivered, Delivered],
        ),
        row(
            UdpReorder,
            cell(Y, Yes),
            cell(NA, Yes),
            cell(NA, Yes),
            cell(NA, Yes),
            [Delivered, Delivered, Delivered],
        ),
        // --- Classification flushing ---
        row(
            PauseAfterMatch(std::time::Duration::from_secs(130)),
            cell(Y, Yes),
            cell(N, Yes),
            cell(N, Yes),
            cell(N, Yes),
            [Delivered, Delivered, Delivered],
        ),
        row(
            PauseBeforeMatch(std::time::Duration::from_secs(130)),
            cell(Y, Yes),
            cell(N, Yes),
            cell(Y, Yes),
            cell(N, Yes),
            [Delivered, Delivered, Delivered],
        ),
        row(
            TtlRstAfterMatch,
            cell(Y, No),
            cell(Y, No),
            cell(N, No),
            cell(N, No),
            [Dropped, Dropped, Dropped],
        ),
        row(
            TtlRstBeforeMatch,
            cell(Y, No),
            cell(Y, No),
            cell(Y, No),
            cell(N, No),
            [Dropped, Dropped, Dropped],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_table_covers_all_rows_in_order() {
        let expected = table3();
        let rows = Technique::table3_rows();
        assert_eq!(expected.len(), rows.len());
        for (e, t) in expected.iter().zip(&rows) {
            assert_eq!(&e.technique, t, "row order must match the paper");
        }
    }

    #[test]
    fn headline_counts_match_paper_narrative() {
        let expected = table3();
        // "Except for AT&T and Iran, all middleboxes are vulnerable to
        // misclassification using TTL-limited traffic."
        let ttl = &expected[0];
        assert_eq!(ttl.testbed.cc, Some(true));
        assert_eq!(ttl.tmobile.cc, Some(true));
        assert_eq!(ttl.china.cc, Some(true));
        assert_eq!(ttl.iran.cc, Some(false));
        assert!(!ttl.att_cc);

        // Iran evades only via TCP segmentation (split or reorder).
        let iran_wins: Vec<_> = expected
            .iter()
            .filter(|r| r.iran.cc == Some(true))
            .map(|r| r.technique.clone())
            .collect();
        assert_eq!(iran_wins.len(), 2, "{iran_wins:?}");

        // T-Mobile: exactly 3 inert insertions work (TTL + two options
        // rows), plus segmentation, reordering, and both RST flushes.
        let tm_wins = expected
            .iter()
            .filter(|r| r.tmobile.cc == Some(true))
            .count();
        assert_eq!(tm_wins, 7);

        // AT&T: nothing works.
        assert!(expected.iter().all(|r| !r.att_cc));
    }
}
