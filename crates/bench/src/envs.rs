//! Per-environment experiment setup: which traces to test, which signal
//! observes classification, and whether server ports must rotate.

use liberate::prelude::*;
use liberate_packet::mutate::ByteRegion;
use liberate_traces::apps;
use liberate_traces::recorded::RecordedTrace;

/// Experiment wiring for one of §6's environments.
pub struct EnvSpec {
    pub kind: EnvKind,
    /// TCP application trace that the environment classifies.
    pub tcp_trace: RecordedTrace,
    /// UDP application trace (classified only by the testbed).
    pub udp_trace: RecordedTrace,
    /// Server-port rotation needed (GFC penalties, §6.5).
    pub rotate_server_ports: bool,
}

impl EnvSpec {
    /// The setup used for the Table 3 matrix.
    pub fn for_table3(kind: EnvKind) -> EnvSpec {
        let tcp_trace = match kind {
            EnvKind::Testbed => apps::amazon_prime_http(300_000),
            EnvKind::TMobile => apps::amazon_prime_http(400_000),
            EnvKind::Gfc => apps::economist_http(),
            EnvKind::Iran => apps::facebook_http(),
            EnvKind::Att | EnvKind::Sprint => apps::nbcsports_http(400_000),
        };
        EnvSpec {
            kind,
            tcp_trace,
            udp_trace: apps::skype_stun(16),
            rotate_server_ports: kind == EnvKind::Gfc,
        }
    }

    /// A fresh session against this environment.
    pub fn session(&self) -> Session {
        Session::with_start_time(
            self.kind,
            OsKind::Linux,
            LiberateConfig::default(),
            // 10:00 local: a "normal" load hour for the GFC model, where
            // the paper's Table 3 pause row behaves as published.
            10 * 3600,
        )
    }

    /// The classification signal for this environment (per §6's case
    /// studies). For AT&T a throttling baseline is measured first.
    pub fn signal(&self, session: &mut Session) -> Signal {
        match self.kind {
            EnvKind::Testbed => Signal::Readout,
            EnvKind::TMobile => Signal::ZeroRating,
            EnvKind::Gfc | EnvKind::Iran => Signal::Blocking,
            EnvKind::Att | EnvKind::Sprint => {
                let control = inverted_trace(&self.tcp_trace);
                let out = session.replay_trace(&control, &ReplayOpts::default());
                Signal::Throttling {
                    control_bps: out.avg_bps,
                    ratio: session.config.throttle_ratio,
                }
            }
        }
    }
}

/// The matching fields of a trace, located from its known content (the
/// Table 3 matrix assumes characterization already ran; the exp-*
/// binaries demonstrate the discovery itself).
pub fn known_fields(trace: &RecordedTrace) -> Vec<ByteRegion> {
    const KEYWORDS: &[&[u8]] = &[
        b"cloudfront.net",
        b".googlevideo.com",
        b"espncdn.com",
        b"nbcsports.com",
        b"spotify.com",
        b"economist.com",
        b"facebook.com",
        &[0x80, 0x55],
    ];
    let mut regions = Vec::new();
    let mut ordinal = 0usize;
    for msg in &trace.messages {
        if msg.sender != liberate_traces::recorded::Sender::Client {
            continue;
        }
        for kw in KEYWORDS {
            if let Some(pos) = liberate_traces::http::find(&msg.payload, kw) {
                regions.push(ByteRegion::new(ordinal, pos..pos + kw.len()));
            }
        }
        ordinal += 1;
    }
    regions
}

/// A decoy datagram for UDP inert techniques: a STUN binding request
/// carrying the capture marker but not the Skype attribute.
pub fn udp_decoy() -> Vec<u8> {
    liberate_traces::stun::StunMessage::binding_request(0x11)
        .with_attribute(
            liberate_traces::stun::ATTR_SOFTWARE,
            &b"/liberate-decoy"[..],
        )
        .encode()
}

/// The evasion context for a trace in an environment.
pub fn context_for(session: &Session, trace: &RecordedTrace) -> EvasionContext {
    let decoy = match trace.protocol {
        liberate_traces::recorded::TraceProtocol::Tcp => decoy_request(),
        liberate_traces::recorded::TraceProtocol::Udp => udp_decoy(),
    };
    EvasionContext {
        matching_fields: known_fields(trace),
        decoy,
        middlebox_ttl: session.env.hops_before_middlebox + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fields_locate_keywords() {
        let f = known_fields(&apps::economist_http());
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].packet, 0);

        let f = known_fields(&apps::skype_stun(4));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].range.len(), 2);
    }

    #[test]
    fn udp_decoy_has_marker_and_gate_prefix() {
        let d = udp_decoy();
        assert_eq!(&d[0..2], &[0x00, 0x01]);
        assert!(d.windows(DECOY_MARKER.len()).any(|w| w == DECOY_MARKER));
        // Must not carry the Skype matching field.
        assert!(!d.windows(2).any(|w| w == [0x80, 0x55]));
    }

    #[test]
    fn specs_build_sessions() {
        for kind in EnvKind::TABLE3 {
            let spec = EnvSpec::for_table3(kind);
            let mut s = spec.session();
            let _ = spec.signal(&mut s);
        }
    }
}
