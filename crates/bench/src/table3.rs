//! The Table 3 experiment: every technique × every environment,
//! measuring CC? and RS? exactly as the paper does and diffing against
//! the published matrix.

use liberate::prelude::*;

use crate::envs::{context_for, EnvSpec};
use crate::expected::{table3 as expected_table3, Cell, ExpectedRow};

/// One measured Table 3 row.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    pub technique: Technique,
    pub testbed: Cell,
    pub tmobile: Cell,
    pub china: Cell,
    pub iran: Cell,
    pub att_cc: bool,
    /// The effective parameterization per environment (split escalation),
    /// for the detail printout.
    pub effective: Vec<(EnvKind, Technique)>,
}

/// Measure all Table 3 cells for one environment. Returns cells in the
/// paper's row order.
fn measure_env(kind: EnvKind) -> Vec<(Cell, Technique)> {
    let spec = EnvSpec::for_table3(kind);
    let mut session = spec.session();
    let signal = spec.signal(&mut session);

    // Baselines: is each trace classified at all here?
    let baseline_of = |session: &mut Session,
                       trace: &liberate_traces::recorded::RecordedTrace,
                       signal: &Signal| {
        let opts = if spec.rotate_server_ports {
            ReplayOpts {
                server_port: Some(9_000 + (session.replays % 1000) as u16),
                ..Default::default()
            }
        } else {
            ReplayOpts::default()
        };
        let (_, classified) = probe(session, trace, &opts, signal);
        classified
    };
    let tcp_baseline = baseline_of(&mut session, &spec.tcp_trace, &signal);
    let udp_baseline = baseline_of(&mut session, &spec.udp_trace, &signal);

    let tcp_ctx = context_for(&session, &spec.tcp_trace);
    let udp_ctx = context_for(&session, &spec.udp_trace);

    let mut out = Vec::new();
    for technique in Technique::table3_rows() {
        let (trace, ctx, baseline) =
            if technique.applicable(liberate_traces::recorded::TraceProtocol::Tcp) {
                (&spec.tcp_trace, &tcp_ctx, tcp_baseline)
            } else {
                (&spec.udp_trace, &udp_ctx, udp_baseline)
            };
        let inputs = EvaluationInputs {
            signal: signal.clone(),
            ctx: ctx.clone(),
            rotate_server_ports: spec.rotate_server_ports,
        };
        let result = evaluate_technique(&mut session, trace, &technique, &inputs, baseline)
            .expect("row techniques apply to their chosen trace");
        out.push((
            Cell {
                cc: result.cc,
                rs: result.rs,
            },
            result.effective,
        ));
    }
    out
}

/// Run the full matrix.
pub fn run_table3() -> Vec<MeasuredRow> {
    let testbed = measure_env(EnvKind::Testbed);
    let tmobile = measure_env(EnvKind::TMobile);
    let china = measure_env(EnvKind::Gfc);
    let iran = measure_env(EnvKind::Iran);
    let att = measure_env(EnvKind::Att);

    Technique::table3_rows()
        .into_iter()
        .enumerate()
        .map(|(i, technique)| MeasuredRow {
            technique,
            testbed: testbed[i].0,
            tmobile: tmobile[i].0,
            china: china[i].0,
            iran: iran[i].0,
            att_cc: att[i].0.cc == Some(true),
            effective: vec![
                (EnvKind::Testbed, testbed[i].1.clone()),
                (EnvKind::TMobile, tmobile[i].1.clone()),
                (EnvKind::Gfc, china[i].1.clone()),
                (EnvKind::Iran, iran[i].1.clone()),
                (EnvKind::Att, att[i].1.clone()),
            ],
        })
        .collect()
}

/// Compare measured rows with the paper's table; returns human-readable
/// mismatch descriptions (empty = full reproduction).
pub fn diff_against_paper(measured: &[MeasuredRow]) -> Vec<String> {
    let expected = expected_table3();
    let mut mismatches = Vec::new();
    for (exp, got) in expected.iter().zip(measured) {
        let mut check = |env: &str, e: &Cell, g: &Cell| {
            if e.cc != g.cc {
                mismatches.push(format!(
                    "{} / {}: CC expected {:?}, measured {:?}",
                    exp.technique.description(),
                    env,
                    e.cc,
                    g.cc
                ));
            }
            if e.rs != g.rs {
                mismatches.push(format!(
                    "{} / {}: RS expected {:?}, measured {:?}",
                    exp.technique.description(),
                    env,
                    e.rs,
                    g.rs
                ));
            }
        };
        check("Testbed", &exp.testbed, &got.testbed);
        check("T-Mobile", &exp.tmobile, &got.tmobile);
        check("China", &exp.china, &got.china);
        check("Iran", &exp.iran, &got.iran);
        if exp.att_cc != got.att_cc {
            mismatches.push(format!(
                "{} / AT&T: CC expected {}, measured {}",
                exp.technique.description(),
                exp.att_cc,
                got.att_cc
            ));
        }
    }
    mismatches
}

/// Render the matrix in the paper's layout.
pub fn render(measured: &[MeasuredRow]) -> String {
    use liberate::report::{mark_bool, mark_cc, mark_reach, TextTable};
    let expected = expected_table3();
    let mut table = TextTable::new(&[
        "Prot.",
        "Technique",
        "Testbed CC",
        "RS",
        "T-Mobile CC",
        "RS",
        "China CC",
        "RS",
        "Iran CC",
        "RS",
        "AT&T",
        "paper?",
    ]);
    for (row, exp) in measured.iter().zip(&expected) {
        let agrees = exp.testbed == row.testbed
            && exp.tmobile == row.tmobile
            && exp.china == row.china
            && exp.iran == row.iran
            && exp.att_cc == row.att_cc;
        table.row(vec![
            row.technique.protocol_row().to_string(),
            row.technique.description(),
            mark_cc(row.testbed.cc).to_string(),
            mark_reach(row.testbed.rs).to_string(),
            mark_cc(row.tmobile.cc).to_string(),
            mark_reach(row.tmobile.rs).to_string(),
            mark_cc(row.china.cc).to_string(),
            mark_reach(row.china.rs).to_string(),
            mark_cc(row.iran.cc).to_string(),
            mark_reach(row.iran.rs).to_string(),
            mark_bool(row.att_cc).to_string(),
            if agrees { "match" } else { "DIFFER" }.to_string(),
        ]);
    }
    table.render()
}

/// Expected row accessor reused by reporting code.
pub fn expected_rows() -> Vec<ExpectedRow> {
    expected_table3()
}

/// Export the measured matrix as a JSON dataset (the paper publishes its
/// tools *and datasets*).
pub fn to_json(measured: &[MeasuredRow]) -> liberate::report::Json {
    use liberate::report::{mark_cc, mark_reach, Json};
    let cell = |c: &Cell| {
        Json::Obj(vec![
            ("cc".into(), Json::s(mark_cc(c.cc))),
            ("rs".into(), Json::s(mark_reach(c.rs))),
        ])
    };
    Json::Obj(vec![
        ("table".into(), Json::s("3")),
        (
            "environments".into(),
            Json::Arr(
                ["Testbed", "T-Mobile", "China", "Iran", "AT&T"]
                    .iter()
                    .map(|e| Json::s(*e))
                    .collect(),
            ),
        ),
        (
            "rows".into(),
            Json::Arr(
                measured
                    .iter()
                    .map(|r| {
                        Json::Obj(vec![
                            ("protocol".into(), Json::s(r.technique.protocol_row())),
                            ("technique".into(), Json::s(r.technique.description())),
                            ("testbed".into(), cell(&r.testbed)),
                            ("tmobile".into(), cell(&r.tmobile)),
                            ("china".into(), cell(&r.china)),
                            ("iran".into(), cell(&r.iran)),
                            ("att_cc".into(), Json::Bool(r.att_cc)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_matrix_reproduces_paper() {
        let measured = run_table3();
        let mismatches = diff_against_paper(&measured);
        assert!(
            mismatches.is_empty(),
            "{} mismatches:\n{}",
            mismatches.len(),
            mismatches.join("\n")
        );
    }
}
