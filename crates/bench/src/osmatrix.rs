//! The per-OS "Server Response" columns of Table 3: for each inert
//! technique, does a Linux/macOS/Windows endpoint drop the crafted packet
//! (enabling unilateral evasion), deliver it (a side effect), or answer
//! with a RST (killing the connection)?
//!
//! Measured on a minimal direct client—server topology (no middlebox, no
//! filters): this isolates endpoint behaviour, exactly like the paper's
//! standalone OS tests.

use std::net::Ipv4Addr;
use std::time::Duration;

use liberate::prelude::*;
use liberate_netsim::network::Network;
use liberate_netsim::os::OsProfile;
use liberate_netsim::server::{ServerHost, SinkApp};
use liberate_packet::packet::{Packet, ParsedPacket};
use liberate_packet::tcp::TcpFlags;
use liberate_traces::recorded::TraceProtocol;

use crate::expected::OsExpect;

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const SERVER: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);
const MARK: &[u8] = b"OSMATRIX-MARKER-PAYLOAD";

/// Measure how `os` handles the packet crafted by `technique`.
pub fn measure(technique: &Technique, os: OsKind) -> OsExpect {
    let server = ServerHost::new(SERVER, OsProfile::new(os), Box::<SinkApp>::default());
    let mut net = Network::new(CLIENT, Vec::new(), server);

    let proto =
        if technique.applicable(TraceProtocol::Udp) && !technique.applicable(TraceProtocol::Tcp) {
            TraceProtocol::Udp
        } else {
            TraceProtocol::Tcp
        };

    // Build the technique's schedule over a one-packet trace, then send
    // only its *crafted* packet on an established connection.
    let mut trace = liberate_traces::recorded::RecordedTrace::new("os", proto, 80);
    trace.push_message(liberate_traces::recorded::TraceMessage::client(MARK));
    let ctx = EvasionContext {
        matching_fields: vec![liberate_packet::mutate::ByteRegion::new(0, 0..MARK.len())],
        decoy: MARK.to_vec(),
        middlebox_ttl: 64, // no middlebox: "TTL-limited" packets still arrive
    };
    let schedule = technique
        .apply(&Schedule::from_trace(&trace), &ctx)
        .expect("technique applies");

    let mut client_isn = 5_000u32;
    let mut server_isn = 0u32;
    if proto == TraceProtocol::Tcp {
        let syn = Packet::tcp(CLIENT, SERVER, 40_000, 80, client_isn, 0, vec![])
            .with_flags(TcpFlags::SYN);
        net.send_from_client(Duration::ZERO, syn.serialize());
        net.run_until_idle();
        let inbox = net.take_client_inbox();
        server_isn = inbox
            .iter()
            .find_map(|(_, w)| ParsedPacket::parse(w)?.tcp().map(|t| t.seq))
            .expect("SYN-ACK");
        client_isn = client_isn.wrapping_add(1);
    }

    // For inert rows, emit only the crafted decoy (the question is what
    // the OS does with *that* packet); for splits/reorders/pauses every
    // packet is part of the technique.
    let inert_only = technique.category() == Category::InertInsertion
        || matches!(
            technique,
            Technique::TtlRstAfterMatch | Technique::TtlRstBeforeMatch
        );
    for step in &schedule.steps {
        if let Step::Packet(p) = step {
            if inert_only && p.counts {
                continue;
            }
            let mut pkt = match proto {
                TraceProtocol::Tcp => Packet::tcp(
                    CLIENT,
                    SERVER,
                    40_000,
                    80,
                    client_isn.wrapping_add(p.offset as u32),
                    server_isn.wrapping_add(1),
                    p.payload.clone(),
                ),
                TraceProtocol::Udp => Packet::udp(CLIENT, SERVER, 40_000, 80, p.payload.clone()),
            };
            p.craft.apply(&mut pkt);
            let wire = pkt.serialize();
            match &p.fragment {
                None => net.send_from_client(Duration::ZERO, wire),
                Some(plan) => {
                    let chunk = ((wire.len() - 20) / plan.pieces.max(1) / 8).max(1) * 8;
                    let mut frags = liberate_packet::fragment::fragment_packet(&wire, chunk);
                    if plan.reverse {
                        frags.reverse();
                    }
                    for f in frags {
                        net.send_from_client(Duration::ZERO, f);
                    }
                }
            }
            net.run_until_idle();
        }
    }
    net.run_until_idle();

    // Judge: did the *crafted* payload reach the application?
    let inbox = net.take_client_inbox();
    let rst = inbox.iter().any(|(_, w)| {
        ParsedPacket::parse(w)
            .and_then(|p| p.tcp().map(|t| t.flags.rst))
            .unwrap_or(false)
    });
    if rst {
        return OsExpect::RstResponse;
    }

    let delivered: Vec<u8> = {
        let sink = net
            .server
            .app_mut()
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<SinkApp>())
            .expect("SinkApp was installed above");
        let mut all = sink.tcp_bytes.clone();
        for d in &sink.datagrams {
            all.extend_from_slice(d);
        }
        all
    };

    let full = delivered.windows(MARK.len()).any(|w| w == MARK);
    if full {
        OsExpect::Delivered
    } else if !delivered.is_empty()
        && MARK.starts_with(&delivered[..delivered.len().min(MARK.len())])
    {
        OsExpect::DeliveredTruncated
    } else {
        OsExpect::Dropped
    }
}

/// Measure the whole OS matrix for the inert rows (the rows where the
/// paper's columns are "Dropped by OS?").
pub fn run_inert_matrix() -> Vec<(Technique, [OsExpect; 3])> {
    Technique::table3_rows()
        .into_iter()
        .filter(|t| t.category() == Category::InertInsertion)
        .map(|t| {
            let cells = [
                measure(&t, OsKind::Linux),
                measure(&t, OsKind::MacOs),
                measure(&t, OsKind::Windows),
            ];
            (t, cells)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_matrix_matches_paper_columns() {
        let expected = crate::expected::table3();
        for (technique, cells) in run_inert_matrix() {
            if technique == Technique::InertLowTtl {
                continue; // reaches no server by design; columns are "—"
            }
            let row = expected
                .iter()
                .find(|r| r.technique == technique)
                .expect("row exists");
            assert_eq!(
                cells, row.os,
                "OS columns for {:?} diverge from the paper",
                technique
            );
        }
    }

    #[test]
    fn split_packets_always_delivered() {
        for t in [
            Technique::TcpSegmentSplit { segments: 2 },
            Technique::TcpSegmentReorder { segments: 2 },
            Technique::IpFragmentSplit { pieces: 2 },
            Technique::IpFragmentReorder { pieces: 2 },
        ] {
            for os in [OsKind::Linux, OsKind::MacOs, OsKind::Windows] {
                assert_eq!(
                    measure(&t, os),
                    OsExpect::Delivered,
                    "{t:?} on {}",
                    os.name()
                );
            }
        }
    }
}
