//! **Pool-backed deployment benchmark**: live-flow throughput at 1/2/4
//! workers and adaptation latency under a scripted mid-deployment rule
//! flip. Writes `results/BENCH_deploy.json`.
//!
//! The script: eight simulated users stream Amazon Prime video through a
//! `DeploymentPool` on the testbed model. After a steady wave, the
//! operator re-classes the decoy "web" rule as "video" (a genuine
//! rule-set swap — the decoy request the low-TTL inert technique leans on
//! suddenly draws the video throttle), burning the published technique.
//! Every user's flow reports the change; the pool re-characterizes ONCE,
//! publishes the refreshed technique generation-stamped, and the recovery
//! wave streams clean again.
//!
//! Metrics (simulated clocks only, so runs are reproducible):
//! - **throughput**: application bytes delivered in the recovery wave
//!   over the wave's wall-clock (max per-worker clock advance — workers
//!   stream concurrently);
//! - **adaptation latency**: wall-clock from the rule flip to the
//!   refreshed technique being published and live (burned flows, change
//!   detection, the shared re-characterization wave, evaluation);
//! - **parity**: the adapted technique must equal what the sequential
//!   `LiberateProxy` re-learns from the same flip, at every worker count,
//!   and a single-user single-worker pool must adapt about as fast as the
//!   sequential proxy (the pool machinery may not tax the change path).
//!
//! Run with: `cargo run --release -p liberate-bench --bin exp-deploy`
//! (`--workers <n>` picks which pool's merged journal `--trace` dumps,
//! default 4.)

use std::sync::Arc;
use std::time::Instant;

use liberate::prelude::*;
use liberate::report::Json;
use liberate_bench::obsflag;
use liberate_dpi::rules::RuleSet;
use liberate_obs::Journal;
use liberate_traces::apps;
use liberate_traces::recorded::RecordedTrace;

const USERS: usize = 8;

/// The scripted classifier change: the decoy "web" rule re-classed as
/// throttled video.
fn flipped_rules(rules: &RuleSet) -> RuleSet {
    let mut rules = rules.clone();
    for r in &mut rules.rules {
        if r.id == "web" {
            r.class = "video".to_string();
        }
    }
    rules
}

fn app_bytes(trace: &RecordedTrace) -> u64 {
    trace.messages.iter().map(|m| m.payload.len() as u64).sum()
}

fn max_clock_us(pool: &mut DeploymentPool) -> u64 {
    pool.pool_mut()
        .sessions()
        .iter()
        .map(|s| s.env.network.clock.as_micros())
        .max()
        .unwrap_or(0)
}

struct RunStats {
    workers: usize,
    throughput_bps: f64,
    adaptation_latency_us: u64,
    recharacterizations: u64,
    host_ms: u64,
}

impl RunStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workers".into(), Json::n(self.workers as f64)),
            (
                "recovery_throughput_bps".into(),
                Json::Num((self.throughput_bps * 10.0).round() / 10.0),
            ),
            (
                "adaptation_latency_us".into(),
                Json::n(self.adaptation_latency_us as f64),
            ),
            (
                "recharacterizations".into(),
                Json::n(self.recharacterizations as f64),
            ),
            ("host_cpu_ms".into(), Json::n(self.host_ms as f64)),
        ])
    }
}

fn main() {
    println!("Benchmark: pool-backed deployment under a scripted rule flip\n");
    let trace = apps::amazon_prime_http(1_200_000);
    let copts = CharacterizeOpts::default();
    let wave_bytes = app_bytes(&trace) * USERS as u64;

    // --- Sequential baseline: one LiberateProxy rides the same flip.
    let session = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
    let mut proxy = LiberateProxy::new(session, copts.clone());
    proxy.run_flow(&trace).expect("sequential initial learn");
    let seq_initial = proxy.active_technique().unwrap().effective.clone();
    let rules = flipped_rules(&proxy.session.env.dpi_mut().unwrap().config.rules);
    let before = proxy.session.env.network.clock.as_micros();
    proxy
        .session
        .env
        .dpi_mut()
        .unwrap()
        .hot_swap_rules(rules.clone());
    let report = proxy.run_flow(&trace).expect("sequential re-learn");
    assert!(report.recharacterized, "the flip must force a re-learn");
    let seq_latency_us = proxy.session.env.network.clock.as_micros() - before;
    let seq_adapted = proxy.active_technique().unwrap().effective.clone();
    println!(
        "sequential proxy: adapts to \"{}\" in {:.1} s simulated",
        seq_adapted.description(),
        seq_latency_us as f64 / 1e6
    );

    // --- Latency parity: a 1-worker, 1-user pool must ride the same flip
    // about as fast as the sequential proxy (same pipeline, plus the
    // pool's publish machinery, which must stay cheap).
    let mut solo = DeploymentPool::new(
        EnvKind::Testbed,
        OsKind::Linux,
        LiberateConfig::default(),
        1,
        copts.clone(),
    );
    solo.run_flows(&trace, 1).expect("solo initial wave");
    let before = max_clock_us(&mut solo);
    solo.hot_swap_rules(&rules);
    let wave = solo.run_flows(&trace, 1).expect("solo flip wave");
    assert!(wave.recharacterized);
    let solo_latency_us = max_clock_us(&mut solo) - before;
    let ratio = solo_latency_us as f64 / seq_latency_us.max(1) as f64;
    println!(
        "1-user pool:      adapts in {:.1} s simulated ({ratio:.2}x the sequential path)",
        solo_latency_us as f64 / 1e6
    );
    assert!(
        (0.5..=1.5).contains(&ratio),
        "pool adaptation latency must track the sequential path: {ratio:.2}x"
    );

    // --- Scaling sweep: USERS users per wave at 1, 2, and 4 workers,
    // through steady -> flip -> recovery.
    let trace_workers = obsflag::workers().max(2).min(4);
    let trace_journal = Arc::new(Journal::new());
    let mut runs = Vec::new();
    for workers in [1usize, 2, 4] {
        let t0 = Instant::now();
        let mut pool = DeploymentPool::new(
            EnvKind::Testbed,
            OsKind::Linux,
            LiberateConfig::default(),
            workers,
            copts.clone(),
        );
        let wave1 = pool.run_flows(&trace, USERS).expect("steady wave");
        assert!(wave1.all_evaded(), "steady wave must stream clean");
        assert_eq!(
            pool.active_technique().unwrap(),
            seq_initial,
            "initial parity at {workers} workers"
        );

        // The flip. Adaptation latency: flip -> refreshed technique live.
        let before = max_clock_us(&mut pool);
        pool.hot_swap_rules(&rules);
        let wave2 = pool.run_flows(&trace, USERS).expect("flip wave");
        let adaptation_latency_us = max_clock_us(&mut pool) - before;
        assert_eq!(wave2.change_signals(), USERS, "every user sees the flip");
        assert!(wave2.recharacterized);
        assert_eq!(
            pool.characterizations, 2,
            "{USERS} change signals, exactly one re-characterization"
        );
        assert_eq!(
            pool.active_technique().unwrap(),
            seq_adapted,
            "adapted parity at {workers} workers"
        );

        // Recovery: throughput of the post-adaptation steady state.
        let before = max_clock_us(&mut pool);
        let wave3 = pool.run_flows(&trace, USERS).expect("recovery wave");
        let recovery_us = max_clock_us(&mut pool) - before;
        assert!(wave3.all_evaded(), "recovery wave must stream clean");
        assert!(!wave3.recharacterized);
        let throughput_bps = wave_bytes as f64 * 8.0 / (recovery_us as f64 / 1e6);

        let host_ms = t0.elapsed().as_millis() as u64;
        println!(
            "{workers} worker(s): recovery {:.2} Mbps aggregate, adaptation {:.1} s simulated, \
{host_ms} ms host CPU",
            throughput_bps / 1e6,
            adaptation_latency_us as f64 / 1e6
        );
        if workers == trace_workers {
            pool.merge_journals_into(&trace_journal);
        }
        runs.push(RunStats {
            workers,
            throughput_bps,
            adaptation_latency_us,
            recharacterizations: pool.characterizations,
            host_ms,
        });
    }

    let one = &runs[0];
    let four = &runs[runs.len() - 1];
    let scaling = four.throughput_bps / one.throughput_bps.max(1.0);
    println!("\nrecovery throughput scaling (4 workers vs 1): {scaling:.2}x");
    assert!(
        scaling >= 1.5,
        "fanning {USERS} users over 4 workers must scale recovery throughput: {scaling:.2}x"
    );

    let dataset = Json::Obj(vec![
        ("experiment".into(), Json::s("pool-deployment-rule-flip")),
        ("trace".into(), Json::s("amazon-prime-http")),
        ("users_per_wave".into(), Json::n(USERS as f64)),
        (
            "clock".into(),
            Json::s("simulated wall-clock (max per-worker clock advance per wave)"),
        ),
        (
            "rule_flip".into(),
            Json::s("testbed 'web' decoy rule re-classed as throttled video"),
        ),
        (
            "sequential_adaptation_latency_us".into(),
            Json::n(seq_latency_us as f64),
        ),
        (
            "solo_pool_adaptation_latency_us".into(),
            Json::n(solo_latency_us as f64),
        ),
        (
            "runs".into(),
            Json::Arr(runs.iter().map(RunStats::to_json).collect()),
        ),
        (
            "throughput_scaling_4v1".into(),
            Json::Num((scaling * 100.0).round() / 100.0),
        ),
    ]);

    let out_dir = std::path::Path::new("results");
    if std::fs::create_dir_all(out_dir).is_ok() {
        let path = out_dir.join("BENCH_deploy.json");
        match std::fs::write(&path, dataset.render() + "\n") {
            Ok(()) => println!("dataset: wrote {}", path.display()),
            Err(e) => eprintln!("dataset: cannot write {}: {e}", path.display()),
        }
    }

    obsflag::finish(&trace_journal);
    println!(
        "\n[ok] one re-characterization per flip, adapted technique matches the \
sequential proxy, recovery throughput scales with workers"
    );
}
