//! **§6.4 — Sprint**: despite marketing "mobile optimized video, music
//! streaming, and gaming", no evidence of DPI or header-space
//! differentiation was found.
//!
//! The paper tested different IP addresses, ports, popular-service
//! traffic, replays to their own servers — original and bit-inverted —
//! and found no pattern in bandwidth allocation.
//!
//! Run with: `cargo run --release -p liberate-bench --bin exp-sprint`

use std::sync::Arc;

use liberate::prelude::*;
use liberate::report::fmt_bps;
use liberate_bench::obsflag;
use liberate_obs::Journal;
use liberate_traces::apps;

fn main() {
    println!("Experiment §6.4: Sprint\n");
    let journal = Arc::new(Journal::new());
    let mut session = Session::new(EnvKind::Sprint, OsKind::Linux, LiberateConfig::default());
    session.attach_journal(journal.clone());

    let cases: Vec<(&str, liberate_traces::recorded::RecordedTrace, Option<u16>)> = vec![
        (
            "Amazon Prime (HTTP, port 80)",
            apps::amazon_prime_http(6_000_000),
            None,
        ),
        (
            "Amazon Prime (port 8080)",
            apps::amazon_prime_http(6_000_000),
            Some(8080),
        ),
        ("YouTube (HTTPS)", apps::youtube_https(6_000_000), None),
        ("Spotify", apps::spotify_http(6_000_000), None),
        ("NBC Sports", apps::nbcsports_http(6_000_000), None),
        (
            "bit-inverted Prime",
            inverted_trace(&apps::amazon_prime_http(6_000_000)),
            None,
        ),
        (
            "random workload",
            liberate_traces::generator::generate(&liberate_traces::generator::WorkloadSpec {
                server_bytes: 6_000_000,
                ..Default::default()
            }),
            None,
        ),
    ];

    let mut rates = Vec::new();
    println!("{:<28} {:>12}", "flow", "avg rate");
    for (name, trace, port) in &cases {
        let out = session.replay_trace(
            trace,
            &ReplayOpts {
                server_port: *port,
                ..Default::default()
            },
        );
        assert!(out.complete, "{name} should transfer fully");
        assert!(!out.blocked());
        println!("{:<28} {:>12}", name, fmt_bps(out.avg_bps));
        rates.push(out.avg_bps);
        session.rest(std::time::Duration::from_secs(5));
    }

    // Detection finds nothing.
    let d = detect(&mut session, &apps::amazon_prime_http(6_000_000));
    assert!(!d.differentiated && !d.content_independent, "{d:?}");

    // No pattern: every flow lands within a tight band of the median.
    let mut sorted = rates.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    for (i, r) in rates.iter().enumerate() {
        assert!(
            (r / median - 1.0).abs() < 0.35,
            "flow {i} deviates: {} vs median {}",
            fmt_bps(*r),
            fmt_bps(median)
        );
    }

    println!(
        "\nno differentiation detected: all flows within ±35% of the median rate,\n\
         independent of content, port, or bit inversion (paper: \"we found no\n\
         pattern to which flows received relatively more or less bandwidth\")"
    );
    obsflag::finish(&journal);
    println!("\n[ok] §6.4 findings reproduce");
}
