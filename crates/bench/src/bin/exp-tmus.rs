//! **§6.2 — T-Mobile US (Binge On / Music Freedom)**: zero-rating
//! detection via the data-usage counter, characterization cost, and the
//! throughput gain from evading the video throttle.
//!
//! Paper's numbers:
//! - 80–95 replay rounds, ~23 minutes, ~18 MB of data, with >= 200 KB per
//!   replay for a reliable counter read;
//! - matching fields: `cloudfront.net` in the Host header,
//!   `.googlevideo.com` in the TLS SNI;
//! - prepending one 1-byte packet changes classification;
//! - UDP (QUIC) is not classified at all;
//! - Amazon Prime replay: **1.48 Mbps** average (**4.8** peak) throttled
//!   vs **4.1 Mbps** average (**11.2** peak) with lib·erate.
//!
//! Run with: `cargo run --release -p liberate-bench --bin exp-tmus`

use std::sync::Arc;

use liberate::prelude::*;
use liberate::report::{fmt_bps, fmt_bytes};
use liberate_bench::obsflag;
use liberate_obs::Journal;
use liberate_traces::apps;

fn main() {
    println!("Experiment §6.2: T-Mobile Binge On\n");
    let journal = Arc::new(Journal::new());
    let mut session = Session::new(EnvKind::TMobile, OsKind::Linux, LiberateConfig::default());
    session.attach_journal(journal.clone());

    // --- Detection: zero-rating shows up on the billed counter.
    let video = apps::amazon_prime_http(400_000);
    let d = detect(&mut session, &video);
    assert!(d.zero_rating && d.differentiated, "{d:?}");
    println!("detection: zero-rating detected via the data-usage counter");

    // --- Characterization cost (HTTP + HTTPS apps).
    let c_http = characterize(
        &mut session,
        &video,
        &Signal::ZeroRating,
        &CharacterizeOpts::default(),
    );
    let c_https = characterize(
        &mut session,
        &apps::youtube_https(400_000),
        &Signal::ZeroRating,
        &CharacterizeOpts::default(),
    );
    let rounds = c_http.rounds + c_https.rounds;
    let data = c_http.data_consumed() + c_https.data_consumed();
    let minutes = (c_http.elapsed + c_https.elapsed).as_secs_f64() / 60.0;
    println!(
        "characterization: {} rounds total, {:.0} min, {} sent",
        rounds,
        minutes,
        fmt_bytes(data)
    );
    let http_fields: String = c_http.fields.iter().map(|f| f.as_text()).collect();
    let https_fields: String = c_https.fields.iter().map(|f| f.as_text()).collect();
    println!("  HTTP fields:  {http_fields}");
    println!("  HTTPS fields: {https_fields}");
    assert!(http_fields.contains("cloudfront.net"));
    assert!(https_fields.contains("googlevideo"));
    assert_eq!(c_http.position.prepend_break, Some(1));
    assert!(c_http.position.packet_based, "1-byte prepend suffices");
    // Paper: 80-95 rounds per application suite; allow headroom since our
    // HTTPS trace also exposes the TLS record prefix as a field.
    assert!(
        (40..=260).contains(&rounds),
        "paper: 80-95 rounds; measured {rounds}"
    );

    // --- UDP is not classified: QUIC sails through.
    let quic = apps::youtube_quic(400_000);
    let (out, classified) = probe(
        &mut session,
        &quic,
        &ReplayOpts::default(),
        &Signal::ZeroRating,
    );
    assert!(out.complete && !classified);
    println!("UDP/QUIC: not classified (YouTube-over-QUIC is neither throttled nor zero-rated)");

    // --- Throughput with and without lib·erate (10 MB Prime Video).
    let big = apps::amazon_prime_http(10_000_000);
    let throttled = session.replay_trace(&big, &ReplayOpts::default());
    assert!(throttled.complete);

    let ctx = EvasionContext {
        matching_fields: c_http.client_field_regions(&video),
        decoy: decoy_request(),
        middlebox_ttl: 3,
    };
    let evaded = session
        .replay_with(
            &big,
            &Technique::TcpSegmentReorder { segments: 2 },
            &ctx,
            &ReplayOpts::default(),
        )
        .expect("applies");
    assert!(evaded.complete);

    println!("\nthroughput (10 MB Amazon Prime Video replay):");
    println!("  paper:    throttled 1.48 Mbps avg / 4.8 peak; evading 4.1 avg / 11.2 peak");
    println!(
        "  measured: throttled {} avg / {} peak; evading {} avg / {} peak",
        fmt_bps(throttled.avg_bps),
        fmt_bps(throttled.peak_bps),
        fmt_bps(evaded.avg_bps),
        fmt_bps(evaded.peak_bps)
    );
    // Shape: evading at least doubles average throughput; peaks exceed
    // the throttle ceiling substantially.
    assert!((1_000_000.0..2_200_000.0).contains(&throttled.avg_bps));
    assert!(evaded.avg_bps > 2.0 * throttled.avg_bps);
    assert!(evaded.peak_bps > 2.0 * throttled.peak_bps);

    obsflag::finish(&journal);
    println!("\n[ok] §6.2 findings reproduce (zero-rating, fields, QUIC, throughput gain)");
}
