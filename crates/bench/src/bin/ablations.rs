//! Ablations for the design choices DESIGN.md calls out — qualitative
//! companions to the timing benches in `benches/ablations.rs`.
//!
//! 1. **Stream vs per-packet matching** (why splitting evades Iran but
//!    not the GFC).
//! 2. **Bit inversion vs randomized payloads** as the detection control
//!    (§5.1: random bytes can accidentally match classification rules —
//!    the reason the paper switched to deterministic inversion).
//! 3. **Planner pruning** (§5.2): evaluation replays spent before success
//!    with and without characterization-informed pruning.
//! 4. **T-Mobile's reassembly window**: the split count needed to evade
//!    as a function of the classifier's window (why the paper saw
//!    "five or more packets").
//!
//! Run with: `cargo run --release -p liberate-bench --bin ablations`

use liberate::prelude::*;
use liberate::report::TextTable;
use liberate_traces::apps;
use rand::Rng;

/// Ablation 1: the same 2-way split against a per-packet matcher (Iran)
/// and a sequence-reassembling matcher (GFC).
fn ablate_reassembly() {
    println!("ablation 1: per-packet vs full-stream matching\n");
    let mut t = TextTable::new(&["classifier", "2-way split evades?"]);

    let mut iran = Session::new(EnvKind::Iran, OsKind::Linux, LiberateConfig::default());
    let trace = apps::facebook_http();
    let pos = liberate_traces::http::find(&trace.messages[0].payload, b"facebook.com").unwrap();
    let ctx = EvasionContext {
        matching_fields: vec![liberate_packet::mutate::ByteRegion::new(0, pos..pos + 12)],
        decoy: decoy_request(),
        middlebox_ttl: 8,
    };
    let out = iran
        .replay_with(
            &trace,
            &Technique::TcpSegmentSplit { segments: 2 },
            &ctx,
            &ReplayOpts::default(),
        )
        .unwrap();
    let iran_evades = !out.blocked() && out.complete;
    t.row(vec!["Iran (per-packet)".into(), format!("{iran_evades}")]);

    let mut gfc = Session::new(EnvKind::Gfc, OsKind::Linux, LiberateConfig::default());
    let trace = apps::economist_http();
    let pos = liberate_traces::http::find(&trace.messages[0].payload, b"economist.com").unwrap();
    let ctx = EvasionContext {
        matching_fields: vec![liberate_packet::mutate::ByteRegion::new(0, pos..pos + 13)],
        decoy: decoy_request(),
        middlebox_ttl: 10,
    };
    let out = gfc
        .replay_with(
            &trace,
            &Technique::TcpSegmentSplit { segments: 2 },
            &ctx,
            &ReplayOpts::default(),
        )
        .unwrap();
    let gfc_evades = !out.blocked() && out.complete;
    t.row(vec!["GFC (full stream)".into(), format!("{gfc_evades}")]);
    println!("{}", t.render());
    assert!(iran_evades && !gfc_evades);
    println!("=> reassembly is the single knob separating the two censors\n");
}

/// Ablation 2: control-payload strategy. Short binary matching fields
/// (like the 2-byte STUN attribute type 0x8055) collide with *random*
/// control bytes at a measurable rate; deterministic bit inversion can
/// never recreate any pattern of the original. This is §5.1's rationale
/// for switching controls: "randomized packet payloads are sometimes
/// accidentally classified as a targeted application."
fn ablate_control_strategy() {
    use rand::SeedableRng;
    println!("ablation 2: bit-inverted vs randomized detection controls\n");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let needle = [0x80u8, 0x55];
    let trials = 2_000;
    let packet_len = 1_400;

    // Randomized controls: how often does the matching field appear by
    // chance in one MTU-sized packet?
    let mut random_hits = 0u32;
    for _ in 0..trials {
        let mut payload = vec![0u8; packet_len];
        rng.fill(&mut payload[..]);
        if payload.windows(2).any(|w| w == needle) {
            random_hits += 1;
        }
    }

    // Inverted controls: inversion deterministically destroys the true
    // matching field (0x8055 becomes 0x7faa), so the packet the rule
    // inspects is guaranteed clean — and identically so on every replay,
    // which is what the binary search needs.
    let skype = apps::skype_stun(8);
    let inverted = inverted_trace(&skype);
    let matching_packet_hit = inverted.messages[0].payload.windows(2).any(|w| w == needle);

    println!(
        "  random {packet_len}B packets containing 0x8055: {random_hits}/{trials} \
         ({:.2}% — expected ~{:.2}%)",
        100.0 * random_hits as f64 / trials as f64,
        100.0 * (packet_len as f64 - 1.0) / 65_536.0
    );
    println!("  inverted matching packet still contains 0x8055: {matching_packet_hit}");
    assert!(random_hits > 0, "random controls collide with short fields");
    assert!(
        !matching_packet_hit,
        "inversion destroys the field deterministically"
    );
    println!(
        "=> a randomized control re-creates this 2-byte field in ~2% of MTU\n\
           packets — and differently on every run, corrupting the binary\n\
           search; inversion removes the true fields deterministically (the\n\
           library falls back to randomization only if a middlebox detects\n\
           inversion, §5.1 footnote 7)\n"
    );
}

/// Ablation 3: planner pruning (§5.2) on the all-packets classifier.
fn ablate_planner() {
    println!("ablation 3: evaluation cost with vs without pruning (Iran)\n");
    let trace = apps::facebook_http();
    let pos = liberate_traces::http::find(&trace.messages[0].payload, b"facebook.com").unwrap();

    let run = |matches_all: bool| -> u64 {
        let mut s = Session::new(EnvKind::Iran, OsKind::Linux, LiberateConfig::default());
        let ctx = EvasionContext {
            matching_fields: vec![liberate_packet::mutate::ByteRegion::new(0, pos..pos + 12)],
            decoy: decoy_request(),
            middlebox_ttl: 8,
        };
        let inputs = EvaluationInputs {
            signal: Signal::Blocking,
            ctx,
            rotate_server_ports: false,
        };
        let position = PositionProfile {
            prepend_break: if matches_all { None } else { Some(1) },
            packet_based: !matches_all,
            matches_all_packets: matches_all,
        };
        find_working_technique(&mut s, &trace, &position, &inputs)
            .map(|(_, tries)| tries)
            .unwrap_or(u64::MAX)
    };

    let pruned = run(true);
    let naive = run(false);
    println!("  pruned plan (splitting first):   {pruned} replays to success");
    println!("  naive plan (inert first):        {naive} replays to success");
    assert!(pruned < naive);
    println!("=> characterization-informed pruning pays for itself immediately\n");
}

/// Ablation 4: split-evasion threshold vs T-Mobile's reassembly window.
fn ablate_tmus_window() {
    println!("ablation 4: in-order split count needed to evade T-Mobile\n");
    let trace = apps::amazon_prime_http(400_000);
    let pos = liberate_traces::http::find(&trace.messages[0].payload, b"cloudfront.net").unwrap();
    let ctx = EvasionContext {
        matching_fields: vec![liberate_packet::mutate::ByteRegion::new(0, pos..pos + 14)],
        decoy: decoy_request(),
        middlebox_ttl: 3,
    };
    let mut t = TextTable::new(&["segments", "evades?"]);
    let mut first_success = None;
    for n in 2..=7usize {
        let mut s = Session::new(EnvKind::TMobile, OsKind::Linux, LiberateConfig::default());
        let billed0 = liberate::detect::read_billed_counter(&mut s);
        let out = s
            .replay_with(
                &trace,
                &Technique::TcpSegmentSplit { segments: n },
                &ctx,
                &ReplayOpts::default(),
            )
            .unwrap();
        let classified =
            liberate::detect::was_classified(&mut s, &Signal::ZeroRating, &out, billed0);
        let evades = !classified && out.complete;
        if evades && first_success.is_none() {
            first_success = Some(n);
        }
        t.row(vec![format!("{n}"), format!("{evades}")]);
    }
    println!("{}", t.render());
    let n = first_success.expect("some split count evades");
    println!(
        "=> in-order splitting first evades at n = {n} (paper §6.2: \"evasion\n\
           requires the payload of the matching packet to be split across five\n\
           or more packets\"); reversing the order works at n = 2.\n"
    );
    assert_eq!(n, 5);
}

fn main() {
    println!("design-choice ablations (see DESIGN.md §6)\n");
    ablate_reassembly();
    ablate_control_strategy();
    ablate_planner();
    ablate_tmus_window();
    println!("[ok] all four ablations reproduce the design rationale");
}
