//! **§5.3 — Performance of lib·erate**: the one-time characterization
//! cost (paper: 10–35 minutes and 300 KB–140 MB depending on the
//! application) versus the negligible steady-state evasion overhead
//! (k < 5 extra packets).
//!
//! Run with: `cargo run --release -p liberate-bench --bin exp-costs`

use std::sync::Arc;

use liberate::prelude::*;
use liberate::report::{fmt_bytes, TextTable};
use liberate_bench::obsflag;
use liberate_obs::Journal;
use liberate_traces::apps;

fn main() {
    println!("Experiment §5.3: lib\u{b7}erate's costs\n");
    let journal = Arc::new(Journal::new());

    // --- One-time characterization cost per application class.
    let mut table = TextTable::new(&["Application (env)", "Rounds", "Sim. time", "Data consumed"]);
    let cases: Vec<(
        &str,
        EnvKind,
        liberate_traces::recorded::RecordedTrace,
        Signal,
        bool,
    )> = vec![
        (
            "Web page (GFC)",
            EnvKind::Gfc,
            apps::economist_http(),
            Signal::Blocking,
            true,
        ),
        (
            "Web page (Iran)",
            EnvKind::Iran,
            apps::facebook_http(),
            Signal::Blocking,
            false,
        ),
        (
            "Video stream (T-Mobile)",
            EnvKind::TMobile,
            apps::amazon_prime_http(2_000_000),
            Signal::ZeroRating,
            false,
        ),
        (
            "Video stream (testbed)",
            EnvKind::Testbed,
            apps::amazon_prime_http(50_000),
            Signal::Readout,
            false,
        ),
    ];
    let mut results = Vec::new();
    for (name, kind, trace, signal, rotate) in cases {
        let mut session = Session::new(kind, OsKind::Linux, LiberateConfig::default());
        session.attach_journal(journal.clone());
        let copts = CharacterizeOpts {
            rotate_server_ports: rotate,
            ..Default::default()
        };
        let c = characterize(&mut session, &trace, &signal, &copts);
        table.row(vec![
            name.to_string(),
            format!("{}", c.rounds),
            format!("{:.1} min", c.elapsed.as_secs_f64() / 60.0),
            fmt_bytes(c.data_consumed()),
        ]);
        results.push((name, c));
    }
    println!("{}", table.render());
    println!(
        "paper: characterization takes 10-35 minutes and 300 KB-140 MB depending\n\
         on the trace; it runs once per classifier rule and its results are cached.\n"
    );
    // Shape: video characterization moves orders of magnitude more data
    // than web-page characterization.
    let web = results
        .iter()
        .find(|(n, _)| n.contains("GFC"))
        .map(|(_, c)| c.data_consumed())
        .unwrap();
    let video = results
        .iter()
        .find(|(n, _)| n.contains("T-Mobile"))
        .map(|(_, c)| c.data_consumed())
        .unwrap();
    assert!(video > 20 * web, "video {video} vs web {web}");

    // --- Steady-state evasion overhead: k extra packets, k < 5 headers.
    let trace = apps::amazon_prime_http(400_000);
    let payload = &trace.messages[0].payload;
    let pos = liberate_traces::http::find(payload, b"cloudfront.net").unwrap();
    let ctx = EvasionContext {
        matching_fields: vec![liberate_packet::mutate::ByteRegion::new(0, pos..pos + 14)],
        decoy: decoy_request(),
        middlebox_ttl: 3,
    };
    let base = Schedule::from_trace(&trace);
    let base_count = base
        .steps
        .iter()
        .filter(|s| matches!(s, Step::Packet(_)))
        .count();

    let mut t2 = TextTable::new(&["Deployed technique", "Extra packets", "Extra bytes"]);
    let mut max_extra = 0i64;
    for technique in [
        Technique::InertLowTtl,
        Technique::TcpSegmentSplit { segments: 5 },
        Technique::TcpSegmentReorder { segments: 2 },
        Technique::TtlRstBeforeMatch,
    ] {
        let transformed = technique.apply(&base, &ctx).unwrap();
        let count = transformed
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Packet(_)))
            .count();
        let extra = count as i64 - base_count as i64;
        max_extra = max_extra.max(extra);
        t2.row(vec![
            technique.description(),
            format!("{extra}"),
            format!("{}", extra.max(0) * 40),
        ]);
    }
    println!("{}", t2.render());
    assert!(max_extra < 5, "\"in practice k is always less than 5\"");
    let overhead = (max_extra.max(0) as f64 * 40.0) / trace.total_bytes() as f64;
    println!(
        "worst-case deployed overhead on this video flow: {:.4}% of bytes",
        overhead * 100.0
    );
    assert!(overhead < 0.005);

    obsflag::finish(&journal);
    println!("\n[ok] §5.3 cost findings reproduce");
}
