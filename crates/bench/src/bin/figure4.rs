//! **Figure 4** — "Successful evasion intervals vary during the day":
//! against the GFC, the minimum pause (inserted before the matching
//! packet) that flushes classifier state depends on the time of day —
//! short during busy hours, impossible during the quiet early morning.
//!
//! Protocol, mirroring §6.5: delays from 10 to 240 seconds, six trials per
//! hour, across two days; report per-slot the minimum successful delay (or
//! failure).
//!
//! Run with: `cargo run --release -p liberate-bench --bin figure4`

use std::time::Duration;

use liberate::prelude::*;
use liberate_traces::apps;

/// Try one pause length at one time of day; true if it evaded. The GFC's
/// eviction threshold carries ±40 % per-flow variance here (the paper:
/// shorter delays "typically work only for a subset of tests", §6.5).
fn pause_evades(start_secs: u64, pause: Duration, trial: u64) -> bool {
    let mut session = Session::with_start_time(
        EnvKind::Gfc,
        OsKind::Linux,
        LiberateConfig::default(),
        start_secs,
    );
    if let Some(dpi) = session.env.dpi_mut() {
        if let Some(model) = dpi.config.resource.as_mut() {
            *model = model.clone().with_jitter(40);
        }
    }
    let trace = apps::economist_http();
    let ctx = EvasionContext::blind(decoy_request(), 10);
    let opts = ReplayOpts {
        // Fresh server port per trial dodges residual penalties.
        server_port: Some(11_000 + (trial % 40_000) as u16),
        ..Default::default()
    };
    let out = session
        .replay_with(&trace, &Technique::PauseBeforeMatch(pause), &ctx, &opts)
        .expect("applies");
    !out.blocked() && out.complete
}

fn main() {
    // The probed delay ladder (§6.5: "delays ranging from 10 to 240
    // seconds").
    let ladder: Vec<u64> = vec![10, 20, 30, 40, 60, 90, 120, 180, 240];
    let trials_per_hour = 6u64;

    println!("Figure 4: minimum successful flush delay vs time of day (GFC)");
    println!("(x = hour of day over two days; '-' = even 240 s failed)\n");
    println!("hour  min-delay(s)  trials-ok/total  load");

    let mut series = Vec::new();
    for day in 0..2u64 {
        for hour in 0..24u64 {
            let mut min_success: Option<u64> = None;
            let mut max_success: Option<u64> = None;
            let mut ok = 0u64;
            for trial in 0..trials_per_hour {
                // Spread trials across the hour.
                let start = day * 86_400 + hour * 3600 + trial * (3600 / trials_per_hour);
                let mut success_at: Option<u64> = None;
                for &delay in &ladder {
                    if pause_evades(start, Duration::from_secs(delay), hour * 100 + trial) {
                        success_at = Some(delay);
                        break;
                    }
                }
                if let Some(d) = success_at {
                    ok += 1;
                    min_success = Some(min_success.map_or(d, |m: u64| m.min(d)));
                    max_success = Some(max_success.map_or(d, |m: u64| m.max(d)));
                }
            }
            let load = match liberate_dpi::resource::load_level_for_hour(hour) {
                liberate_dpi::resource::LoadLevel::Busy => "busy",
                liberate_dpi::resource::LoadLevel::Normal => "normal",
                liberate_dpi::resource::LoadLevel::Quiet => "quiet",
            };
            let cell = match (min_success, max_success) {
                (Some(lo), Some(hi)) if lo != hi => format!("{lo}-{hi}"),
                (Some(lo), _) => format!("{lo}"),
                _ => "-".to_string(),
            };
            println!("d{day} {hour:02}h  {cell:>7}       {ok}/{trials_per_hour}            {load}");
            series.push((day, hour, min_success));
        }
    }

    // Shape assertions mirroring the paper's observations:
    // 1. Busy hours permit shorter delays than normal hours.
    let busy_min = series
        .iter()
        .filter(|(_, h, _)| {
            matches!(
                liberate_dpi::resource::load_level_for_hour(*h),
                liberate_dpi::resource::LoadLevel::Busy
            )
        })
        .filter_map(|(_, _, d)| *d)
        .min()
        .expect("busy hours evade");
    let normal_min = series
        .iter()
        .filter(|(_, h, _)| {
            matches!(
                liberate_dpi::resource::load_level_for_hour(*h),
                liberate_dpi::resource::LoadLevel::Normal
            )
        })
        .filter_map(|(_, _, d)| *d)
        .min()
        .expect("normal hours evade");
    assert!(
        busy_min < normal_min,
        "busy hours should flush faster: busy {busy_min} vs normal {normal_min}"
    );
    // 2. During quiet hours even long delays do not work.
    let quiet_failures = series
        .iter()
        .filter(|(_, h, _)| {
            matches!(
                liberate_dpi::resource::load_level_for_hour(*h),
                liberate_dpi::resource::LoadLevel::Quiet
            )
        })
        .filter(|(_, _, d)| d.is_none())
        .count();
    assert!(quiet_failures > 0, "quiet hours should resist even 240 s");
    // 3. The observed successful range sits in the paper's 40-240 s band
    //    (per-flow variance lets some busy-hour trials succeed earlier).
    assert!((20..=90).contains(&busy_min), "busy_min = {busy_min}");

    println!(
        "\n[ok] shape matches Figure 4: busy-hour minimum {busy_min} s < normal-hour \
         minimum {normal_min} s; quiet hours defeat all delays up to 240 s"
    );
}
