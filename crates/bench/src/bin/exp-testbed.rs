//! **§6.1 — Testbed experiments**: classifier-analysis efficiency and
//! matching fields against the carrier-grade DPI model.
//!
//! Paper's numbers to reproduce (shape, not exact values):
//! - HTTP: at most **70 replay rounds** to identify all matching fields,
//!   under **10 minutes** at ~5 s per round;
//! - Skype/UDP: all matching fields found in the **first six packets**,
//!   with ~**115 replays**; the classifier keys on the STUN
//!   `MS-SERVICE-QUALITY` attribute (0x8055) in the **first client
//!   packet**;
//! - under **2 KB of data per replay round** (testbed readout needs no
//!   long transfers);
//! - matching fields are human-readable hostnames / content types / user
//!   agents.
//!
//! Run with: `cargo run --release -p liberate-bench --bin exp-testbed`

use std::sync::Arc;

use liberate::prelude::*;
use liberate::report::{fmt_bytes, TextTable};
use liberate_bench::obsflag;
use liberate_obs::{phase_summaries, Journal, Phase};
use liberate_traces::apps;

fn characterize_app(
    name: &str,
    trace: &liberate_traces::recorded::RecordedTrace,
    table: &mut TextTable,
    journal: &Arc<Journal>,
    workers: usize,
) -> Characterization {
    let c = if workers <= 1 {
        let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
        session.attach_journal(journal.clone());
        characterize(
            &mut session,
            trace,
            &Signal::Readout,
            &CharacterizeOpts::default(),
        )
    } else {
        // Engine path: a worker pool over one shared sharded flow table,
        // checked probe-for-probe against the sequential reference (which
        // keeps its own private journal so the shared one only accounts
        // for the pool's replays).
        let mut pool = SessionPool::new(
            EnvKind::Testbed,
            OsKind::Linux,
            LiberateConfig::default(),
            workers,
        );
        let c = characterize_parallel(
            &mut pool,
            trace,
            &Signal::Readout,
            &CharacterizeOpts::default(),
        );
        pool.merge_journals_into(journal);

        let mut reference =
            Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
        let r = characterize(
            &mut reference,
            trace,
            &Signal::Readout,
            &CharacterizeOpts::default(),
        );
        assert_eq!(
            c.fields, r.fields,
            "{name}: parallel matching fields must equal sequential"
        );
        assert_eq!(
            c.rounds, r.rounds,
            "{name}: parallel replay count must equal sequential"
        );
        assert_eq!(
            c.position, r.position,
            "{name}: parallel position profile must equal sequential"
        );
        c
    };
    let fields: Vec<String> = c.fields.iter().map(|f| f.as_text()).collect();
    table.row(vec![
        name.to_string(),
        format!("{}", c.rounds),
        format!("{:.1} min", c.elapsed.as_secs_f64() / 60.0),
        fmt_bytes(c.bytes_sent / c.rounds.max(1)),
        fields.join(" | "),
    ]);
    c
}

fn main() {
    let workers = obsflag::workers();
    println!("Experiment §6.1: testbed classifier analysis\n");
    if workers > 1 {
        println!(
            "engine: SessionPool with {workers} worker sessions (sequential parity checked)\n"
        );
    }
    let journal = Arc::new(Journal::new());
    let mut table = TextTable::new(&[
        "Application",
        "Rounds",
        "Time",
        "Data/round",
        "Matching fields found",
    ]);

    // HTTP applications the testbed classifies (Prime Video, Spotify,
    // ESPN).
    let prime = characterize_app(
        "Amazon Prime Video",
        &apps::amazon_prime_http(20_000),
        &mut table,
        &journal,
        workers,
    );
    let spotify = characterize_app(
        "Spotify",
        &apps::spotify_http(20_000),
        &mut table,
        &journal,
        workers,
    );
    let espn = characterize_app(
        "ESPN",
        &apps::espn_http(20_000),
        &mut table,
        &journal,
        workers,
    );

    // UDP: Skype via STUN.
    let skype = characterize_app(
        "Skype (UDP)",
        &apps::skype_stun(8),
        &mut table,
        &journal,
        workers,
    );

    println!("{}", table.render());

    // --- Shape assertions against the paper. ---
    for (name, c, budget) in [
        ("Prime", &prime, 70u64),
        ("Spotify", &spotify, 70),
        ("ESPN", &espn, 70),
    ] {
        assert!(
            c.rounds <= budget + 20,
            "{name}: {} rounds exceeds the paper's ~{budget}",
            c.rounds
        );
        assert!(!c.fields.is_empty());
        // Fields are human-readable text.
        let text: String = c.fields.iter().map(|f| f.as_text()).collect();
        assert!(
            text.contains("cloudfront") || text.contains("spotify") || text.contains("espn"),
            "{name}: fields should be readable hostnames: {text:?}"
        );
        // Classifier anchors on flow start: one prepended packet breaks
        // classification, and the limit is packet-based.
        assert_eq!(c.position.prepend_break, Some(1));
        assert!(c.position.packet_based);
    }

    // Skype: the 0x8055 attribute, inside the first client packet.
    assert!(skype.fields.iter().all(|f| f.message == 0));
    assert!(
        skype.rounds <= 130,
        "Skype rounds {} vs paper's 115",
        skype.rounds
    );

    println!("paper:    HTTP <= 70 rounds, < 10 min, < 2 KB/round; Skype ~115 replays");
    println!(
        "measured: HTTP {} / {} / {} rounds; Skype {} rounds; fields in packet 0 only",
        prime.rounds, spotify.rounds, espn.rounds, skype.rounds
    );

    // --- Journal accounting: the per-phase summary must account for
    // every replay the characterizer reported, exactly.
    let events = journal.events();
    let probe_replays: u64 = phase_summaries(&events)
        .iter()
        .filter(|s| matches!(s.phase, Phase::BlindSearch | Phase::PositionProbe))
        .map(|s| s.replays)
        .sum();
    let reported_rounds = prime.rounds + spotify.rounds + espn.rounds + skype.rounds;
    assert_eq!(
        probe_replays, reported_rounds,
        "journal must account for every characterizer replay"
    );
    println!(
        "journal: {probe_replays} replays in blind-search/position-probe spans \
         == {reported_rounds} characterizer rounds"
    );

    obsflag::finish(&journal);
    println!("\n[ok] §6.1 efficiency and matching-field findings reproduce");
}
