//! **Table 3** — the headline result: effectiveness of every evasion
//! technique against the five classifier environments, with CC? (changes
//! classification), RS? (packets reach the server), and the per-OS server
//! response columns, diffed cell-by-cell against the paper.
//!
//! Run with: `cargo run --release -p liberate-bench --bin table3`

use liberate::report::TextTable;
use liberate_bench::expected::OsExpect;
use liberate_bench::osmatrix::run_inert_matrix;
use liberate_bench::table3::{diff_against_paper, render, run_table3};

fn os_mark(e: OsExpect) -> &'static str {
    match e {
        OsExpect::Dropped => "Y",
        OsExpect::Delivered => ".",
        OsExpect::DeliveredTruncated => "Y5",
        OsExpect::RstResponse => ".6",
        OsExpect::NotApplicable => "-",
    }
}

fn main() {
    println!("Table 3: effectiveness of lib\u{b7}erate's evasion techniques");
    println!("(CC? = changes classification; RS? = reaches server; Y~ = arrives transformed)\n");

    let measured = run_table3();
    println!("{}", render(&measured));

    println!("\nServer response per OS for the inert rows (Y = dropped by the OS):\n");
    let mut t = TextTable::new(&["Technique", "Linux", "macOS", "Windows"]);
    for (technique, cells) in run_inert_matrix() {
        if technique == liberate::prelude::Technique::InertLowTtl {
            t.row(vec![
                technique.description(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        t.row(vec![
            technique.description(),
            os_mark(cells[0]).to_string(),
            os_mark(cells[1]).to_string(),
            os_mark(cells[2]).to_string(),
        ]);
    }
    println!("{}", t.render());

    // Publish the dataset.
    let dataset = liberate_bench::table3::to_json(&measured).render();
    let out_dir = std::path::Path::new("results");
    if std::fs::create_dir_all(out_dir).is_ok() {
        let path = out_dir.join("table3.json");
        if std::fs::write(&path, &dataset).is_ok() {
            println!("dataset written to {}", path.display());
        }
    }

    let mismatches = diff_against_paper(&measured);
    if mismatches.is_empty() {
        println!("[ok] all 26 rows x 5 environments match the paper's Table 3");
    } else {
        println!("{} cell(s) diverge from the paper:", mismatches.len());
        for m in &mismatches {
            println!("  - {m}");
        }
        std::process::exit(1);
    }
}
