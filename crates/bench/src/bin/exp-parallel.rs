//! **Parallel characterization benchmark**: sequential baseline vs
//! `SessionPool` fan-out at 1/2/4 workers over the four §6.1 testbed
//! applications. Writes `results/BENCH_parallel.json`.
//!
//! The primary speedup metric is the **simulated experiment wall-clock**:
//! on a live path, characterization time is dominated by the ~5 s gap
//! between replay rounds (`LiberateConfig::round_gap`), and concurrent
//! probing over disjoint flows genuinely divides that waiting. For a pool
//! run the experiment clock is the maximum final simulation clock across
//! worker sessions (workers advance concurrently from `SimTime::ZERO`);
//! for the sequential baseline it is the sum of the per-app session
//! clocks (one app after another on one vantage point). Host CPU time is
//! reported for reference — the probe work itself is unchanged, the
//! wall-clock win comes from overlapping the gaps.
//!
//! Run with: `cargo run --release -p liberate-bench --bin exp-parallel`

use std::time::Instant;

use liberate::prelude::*;
use liberate::report::Json;
use liberate_traces::apps;
use liberate_traces::recorded::RecordedTrace;

fn testbed_apps() -> Vec<(&'static str, RecordedTrace)> {
    vec![
        ("amazon-prime-http", apps::amazon_prime_http(20_000)),
        ("spotify-http", apps::spotify_http(20_000)),
        ("espn-http", apps::espn_http(20_000)),
        ("skype-stun", apps::skype_stun(8)),
    ]
}

struct RunStats {
    workers: usize,
    sim_us: u64,
    host_ms: u64,
    replays: u64,
}

impl RunStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workers".into(), Json::n(self.workers as f64)),
            (
                "experiment_wall_clock_us".into(),
                Json::n(self.sim_us as f64),
            ),
            ("host_cpu_ms".into(), Json::n(self.host_ms as f64)),
            ("replays".into(), Json::n(self.replays as f64)),
        ])
    }
}

fn main() {
    println!("Benchmark: parallel characterization over a sharded DPI flow table\n");
    let named = testbed_apps();
    let traces: Vec<RecordedTrace> = named.iter().map(|(_, t)| t.clone()).collect();
    let opts = CharacterizeOpts::default();

    // --- Sequential baseline: one solo session per app, back to back on
    // a single vantage point (the pre-engine workflow).
    let t0 = Instant::now();
    let mut seq = RunStats {
        workers: 0,
        sim_us: 0,
        host_ms: 0,
        replays: 0,
    };
    let mut seq_fields = Vec::new();
    for trace in &traces {
        let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
        let c = characterize(&mut session, trace, &Signal::Readout, &opts);
        seq.sim_us += session.env.network.clock.as_micros();
        seq.replays += c.rounds;
        seq_fields.push(c.fields);
    }
    seq.host_ms = t0.elapsed().as_millis() as u64;
    println!(
        "sequential baseline: {} replays, {:.1} min simulated, {} ms host CPU",
        seq.replays,
        seq.sim_us as f64 / 60e6,
        seq.host_ms
    );

    // --- Pool runs: the same four traces batched through the engine at
    // 1, 2, and 4 workers over one shared sharded flow table.
    let mut runs = Vec::new();
    for workers in [1usize, 2, 4] {
        let t0 = Instant::now();
        let mut pool = SessionPool::new(
            EnvKind::Testbed,
            OsKind::Linux,
            LiberateConfig::default(),
            workers,
        );
        let cs = characterize_many(&mut pool, &traces, &Signal::Readout, &opts);
        let host_ms = t0.elapsed().as_millis() as u64;
        let sim_us = pool
            .sessions()
            .iter()
            .map(|s| s.env.network.clock.as_micros())
            .max()
            .unwrap_or(0);
        let replays: u64 = cs.iter().map(|c| c.rounds).sum();

        // Parity: worker count must never change what gets discovered or
        // how many probes it takes.
        for (((name, _), c), fields) in named.iter().zip(&cs).zip(&seq_fields) {
            assert_eq!(
                &c.fields, fields,
                "{name}: matching fields diverge at {workers} workers"
            );
        }
        assert_eq!(
            replays, seq.replays,
            "probe multiset diverges at {workers} workers"
        );

        println!(
            "{workers} worker(s): {replays} replays, {:.1} min simulated, {host_ms} ms host CPU",
            sim_us as f64 / 60e6
        );
        runs.push(RunStats {
            workers,
            sim_us,
            host_ms,
            replays,
        });
    }

    let one = &runs[0];
    let four = &runs[runs.len() - 1];
    let speedup = one.sim_us as f64 / four.sim_us.max(1) as f64;
    println!("\nspeedup (simulated wall-clock, 4 workers vs 1): {speedup:.2}x");
    assert!(
        speedup >= 2.0,
        "expected >= 2x simulated wall-clock speedup at 4 workers, got {speedup:.2}x"
    );

    let dataset = Json::Obj(vec![
        (
            "experiment".into(),
            Json::s("parallel-characterization-testbed"),
        ),
        (
            "traces".into(),
            Json::Arr(named.iter().map(|(n, _)| Json::s(*n)).collect()),
        ),
        (
            "clock".into(),
            Json::s("simulated experiment wall-clock (round gaps dominate live runs)"),
        ),
        ("sequential".into(), seq.to_json()),
        (
            "runs".into(),
            Json::Arr(runs.iter().map(RunStats::to_json).collect()),
        ),
        (
            "speedup_4v1".into(),
            Json::Num((speedup * 100.0).round() / 100.0),
        ),
    ]);

    let out_dir = std::path::Path::new("results");
    if std::fs::create_dir_all(out_dir).is_ok() {
        let path = out_dir.join("BENCH_parallel.json");
        match std::fs::write(&path, dataset.render() + "\n") {
            Ok(()) => println!("dataset: wrote {}", path.display()),
            Err(e) => eprintln!("dataset: cannot write {}: {e}", path.display()),
        }
    }

    println!("\n[ok] parallel engine reproduces sequential results at >= 2x less experiment time");
}
