//! **Table 2** — the high-level evasion techniques and their measured
//! per-flow overheads:
//!
//! | Technique | Paper's overhead |
//! |---|---|
//! | Inert packet insertion | k packets |
//! | Payload splitting | k·40 bytes (+ reassembly) |
//! | Payload reordering | k·40 bytes (+ reassembly) |
//! | Classification flushing | t seconds or 1 packet |
//!
//! This binary applies one representative of each family to a reference
//! flow and measures the actual extra packets, extra bytes, and added
//! latency.
//!
//! Run with: `cargo run -p liberate-bench --bin table2`

use std::time::Duration;

use liberate::prelude::*;
use liberate::report::TextTable;
use liberate_traces::apps;

fn main() {
    let trace = apps::amazon_prime_http(400_000);
    let payload = &trace.messages[0].payload;
    let pos = liberate_traces::http::find(payload, b"cloudfront.net").unwrap();
    let ctx = EvasionContext {
        matching_fields: vec![liberate_packet::mutate::ByteRegion::new(0, pos..pos + 14)],
        decoy: decoy_request(),
        middlebox_ttl: 3,
    };
    let base = Schedule::from_trace(&trace);
    let base_packets = base.data_packet_indices().len();
    let base_bytes: u64 = base.client_bytes();

    println!("Table 2: high-level evasion techniques and measured overheads");
    println!(
        "(reference flow: {} client packets, {} client bytes)\n",
        base_packets, base_bytes
    );

    let families: Vec<(&str, Technique, &str)> = vec![
        (
            "Inert packet insertion",
            Technique::InertLowTtl,
            "k packets",
        ),
        (
            "Payload splitting",
            Technique::TcpSegmentSplit { segments: 5 },
            "k*40 bytes",
        ),
        (
            "Payload reordering",
            Technique::TcpSegmentReorder { segments: 2 },
            "k*40 bytes",
        ),
        (
            "Classification flushing (pause)",
            Technique::PauseBeforeMatch(Duration::from_secs(130)),
            "t seconds",
        ),
        (
            "Classification flushing (inert RST)",
            Technique::TtlRstBeforeMatch,
            "1 packet",
        ),
    ];

    let mut table = TextTable::new(&[
        "Technique",
        "Paper overhead",
        "Extra packets",
        "Extra header bytes",
        "Added latency",
    ]);
    for (name, technique, paper) in &families {
        let transformed = technique.apply(&base, &ctx).expect("applies");
        let extra_packets = (transformed
            .steps
            .iter()
            .filter(|s| matches!(s, Step::Packet(_)))
            .count()) as i64
            - base_packets as i64;
        // Each extra TCP/IP packet costs one 40-byte header.
        let extra_header_bytes = extra_packets.max(0) * 40;
        let latency = transformed.pause_total();
        table.row(vec![
            name.to_string(),
            paper.to_string(),
            format!("{extra_packets}"),
            format!("{extra_header_bytes}"),
            format!("{:.0} s", latency.as_secs_f64()),
        ]);

        // Shape assertions against the paper's Table 2.
        match technique.category() {
            Category::InertInsertion => assert_eq!(extra_packets, 1),
            Category::Splitting | Category::Reordering => {
                assert!(extra_packets >= 1 && extra_packets <= 9);
                assert!(extra_header_bytes <= 9 * 40);
            }
            Category::Flushing => {
                assert!(extra_packets <= 1);
            }
        }
    }
    println!("{}", table.render());
    println!(
        "\n\"In practice, we find that k is always less than 5\" (§5.3): the\n\
         split parameter needed in our environments never exceeded 5, so the\n\
         data overhead on a video stream is a small fraction of a percent:"
    );
    let video_bytes = trace.total_bytes() as f64;
    let overhead_pct = (5.0 * 40.0) / video_bytes * 100.0;
    println!(
        "  5 extra headers on a {:.1} kB stream = {:.4}% overhead",
        video_bytes / 1000.0,
        overhead_pct
    );
    assert!(overhead_pct < 0.5);
    println!("\n[ok] all overhead classes match Table 2");
}
