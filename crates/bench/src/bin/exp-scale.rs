//! **Reactor scale benchmark**: how many concurrent deployed flows one
//! pool can hold in flight. Drives waves of up to 100k+ simultaneous
//! users through a `DeploymentPool` on the event-driven reactor engine
//! (`Engine::Reactor`) at 1/2/4 workers, recording throughput
//! (flows/sec), simulated wall-clock, and peak-RSS-per-flow curves to
//! `results/BENCH_scale.json`.
//!
//! Each user in a wave is a resumable `FlowTask` on its own lane — no OS
//! thread, no session clone — so the marginal cost of a flow is one task
//! slot plus its parked timer, and memory must grow *sub-linearly in
//! aggregate* (fixed pool overhead amortizes) with a bounded per-flow
//! increment. Both are gated here:
//!
//! - every flow in the big wave must complete and report;
//! - marginal peak RSS per flow (VmHWM delta across the wave) must stay
//!   under `--max-bytes-per-flow` (default 64 KiB).
//!
//! Run with: `cargo run --release -p liberate-bench --bin exp-scale`
//! CI runs a reduced count: `exp-scale --flows 20000`.

use std::sync::Arc;
use std::time::Instant;

use liberate::prelude::*;
use liberate::report::Json;
use liberate_obs::{Counter, Journal};
use liberate_traces::recorded::{RecordedTrace, Sender, TraceProtocol};

/// A one-request page fetch the GFC model RST-blocks on its
/// `economist.com` keyword: a crisp Blocking signal over a handful of
/// packets, so a wave's footprint measures the reactor's per-flow cost,
/// not bulk payload transfer (the full `apps::economist_http()` page is
/// 64 KB — two orders of magnitude more wire bytes than the signal
/// needs).
fn blocked_page() -> RecordedTrace {
    let mut t = RecordedTrace::new("economist.com", TraceProtocol::Tcp, 80);
    t.push_stream(
        Sender::Client,
        b"GET /weeklyedition HTTP/1.1\r\nHost: www.economist.com\r\nUser-Agent: Mozilla/5.0\r\nAccept: */*\r\n\r\n",
    );
    let body = vec![b'x'; 1_000];
    let mut response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    response.extend_from_slice(&body);
    t.push_stream(Sender::Server, &response);
    t
}

/// `VmHWM` (peak resident set) in kilobytes, from `/proc/self/status`.
/// `None` off Linux — the memory gates are skipped there.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

struct WaveStats {
    workers: usize,
    flows: usize,
    host_ms: u64,
    flows_per_sec: f64,
    sim_us: u64,
    rss_before_kb: Option<u64>,
    rss_after_kb: Option<u64>,
    bytes_per_flow: Option<u64>,
    tasks_admitted: u64,
    reactor_ticks: u64,
    timer_fires: u64,
}

impl WaveStats {
    fn to_json(&self) -> Json {
        let opt = |v: Option<u64>| v.map_or(Json::Null, |v| Json::n(v as f64));
        Json::Obj(vec![
            ("workers".into(), Json::n(self.workers as f64)),
            ("flows".into(), Json::n(self.flows as f64)),
            ("host_ms".into(), Json::n(self.host_ms as f64)),
            (
                "flows_per_sec".into(),
                Json::Num((self.flows_per_sec * 10.0).round() / 10.0),
            ),
            ("sim_us".into(), Json::n(self.sim_us as f64)),
            ("peak_rss_before_kb".into(), opt(self.rss_before_kb)),
            ("peak_rss_after_kb".into(), opt(self.rss_after_kb)),
            ("bytes_per_flow".into(), opt(self.bytes_per_flow)),
            ("tasks_admitted".into(), Json::n(self.tasks_admitted as f64)),
            ("reactor_ticks".into(), Json::n(self.reactor_ticks as f64)),
            ("timer_fires".into(), Json::n(self.timer_fires as f64)),
        ])
    }
}

/// One deployment wave of `flows` users; journals are off (counters
/// stay live), so the measurement is the reactor, not the tracer.
fn run_wave(
    pool: &mut DeploymentPool,
    trace: &liberate_traces::recorded::RecordedTrace,
    flows: usize,
) -> WaveStats {
    let workers = pool.workers();
    let before = pool
        .pool_mut()
        .reactor_telemetry()
        .metrics
        .get(Counter::ReactorTicks);
    let admitted_before = pool
        .pool_mut()
        .reactor_telemetry()
        .metrics
        .get(Counter::ReactorTasksAdmitted);
    let fires_before = pool
        .pool_mut()
        .reactor_telemetry()
        .metrics
        .get(Counter::ReactorTimerFires);
    let rss_before_kb = peak_rss_kb();

    let t0 = Instant::now();
    let wave = pool.run_flows(trace, flows).expect("deployment wave");
    let host_ms = t0.elapsed().as_millis() as u64;

    assert_eq!(wave.reports.len(), flows, "every flow must report");
    assert!(
        wave.all_evaded(),
        "a steady-state wave must carry every user's traffic"
    );

    let rss_after_kb = peak_rss_kb();
    let sim_us = pool
        .pool_mut()
        .sessions()
        .iter()
        .map(|s| s.env.network.clock.as_micros())
        .max()
        .unwrap_or(0);
    let telemetry = pool.pool_mut().reactor_telemetry().clone();
    let tasks_admitted = telemetry.metrics.get(Counter::ReactorTasksAdmitted) - admitted_before;
    assert_eq!(
        tasks_admitted, flows as u64,
        "every flow must run as a reactor task (not the threads fallback)"
    );

    WaveStats {
        workers,
        flows,
        host_ms,
        flows_per_sec: flows as f64 / (host_ms.max(1) as f64 / 1_000.0),
        sim_us,
        rss_before_kb,
        rss_after_kb,
        bytes_per_flow: rss_before_kb
            .zip(rss_after_kb)
            .map(|(b, a)| a.saturating_sub(b) * 1_024 / flows.max(1) as u64),
        tasks_admitted,
        reactor_ticks: telemetry.metrics.get(Counter::ReactorTicks) - before,
        timer_fires: telemetry.metrics.get(Counter::ReactorTimerFires) - fires_before,
    }
}

fn scale_pool(workers: usize) -> DeploymentPool {
    let sessions = SessionPool::new(
        EnvKind::Gfc,
        OsKind::Linux,
        LiberateConfig::default(),
        workers,
    )
    .with_engine(Engine::Reactor);
    // Port rotation is mandatory against the GFC model: it blocks a
    // server:port pair after two classified flows.
    let copts = CharacterizeOpts {
        rotate_server_ports: true,
        ..Default::default()
    };
    let mut pool = DeploymentPool::over(sessions, copts);
    for w in 0..pool.workers() {
        pool.pool_mut()
            .session_mut(w)
            .attach_journal(Arc::new(Journal::disabled()));
    }
    pool
}

fn main() {
    let mut flows: usize = 100_000;
    let mut max_bytes_per_flow: u64 = 64 * 1024;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flows" => {
                flows = args.next().and_then(|v| v.parse().ok()).expect("--flows N");
            }
            "--max-bytes-per-flow" => {
                max_bytes_per_flow = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--max-bytes-per-flow N");
            }
            other => panic!("unknown argument: {other}"),
        }
    }

    println!("Benchmark: reactor-engine deployment scale ({flows} concurrent flows)\n");
    let trace = blocked_page();

    // --- Memory / sim-clock curve on one worker: ascending wave sizes,
    // same pool, so each step's VmHWM delta is that scale's marginal
    // footprint.
    let mut curve = Vec::new();
    {
        let mut pool = scale_pool(1);
        // Pay the initial learn outside the measured waves.
        pool.run_flows(&trace, 1).expect("initial learn");
        for scale in [flows / 100, flows / 10, flows] {
            if scale == 0 {
                continue;
            }
            let stats = run_wave(&mut pool, &trace, scale);
            println!(
                "curve: {:>7} flows  {:>7} ms host  {:>6.0} flows/s  peak RSS {} kB",
                stats.flows,
                stats.host_ms,
                stats.flows_per_sec,
                stats.rss_after_kb.unwrap_or(0),
            );
            curve.push(stats);
        }
    }

    // Sub-linear aggregate growth: 10x the flows must cost well under
    // 10x the peak RSS (fixed pool overhead dominates; per-flow state is
    // small). Gate the marginal per-flow bytes of the largest wave.
    if let (Some(big), Some(_)) = (curve.last(), peak_rss_kb()) {
        if let Some(bpf) = big.bytes_per_flow {
            println!(
                "\nmarginal memory: {} bytes/flow at {} flows (gate: <= {})",
                bpf, big.flows, max_bytes_per_flow
            );
            assert!(
                bpf <= max_bytes_per_flow,
                "peak RSS per flow {bpf} B exceeds the {max_bytes_per_flow} B gate"
            );
        }
        if curve.len() >= 2 {
            let small = &curve[0];
            let growth = big.rss_after_kb.unwrap_or(0) as f64
                / small.rss_after_kb.unwrap_or(1).max(1) as f64;
            let scale_up = big.flows as f64 / small.flows.max(1) as f64;
            println!(
                "aggregate growth: {growth:.2}x peak RSS across a {scale_up:.0}x flow scale-up"
            );
            assert!(
                growth < scale_up,
                "memory grew {growth:.2}x over a {scale_up:.0}x scale-up — not sub-linear"
            );
        }
    } else {
        println!("\n/proc/self/status unavailable; memory gates skipped");
    }

    // --- Worker sweep at full scale: flows/sec and RSS at 1, 2, 4
    // workers (each its own process-phase; VmHWM is monotonic so only
    // deltas are meaningful).
    let mut runs = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut pool = scale_pool(workers);
        pool.run_flows(&trace, workers).expect("initial learn");
        let stats = run_wave(&mut pool, &trace, flows);
        println!(
            "{} worker(s): {} flows in {} ms host ({:.0} flows/s), {:.1} min simulated",
            workers,
            stats.flows,
            stats.host_ms,
            stats.flows_per_sec,
            stats.sim_us as f64 / 60e6,
        );
        runs.push(stats);
    }

    let dataset = Json::Obj(vec![
        ("experiment".into(), Json::s("reactor-deployment-scale")),
        ("trace".into(), Json::s("economist-http")),
        ("flows".into(), Json::n(flows as f64)),
        (
            "max_bytes_per_flow_gate".into(),
            Json::n(max_bytes_per_flow as f64),
        ),
        (
            "curve".into(),
            Json::Arr(curve.iter().map(WaveStats::to_json).collect()),
        ),
        (
            "runs".into(),
            Json::Arr(runs.iter().map(WaveStats::to_json).collect()),
        ),
    ]);

    let out_dir = std::path::Path::new("results");
    if std::fs::create_dir_all(out_dir).is_ok() {
        let path = out_dir.join("BENCH_scale.json");
        match std::fs::write(&path, dataset.render() + "\n") {
            Ok(()) => println!("dataset: wrote {}", path.display()),
            Err(e) => eprintln!("dataset: cannot write {}: {e}", path.display()),
        }
    }

    println!("\n[ok] reactor sustained {flows} concurrent flows per wave within the memory gate");
}
