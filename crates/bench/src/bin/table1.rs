//! **Table 1** — comparison between lib·erate and other classifier-evasion
//! methods: per-flow overhead class, client-only deployability,
//! application agnosticism, and capability coverage.
//!
//! The capability flags are structural properties of each method; the
//! overhead column is *measured* here by transforming a reference flow
//! with each approach and counting touched bytes:
//!
//! - a VPN/covert-channel/obfuscation tunnel re-encodes **every** packet
//!   (O(n) work in flow length);
//! - domain fronting rewrites one field of the first request (O(1));
//! - lib·erate touches at most the first k packets (O(1)).
//!
//! Run with: `cargo run -p liberate-bench --bin table1`

use liberate::prelude::*;
use liberate::report::TextTable;
use liberate_traces::apps;

/// Packets a tunnel-style approach must transform for a flow of `n`
/// packets (all of them), vs lib·erate (bounded by the technique).
fn tunnel_touched_packets(n: usize) -> usize {
    n
}

fn liberate_touched_packets(technique: &Technique, trace_packets: usize) -> usize {
    let trace = apps::amazon_prime_http(600_000);
    let ctx = EvasionContext {
        matching_fields: crate_known_fields(&trace),
        decoy: decoy_request(),
        middlebox_ttl: 3,
    };
    let base = Schedule::from_trace(&trace);
    let transformed = technique.apply(&base, &ctx).expect("applies");
    // Touched = packets that differ from the base schedule.
    let base_pkts: Vec<_> = base
        .steps
        .iter()
        .filter_map(|s| match s {
            Step::Packet(p) => Some(p.clone()),
            _ => None,
        })
        .collect();
    let new_pkts: Vec<_> = transformed
        .steps
        .iter()
        .filter_map(|s| match s {
            Step::Packet(p) => Some(p.clone()),
            _ => None,
        })
        .collect();
    let _ = trace_packets;
    new_pkts
        .iter()
        .filter(|p| !base_pkts.contains(p))
        .count()
        .max(new_pkts.len().saturating_sub(base_pkts.len()))
}

fn crate_known_fields(
    trace: &liberate_traces::recorded::RecordedTrace,
) -> Vec<liberate_packet::mutate::ByteRegion> {
    let payload = &trace.messages[0].payload;
    let pos = liberate_traces::http::find(payload, b"cloudfront.net").unwrap();
    vec![liberate_packet::mutate::ByteRegion::new(0, pos..pos + 14)]
}

fn main() {
    let trace = apps::amazon_prime_http(600_000);
    let n = trace.client_messages().count() + trace.server_messages().count();

    println!("Table 1: comparison between lib\u{b7}erate and other evasion methods");
    println!("(reference flow: Amazon Prime Video, {n} packets)\n");

    let t = TextTable::new(&[
        "Method",
        "Overhead/flow",
        "Touched pkts (measured)",
        "Client only",
        "App agnostic",
        "Rule detection",
        "Split/Reorder",
        "Inert inject",
        "Flushing",
        "In-the-wild",
    ]);
    let row = |m: &str, o: &str, tp: String, flags: [&str; 7]| {
        vec![
            m.to_string(),
            o.to_string(),
            tp,
            flags[0].into(),
            flags[1].into(),
            flags[2].into(),
            flags[3].into(),
            flags[4].into(),
            flags[5].into(),
            flags[6].into(),
        ]
    };
    let mut table = t;
    table.row(row(
        "VPN",
        "O(n)",
        format!("{}", tunnel_touched_packets(n)),
        [".", "Y", ".", ".", ".", ".", "n/a"],
    ));
    table.row(row(
        "Covert channels",
        "O(n)",
        format!("{}", tunnel_touched_packets(n)),
        [".", ".", ".", ".", ".", ".", "."],
    ));
    table.row(row(
        "Obfuscation",
        "O(n)",
        format!("{}", tunnel_touched_packets(n)),
        [".", ".", ".", ".", ".", ".", "Y"],
    ));
    table.row(row(
        "Domain fronting",
        "O(1)",
        "1".to_string(),
        [".", ".", ".", ".", ".", ".", "Y"],
    ));
    table.row(row(
        "Kreibich et al. (norm)",
        "O(1)",
        "1".to_string(),
        ["Y", "Y", ".", ".", "Y", ".", "."],
    ));

    // lib·erate: measure the worst technique family actually deployed.
    let worst = [
        Technique::InertLowTtl,
        Technique::TcpSegmentSplit { segments: 5 },
        Technique::TcpSegmentReorder { segments: 2 },
        Technique::TtlRstBeforeMatch,
    ]
    .iter()
    .map(|tq| liberate_touched_packets(tq, n))
    .max()
    .unwrap();
    table.row(row(
        "lib\u{b7}erate",
        "O(1)",
        format!("<= {worst}"),
        ["Y", "Y", "Y", "Y", "Y", "Y", "Y"],
    ));

    println!("{}", table.render());
    println!(
        "Expected shape (paper): tunnel methods touch every packet (O(n)); \
         lib\u{b7}erate touches a constant number regardless of flow length."
    );
    assert!(worst <= 8, "lib\u{b7}erate must stay O(1): {worst}");
    assert!(tunnel_touched_packets(n) > 10 * worst);
    println!("\n[ok] overhead classes reproduce Table 1's O(n) vs O(1) split");
}
