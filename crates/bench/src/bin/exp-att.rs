//! **§6.3 — AT&T Stream Saver**: transparent-proxy throttling of port-80
//! HTTP video, server-direction matching fields, the futility of
//! packet-level evasion, and the port-change escape hatch.
//!
//! Paper's numbers:
//! - HTTP video throttled to **1.5 Mbps**; HTTPS untouched (the proxy did
//!   not inspect TLS);
//! - 71 replays to identify matching fields; the fields include standard
//!   HTTP tokens (`GET`, `HTTP/1.1`) client-side and
//!   **`Content-Type: video`** in the *server* direction;
//! - no lib·erate technique works (the proxy terminates TCP);
//! - moving the server off port 80 evades entirely.
//!
//! Run with: `cargo run --release -p liberate-bench --bin exp-att`

use std::sync::Arc;

use liberate::prelude::*;
use liberate::report::{fmt_bps, fmt_bytes};
use liberate_bench::obsflag;
use liberate_obs::Journal;
use liberate_traces::apps;
use liberate_traces::recorded::Sender;

fn main() {
    println!("Experiment §6.3: AT&T Stream Saver\n");
    let journal = Arc::new(Journal::new());
    let mut session = Session::new(EnvKind::Att, OsKind::Linux, LiberateConfig::default());
    session.attach_journal(journal.clone());
    let video = apps::nbcsports_http(2_000_000);

    // --- Detection: throttled vs the bit-inverted control.
    let d = detect(&mut session, &video);
    assert!(d.throttling && d.differentiated, "{d:?}");
    println!(
        "detection: HTTP video throttled to {} (control ran at {})",
        fmt_bps(d.original.avg_bps),
        fmt_bps(d.control.avg_bps)
    );
    assert!((1_200_000.0..2_100_000.0).contains(&d.original.avg_bps));

    // --- HTTPS is not touched (the proxy only intercepts port 80).
    let tls = apps::youtube_https(2_000_000);
    let out = session.replay_trace(&tls, &ReplayOpts::default());
    assert!(out.complete);
    assert!(
        out.avg_bps > 3.0 * d.original.avg_bps,
        "HTTPS not throttled: {}",
        fmt_bps(out.avg_bps)
    );
    println!("HTTPS: untouched ({})", fmt_bps(out.avg_bps));

    // --- Characterization finds server-direction fields too.
    let signal = Signal::Throttling {
        control_bps: d.control.avg_bps,
        ratio: session.config.throttle_ratio,
    };
    let c = characterize(&mut session, &video, &signal, &CharacterizeOpts::default());
    println!(
        "characterization: {} rounds, {} sent",
        c.rounds,
        fmt_bytes(c.data_consumed())
    );
    // The paper reports 71 replays; our request carries three conjunctive
    // fields (GET, HTTP/1.1, Content-Type: video), each costing a byte
    // search, so allow some headroom.
    assert!(
        (40..=160).contains(&c.rounds),
        "paper: 71 replays; measured {}",
        c.rounds
    );
    let server_fields: Vec<String> = c
        .fields
        .iter()
        .filter(|f| f.sender == Sender::Server)
        .map(|f| f.as_text())
        .collect();
    println!("  server-direction fields: {server_fields:?}");
    assert!(
        server_fields.iter().any(|f| f.contains("video")),
        "Content-Type: video must be among the server-direction fields"
    );

    // --- No technique works.
    let ctx = EvasionContext {
        matching_fields: c.client_field_regions(&video),
        decoy: decoy_request(),
        middlebox_ttl: 2,
    };
    let inputs = EvaluationInputs {
        signal: signal.clone(),
        ctx,
        rotate_server_ports: false,
    };
    let winner = find_working_technique(&mut session, &video, &c.position, &inputs);
    assert!(
        winner.is_none(),
        "no packet-level technique beats the proxy"
    );
    println!("evasion: all packet-level techniques fail (TCP-terminating proxy)");

    // --- ...but changing the server port evades completely.
    let out = session.replay_trace(
        &video,
        &ReplayOpts {
            server_port: Some(8080),
            ..Default::default()
        },
    );
    assert!(out.complete);
    assert!(out.avg_bps > 3.0 * d.original.avg_bps);
    println!(
        "port change: the same flow on port 8080 runs at {} (unthrottled)",
        fmt_bps(out.avg_bps)
    );

    obsflag::finish(&journal);
    println!("\n[ok] §6.3 findings reproduce");
}
