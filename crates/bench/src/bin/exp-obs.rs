//! **Observability overhead**: the tracing layer must be close to free.
//!
//! Runs the same characterization workload twice per repetition — once
//! with the journal enabled (spans, events, histograms) and once with a
//! disabled journal (`Journal::disabled()`, every record/span/observe
//! call short-circuits on the atomic gate) — and compares host
//! wall-clock. The gate: enabled must cost less than
//! `LIBERATE_OBS_BUDGET_PCT` percent (default 10) over disabled,
//! min-of-reps on both sides so scheduler noise cannot fail the run.
//!
//! Also asserts the enabled runs are deterministic: every repetition
//! must export a byte-identical journal.
//!
//! Writes `results/BENCH_obs.json`.
//!
//! Run with: `cargo run --release -p liberate-bench --bin exp-obs`

use std::sync::Arc;
use std::time::Instant;

use liberate::prelude::*;
use liberate::report::Json;
use liberate_obs::{to_jsonl, Journal};
use liberate_traces::apps;

const REPS: usize = 5;
const DEFAULT_BUDGET_PCT: f64 = 10.0;

fn budget_pct() -> f64 {
    std::env::var("LIBERATE_OBS_BUDGET_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|v: &f64| *v > 0.0)
        .unwrap_or(DEFAULT_BUDGET_PCT)
}

/// One full workload pass: characterize an HTTP and a UDP application
/// against the testbed classifier with the given journal attached.
/// Returns (host micros, replay rounds) — rounds pin the workload as
/// identical across arms.
fn run_workload(journal: &Arc<Journal>) -> (u64, u64) {
    let start = Instant::now();
    let mut rounds = 0;
    for trace in [
        apps::amazon_prime_http(20_000),
        apps::spotify_http(20_000),
        apps::espn_http(20_000),
        apps::skype_stun(8),
    ] {
        let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
        session.attach_journal(journal.clone());
        let c = characterize(
            &mut session,
            &trace,
            &Signal::Readout,
            &CharacterizeOpts::default(),
        );
        rounds += c.rounds;
    }
    (start.elapsed().as_micros() as u64, rounds)
}

fn main() {
    println!("Experiment: observability overhead (journal on vs off)\n");
    let budget = budget_pct();

    let mut on_us = Vec::with_capacity(REPS);
    let mut off_us = Vec::with_capacity(REPS);
    let mut on_rounds = 0;
    let mut off_rounds = 0;
    let mut first_jsonl: Option<String> = None;
    let mut journal_events = 0;

    for rep in 0..REPS {
        // Alternate arm order per rep so cache warm-up cannot
        // systematically favor one side.
        for arm in 0..2 {
            let enabled = (rep + arm) % 2 == 0;
            let journal = Arc::new(if enabled {
                Journal::new()
            } else {
                Journal::disabled()
            });
            let (us, rounds) = run_workload(&journal);
            if enabled {
                on_us.push(us);
                on_rounds = rounds;
                journal_events = journal.len();
                let jsonl = to_jsonl(&journal);
                match &first_jsonl {
                    None => first_jsonl = Some(jsonl),
                    Some(prev) => assert_eq!(
                        prev, &jsonl,
                        "enabled-journal export must be byte-identical across reps"
                    ),
                }
            } else {
                off_us.push(us);
                off_rounds = rounds;
                assert_eq!(journal.len(), 0, "disabled journal must record no events");
            }
        }
    }

    assert_eq!(
        on_rounds, off_rounds,
        "journal gating must not change the workload"
    );

    let on_min = *on_us.iter().min().unwrap();
    let off_min = *off_us.iter().min().unwrap();
    let overhead_pct = if off_min == 0 {
        0.0
    } else {
        (on_min as f64 - off_min as f64) / off_min as f64 * 100.0
    };

    println!("workload: 3x http + skype-stun characterization, {on_rounds} rounds");
    println!(
        "journal on  (min of {REPS}): {:>10} us, {journal_events} events",
        on_min
    );
    println!("journal off (min of {REPS}): {:>10} us", off_min);
    println!("overhead: {overhead_pct:.2}% (budget {budget:.1}%)");

    let dataset = Json::Obj(vec![
        ("experiment".into(), Json::s("observability overhead")),
        (
            "workload".into(),
            Json::s("prime+spotify+espn http(20000) + skype-stun(8) testbed characterization"),
        ),
        ("reps".into(), Json::n(REPS as f64)),
        ("rounds".into(), Json::n(on_rounds as f64)),
        ("journal_events".into(), Json::n(journal_events as f64)),
        ("on_min_us".into(), Json::n(on_min as f64)),
        ("off_min_us".into(), Json::n(off_min as f64)),
        (
            "overhead_pct".into(),
            Json::Num((overhead_pct * 100.0).round() / 100.0),
        ),
        ("budget_pct".into(), Json::Num(budget)),
        (
            "on_us".into(),
            Json::Arr(on_us.iter().map(|&u| Json::n(u as f64)).collect()),
        ),
        (
            "off_us".into(),
            Json::Arr(off_us.iter().map(|&u| Json::n(u as f64)).collect()),
        ),
    ]);
    let out_dir = std::path::Path::new("results");
    if std::fs::create_dir_all(out_dir).is_ok() {
        let path = out_dir.join("BENCH_obs.json");
        match std::fs::write(&path, dataset.render() + "\n") {
            Ok(()) => println!("dataset: wrote {}", path.display()),
            Err(e) => eprintln!("dataset: cannot write {}: {e}", path.display()),
        }
    }

    assert!(
        overhead_pct < budget,
        "tracing overhead {overhead_pct:.2}% exceeds the {budget:.1}% budget \
         (override with LIBERATE_OBS_BUDGET_PCT)"
    );
    println!("\n[ok] tracing overhead within budget, exports byte-identical across reps");
}
