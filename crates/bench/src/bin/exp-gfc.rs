//! **§6.5 — The Great Firewall of China**: blocking signal, rounds/data
//! cost with port rotation, residual server:port blocking, localization
//! at TTL 10, prepend evasion, UDP opacity, and RST-flush asymmetry.
//!
//! Paper's numbers:
//! - 86 replays, < 15 minutes, < 400 KB (each replay ~4 KB);
//! - keywords: `GET` and `economist.com` in the Host header;
//! - blocking = 3–5 injected RSTs; after 2 classified replays the whole
//!   server:port pair is blocked (hence port rotation during tests);
//! - a TTL of 10 reaches the classifier without reaching the server;
//! - prepending one dummy byte evades; UDP is not classified;
//! - a RST *before* the matching packet evades; after, it does not.
//!
//! Run with: `cargo run --release -p liberate-bench --bin exp-gfc`

use std::sync::Arc;

use liberate::prelude::*;
use liberate::report::fmt_bytes;
use liberate_bench::obsflag;
use liberate_obs::Journal;
use liberate_traces::apps;

fn main() {
    println!("Experiment §6.5: the Great Firewall of China\n");
    let journal = Arc::new(Journal::new());
    let mut session = Session::new(EnvKind::Gfc, OsKind::Linux, LiberateConfig::default());
    session.attach_journal(journal.clone());
    let trace = apps::economist_http();

    // --- Blocking signal: 3-5 RSTs.
    let base = session.replay_trace(&trace, &ReplayOpts::default());
    assert!(base.blocked());
    println!("blocking signal: {} RSTs injected (paper: 3-5)", base.rsts);
    assert!((3..=5).contains(&base.rsts));

    // --- Residual server:port blocking after two classified flows.
    let again = session.replay_trace(&trace, &ReplayOpts::default());
    assert!(again.blocked());
    let clean = liberate_traces::generator::generate(&liberate_traces::generator::WorkloadSpec {
        server_bytes: 4_000,
        ..Default::default()
    });
    let collateral = session.replay_trace(&clean, &ReplayOpts::default());
    assert!(
        collateral.blocked(),
        "uncensored content to the same server:port must now be blocked"
    );
    let other_port = session.replay_trace(
        &clean,
        &ReplayOpts {
            server_port: Some(8081),
            ..Default::default()
        },
    );
    assert!(!other_port.blocked(), "a different port is unaffected");
    println!("residual blocking: server:80 blocked after 2 classified flows; port 8081 fine");

    // --- Characterization with port rotation.
    let mut fresh = Session::new(EnvKind::Gfc, OsKind::Linux, LiberateConfig::default());
    fresh.attach_journal(journal.clone());
    let copts = CharacterizeOpts {
        rotate_server_ports: true,
        ..Default::default()
    };
    let c = characterize(&mut fresh, &trace, &Signal::Blocking, &copts);
    let fields: String = c
        .fields
        .iter()
        .map(|f| f.as_text())
        .collect::<Vec<_>>()
        .join(" | ");
    println!(
        "characterization: {} rounds, {:.1} min, {} sent; fields: {fields}",
        c.rounds,
        c.elapsed.as_secs_f64() / 60.0,
        fmt_bytes(c.bytes_sent)
    );
    assert!(fields.contains("economist"));
    assert!(
        (40..=120).contains(&c.rounds),
        "paper: 86 replays; measured {}",
        c.rounds
    );
    assert_eq!(c.position.prepend_break, Some(1), "one dummy packet evades");

    // --- Localization: TTL 10.
    let loc = locate_middlebox(
        &mut fresh,
        &apps::control_http(),
        &liberate_traces::http::get_request("www.economist.com", "/liberate-decoy", "p"),
        &Signal::Blocking,
    );
    println!(
        "localization: classifier answers at TTL {:?} (paper: 10)",
        loc.middlebox_ttl
    );
    assert_eq!(loc.middlebox_ttl, Some(10));

    // --- UDP is not classified.
    let quic = apps::youtube_quic(100_000);
    let (out, classified) = probe(&mut fresh, &quic, &ReplayOpts::default(), &Signal::Blocking);
    assert!(out.complete && !classified, "QUIC passes the GFC untouched");
    println!("UDP/QUIC: not classified");

    // --- RST flush asymmetry.
    let ctx = EvasionContext::blind(decoy_request(), 10);
    let before = fresh
        .replay_with(
            &trace,
            &Technique::TtlRstBeforeMatch,
            &ctx,
            &ReplayOpts {
                server_port: Some(8200),
                ..Default::default()
            },
        )
        .unwrap();
    assert!(!before.blocked() && before.complete, "RST-before evades");
    let after = fresh
        .replay_with(
            &trace,
            &Technique::TtlRstAfterMatch,
            &ctx,
            &ReplayOpts {
                server_port: Some(8201),
                ..Default::default()
            },
        )
        .unwrap();
    assert!(after.blocked(), "RST-after does not evade");
    println!("RST flush: before-match evades, after-match does not (matches §6.5)");

    obsflag::finish(&journal);
    println!("\n[ok] §6.5 findings reproduce");
}
