//! **§6.6 — Iran**: 403-page blocking, per-packet all-packets
//! classification, port-80-only rules, splitting as the evasion, and the
//! misclassification footnote (an inert packet carrying blocked content
//! gets a clean flow blocked).
//!
//! Paper's numbers:
//! - 75 replays, ~10 minutes, ~300 KB;
//! - keyword `facebook.com` in the Host header, port 80 only;
//! - prepending up to 1,000 packets never changes classification: the
//!   classifier checks **every** packet;
//! - inert packet insertion cannot evade, but an inert packet with
//!   blocked content *causes* blocking (footnote 3);
//! - splitting the matching field across two packets evades;
//! - the classifier answers at 8 hops.
//!
//! Run with: `cargo run --release -p liberate-bench --bin exp-iran`

use std::sync::Arc;

use liberate::prelude::*;
use liberate::report::fmt_bytes;
use liberate_bench::obsflag;
use liberate_obs::Journal;
use liberate_traces::apps;

fn main() {
    println!("Experiment §6.6: Iran\n");
    let journal = Arc::new(Journal::new());
    let mut session = Session::new(EnvKind::Iran, OsKind::Linux, LiberateConfig::default());
    session.attach_journal(journal.clone());
    let trace = apps::facebook_http();

    // --- Blocking signal: 403 page + 2 RSTs.
    let base = session.replay_trace(&trace, &ReplayOpts::default());
    assert!(base.block_page, "Iran responds with an HTTP 403 page");
    assert!(base.rsts >= 2);
    println!("blocking signal: 403 Forbidden page + {} RSTs", base.rsts);

    // --- Port specificity: same content on 8080 is untouched.
    let out = session.replay_trace(
        &trace,
        &ReplayOpts {
            server_port: Some(8080),
            ..Default::default()
        },
    );
    assert!(!out.blocked() && out.complete);
    println!("port rules: port 8080 not classified (characterization must use port 80)");

    // --- Characterization (no port rotation possible!).
    let c = characterize(
        &mut session,
        &trace,
        &Signal::Blocking,
        &CharacterizeOpts::default(),
    );
    let fields: String = c
        .fields
        .iter()
        .map(|f| f.as_text())
        .collect::<Vec<_>>()
        .join(" | ");
    println!(
        "characterization: {} rounds, {:.1} min, {} sent; fields: {fields}",
        c.rounds,
        c.elapsed.as_secs_f64() / 60.0,
        fmt_bytes(c.bytes_sent)
    );
    assert!(fields.contains("facebook"));
    assert!(
        (40..=110).contains(&c.rounds),
        "paper: 75 replays; measured {}",
        c.rounds
    );
    assert!(
        c.position.matches_all_packets,
        "prepending packets never changes classification"
    );

    // --- Footnote 3: an inert packet with *blocked* content blocks a
    // clean flow.
    let clean = liberate_traces::generator::generate(&liberate_traces::generator::WorkloadSpec {
        server_bytes: 8_000,
        ..Default::default()
    });
    let ctx_blocked_decoy = EvasionContext {
        matching_fields: vec![],
        decoy: liberate_traces::http::get_request("www.facebook.com", "/x", "p"),
        middlebox_ttl: 8,
    };
    let out = session
        .replay_with(
            &clean,
            &Technique::InertLowTtl,
            &ctx_blocked_decoy,
            &ReplayOpts::default(),
        )
        .unwrap();
    assert!(
        out.blocked(),
        "an inert packet with blocked content causes the connection to be blocked"
    );
    println!("footnote 3: inert packet with blocked payload got a clean flow blocked");

    // --- Localization: 8 hops.
    let loc = locate_middlebox(
        &mut session,
        &apps::control_http(),
        &liberate_traces::http::get_request("www.facebook.com", "/liberate-decoy", "p"),
        &Signal::Blocking,
    );
    println!(
        "localization: classifier at {:?} hops (paper: 8)",
        loc.middlebox_ttl
    );
    assert_eq!(loc.middlebox_ttl, Some(8));

    // --- Splitting across two packets evades (with or without reorder).
    let ctx = EvasionContext {
        matching_fields: c.client_field_regions(&trace),
        decoy: decoy_request(),
        middlebox_ttl: 8,
    };
    for technique in [
        Technique::TcpSegmentSplit { segments: 2 },
        Technique::TcpSegmentReorder { segments: 2 },
    ] {
        let out = session
            .replay_with(&trace, &technique, &ctx, &ReplayOpts::default())
            .unwrap();
        assert!(
            !out.blocked() && out.complete && out.integrity_ok,
            "{technique:?} should evade Iran: {out:?}"
        );
    }
    println!("evasion: splitting the matching field across 2 segments evades (±reorder)");

    obsflag::finish(&journal);
    println!("\n[ok] §6.6 findings reproduce");
}
