//! **Hot-path overhaul benchmark**: the combined proof for the zero-copy
//! packet plumbing, the skip-loop automaton, and the lock-free read
//! paths. Writes `results/BENCH_hotpath.json`.
//!
//! Three measurements, each with its own gate:
//!
//! 1. **Payload copy census** — the same replay workload runs once in
//!    eager-copy mode (`PacketBuf` clones/slices materialize fresh
//!    buffers: the pre-overhaul copy discipline) and once in normal
//!    shared-view mode. The process-wide census counts every deep copy;
//!    copies per replay must fall ≥ 5× with sharing on. The journal's
//!    `payload-copies` counter reports the CoW-tallied remainder.
//! 2. **Per-profile matcher curves** — automaton vs naive host time on
//!    the exp-matcher workload at three trace sizes. With the root skip
//!    loop the automaton must hold every cell (`≤ 1.05× naive`), the
//!    single-pattern Iran profile included — the regression that
//!    motivated the overhaul.
//! 3. **Deploy worker scaling** — host wall-clock of an identical
//!    steady deployment wave at 1 and 4 workers. Seqlock snapshot
//!    reads and the per-shard batch drain must keep host cost flat:
//!    `host_cpu_ms(4w) ≤ 1.05 × host_cpu_ms(1w)`. The two arms are
//!    timed in alternating paired rounds and the gate takes the best
//!    paired ratio, so ambient load lands on both arms instead of
//!    masquerading as contention. On a single-core host the four
//!    worker threads time-slice one CPU — the wave pays real scheduler
//!    overhead with no parallel payback — so the bound relaxes to a
//!    structural one (`≤ 1.35×`) that still catches a per-worker
//!    rescan or a serialized read path (those show up as ~4×).
//!
//! Run with: `cargo run --release -p liberate-bench --bin exp-hotpath`

use std::sync::Arc;
use std::time::Instant;

use liberate::prelude::*;
use liberate::report::Json;
use liberate_dpi::automaton::MatcherKind;
use liberate_dpi::device::{DpiConfig, DpiDevice};
use liberate_dpi::profiles::{gfc_device, iran_device, testbed_device, tmus_device};
use liberate_netsim::element::{Effects, PacketBuf, PathElement};
use liberate_netsim::time::SimTime;
use liberate_obs::{Counter, Journal};
use liberate_packet::flow::Direction;
use liberate_packet::packet::Packet;
use liberate_packet::tcp::TcpFlags;
use liberate_substrate::buf::{copy_census, set_eager_copy_mode};
use liberate_traces::apps;
use liberate_traces::recorded::RecordedTrace;

use std::net::Ipv4Addr;

const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const S: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 10);

/// Replays per census arm; copies-per-replay is the reported figure.
const CENSUS_REPLAYS: usize = 8;

/// Timing repetitions; best run reported to shed scheduler noise.
const REPS: usize = 3;

/// Users per deployment wave in the scaling measurement.
const USERS: usize = 8;

/// Paired timing rounds for the scaling gate: the waves are only tens
/// of milliseconds, so each round times one 1-worker and one 4-worker
/// wave back to back and the gate keeps the round with the best ratio.
const DEPLOY_ROUNDS: usize = 5;

// --- 1. Payload copy census -------------------------------------------

/// Replay the detection workload — a downstream video fetch plus a
/// bidirectional VoIP call, the two differentiation targets a detection
/// session sweeps — `CENSUS_REPLAYS` times and return (deep copies,
/// bytes copied, journal `payload-copies`) deltas.
fn census_arm(eager: bool) -> (u64, u64, u64) {
    set_eager_copy_mode(eager);
    let mut session = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
    let traces = [apps::amazon_prime_http(64_000), apps::skype_stun(120)];
    let journal = session.journal().clone();
    let copies_j0 = journal.metrics.get(Counter::PayloadCopies);
    let (c0, b0) = copy_census();
    for _ in 0..CENSUS_REPLAYS {
        for trace in &traces {
            session.replay_trace(trace, &ReplayOpts::default());
        }
    }
    let (c1, b1) = copy_census();
    let copies_j1 = journal.metrics.get(Counter::PayloadCopies);
    set_eager_copy_mode(false);
    (c1 - c0, b1 - b0, copies_j1 - copies_j0)
}

// --- 2. Matcher curves (exp-matcher workload) -------------------------

const SEGMENT_BYTES: usize = 1000;
const SEGMENTS_PER_FLOW: usize = 4;
const FLOW_BYTES: usize = SEGMENT_BYTES * SEGMENTS_PER_FLOW;

type Step = (u64, Direction, Vec<u8>);

/// Non-matching HTTP-ish flows that keep every rule unsatisfied, so
/// inspection never short-circuits (worst case for both matchers).
fn synthetic_trace(flows: usize) -> Vec<Step> {
    let mut steps = Vec::new();
    let mut t = 0u64;
    for f in 0..flows {
        let port = 40_000 + f as u16;
        let isn = 1_000 * (f as u32 + 1);
        steps.push((
            t,
            Direction::ClientToServer,
            Packet::tcp(C, S, port, 80, isn, 0, vec![])
                .with_flags(TcpFlags::SYN)
                .serialize(),
        ));
        let mut seq = isn + 1;
        for s in 0..SEGMENTS_PER_FLOW {
            t += 500;
            let head = format!("GET /flow{f:04}/seg{s} HTTP/1.1\r\nHost: pad.invalid\r\n");
            let mut payload = head.into_bytes();
            payload.resize(SEGMENT_BYTES, b'a');
            steps.push((
                t,
                Direction::ClientToServer,
                Packet::tcp(C, S, port, 80, seq, 1, payload).serialize(),
            ));
            seq += SEGMENT_BYTES as u32;
        }
        t += 500;
    }
    steps
}

/// Best host µs over `REPS` runs of `trace` through a fresh device.
fn device_host_us(config: &DpiConfig, matcher: MatcherKind, trace: &[Step]) -> u64 {
    let steps: Vec<(u64, Direction, PacketBuf)> = trace
        .iter()
        .map(|(us, dir, wire)| (*us, *dir, PacketBuf::from(wire.clone())))
        .collect();
    let mut best_us = u64::MAX;
    for _ in 0..REPS {
        let mut cfg = config.clone();
        cfg.matcher = matcher;
        let mut dev = DpiDevice::new(cfg);
        let journal = Arc::new(Journal::new());
        dev.attach_journal(&journal);
        let t0 = Instant::now();
        for (us, dir, wire) in &steps {
            let mut fx = Effects::default();
            dev.process(SimTime::from_micros(*us), *dir, wire.clone(), &mut fx);
        }
        best_us = best_us.min(t0.elapsed().as_micros() as u64);
    }
    best_us
}

// --- 3. Deploy worker scaling -----------------------------------------

/// Build a deployment pool and pay the initial characterize wave
/// untimed, leaving it in the steady state. This isolates the per-wave
/// read path (seqlock snapshots, batch drain) from one-time setup,
/// which trivially scales with worker count (one network blueprint
/// instantiation per worker).
fn warm_pool(trace: &RecordedTrace, workers: usize) -> DeploymentPool {
    let mut pool = DeploymentPool::new(
        EnvKind::Testbed,
        OsKind::Linux,
        LiberateConfig::default(),
        workers,
        CharacterizeOpts::default(),
    );
    let warm = pool.run_flows(trace, USERS).expect("learn wave");
    assert!(warm.all_evaded(), "learn wave must stream clean");
    pool
}

/// Host wall-clock of one steady wave.
fn steady_wave_us(pool: &mut DeploymentPool, trace: &RecordedTrace) -> u64 {
    let t0 = Instant::now();
    let wave = pool.run_flows(trace, USERS).expect("steady wave");
    let us = t0.elapsed().as_micros() as u64;
    assert!(wave.all_evaded() && !wave.recharacterized);
    us
}

/// Steady-wave host cost at 1 and 4 workers, measured in paired
/// alternating rounds. Returns the `(host_1w_us, host_4w_us)` pair from
/// the round with the lowest 4w/1w ratio: ambient load (this can run on
/// a single-core CI box where four worker threads time-slice one CPU)
/// hits both arms of a round, while a structural scaling regression
/// inflates the 4-worker arm in every round and survives the min.
fn deploy_scaling_us() -> (u64, u64) {
    let trace = apps::amazon_prime_http(1_200_000);
    let mut pool_1w = warm_pool(&trace, 1);
    let mut pool_4w = warm_pool(&trace, 4);
    let mut best: Option<(u64, u64)> = None;
    for _ in 0..DEPLOY_ROUNDS {
        let t1 = steady_wave_us(&mut pool_1w, &trace).max(1);
        let t4 = steady_wave_us(&mut pool_4w, &trace);
        let better = match best {
            None => true,
            Some((b1, b4)) => (t4 as u128) * (b1 as u128) < (b4 as u128) * (t1 as u128),
        };
        if better {
            best = Some((t1, t4));
        }
    }
    best.expect("at least one timing round")
}

fn main() {
    println!("Benchmark: hot-path overhaul (zero-copy, skip-loop, lock-free reads)\n");

    // --- 1. Copy census, eager (pre-overhaul) vs shared (current).
    let (before_copies, before_bytes, _) = census_arm(true);
    let (after_copies, after_bytes, after_journal_copies) = census_arm(false);
    let copies_per_replay_before = before_copies as f64 / CENSUS_REPLAYS as f64;
    let copies_per_replay_after = after_copies as f64 / CENSUS_REPLAYS as f64;
    let copy_reduction = before_copies as f64 / after_copies.max(1) as f64;
    println!(
        "copy census ({CENSUS_REPLAYS} replays): eager {before_copies} copies \
({before_bytes} B), shared {after_copies} copies ({after_bytes} B)"
    );
    if after_copies == 0 {
        println!(
            "  per replay: {copies_per_replay_before:.0} -> 0 — payload deep-copies \
eliminated (journal payload-copies: {after_journal_copies})"
        );
    } else {
        println!(
            "  per replay: {copies_per_replay_before:.0} -> {copies_per_replay_after:.0} \
({copy_reduction:.1}x fewer; journal payload-copies: {after_journal_copies})"
        );
    }
    assert!(
        copy_reduction >= 5.0,
        "zero-copy plumbing must cut payload deep-copies >= 5x per replay \
(got {copy_reduction:.2}x)"
    );

    // --- 2. Matcher curves with the per-profile floor.
    let profiles: Vec<(&'static str, DpiConfig)> = vec![
        ("testbed", testbed_device()),
        ("tmobile", tmus_device()),
        ("gfc", gfc_device(3 * 3600)),
        ("iran", iran_device()),
    ];
    let flow_counts = [8usize, 32, 128];
    let mut matcher_cells = Vec::new();
    println!();
    for &flows in &flow_counts {
        let trace = synthetic_trace(flows);
        let trace_bytes = flows * FLOW_BYTES;
        for (name, config) in &profiles {
            let naive_us = device_host_us(config, MatcherKind::NaiveRescan, &trace);
            let auto_us = device_host_us(config, MatcherKind::Automaton, &trace);
            println!(
                "matcher {name:8} {:>4} KB  naive {naive_us:>7} us   automaton {auto_us:>7} us",
                trace_bytes / 1024
            );
            assert!(
                auto_us as f64 <= naive_us as f64 * 1.05,
                "{name}/{trace_bytes}B: automaton {auto_us} us exceeds naive \
{naive_us} us by more than 5% — the skip loop regressed"
            );
            matcher_cells.push(Json::Obj(vec![
                ("profile".into(), Json::s(*name)),
                ("trace_bytes".into(), Json::n(trace_bytes as f64)),
                ("naive_host_us".into(), Json::n(naive_us as f64)),
                ("automaton_host_us".into(), Json::n(auto_us as f64)),
            ]));
        }
    }

    // --- 3. Deploy scaling: host cost must be flat 1 -> 4 workers.
    println!();
    let (host_1w, host_4w) = deploy_scaling_us();
    let host_1w_ms = host_1w as f64 / 1000.0;
    let host_4w_ms = host_4w as f64 / 1000.0;
    let scaling_ratio = host_4w as f64 / host_1w.max(1) as f64;
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // With one CPU the 4-worker arm serializes anyway and its only
    // honest bound is structural (no per-worker rescan); with real
    // cores the tight flatness bound applies.
    let flat_gate = if cores >= 2 { 1.05 } else { 1.35 };
    println!(
        "deploy host wall-clock per steady wave: 1 worker {host_1w_ms:.1} ms, \
4 workers {host_4w_ms:.1} ms (ratio {scaling_ratio:.2}, gate {flat_gate:.2} \
on {cores} core(s))"
    );
    assert!(
        scaling_ratio <= flat_gate,
        "host cost must stay flat from 1 to 4 workers \
(got {host_1w_ms:.1} ms -> {host_4w_ms:.1} ms, {scaling_ratio:.2}x > \
{flat_gate:.2}x on {cores} core(s)); the lock-free read paths or the \
batch drain regressed"
    );

    let dataset = Json::Obj(vec![
        ("experiment".into(), Json::s("hotpath-overhaul")),
        (
            "copy_census".into(),
            Json::Obj(vec![
                ("replays".into(), Json::n(CENSUS_REPLAYS as f64)),
                ("eager_copies".into(), Json::n(before_copies as f64)),
                ("eager_bytes".into(), Json::n(before_bytes as f64)),
                ("shared_copies".into(), Json::n(after_copies as f64)),
                ("shared_bytes".into(), Json::n(after_bytes as f64)),
                (
                    "journal_payload_copies".into(),
                    Json::n(after_journal_copies as f64),
                ),
                (
                    "copy_reduction".into(),
                    Json::Num((copy_reduction * 100.0).round() / 100.0),
                ),
            ]),
        ),
        ("matcher_cells".into(), Json::Arr(matcher_cells)),
        (
            "deploy_scaling".into(),
            Json::Obj(vec![
                ("users_per_wave".into(), Json::n(USERS as f64)),
                (
                    "host_cpu_ms_1w".into(),
                    Json::Num((host_1w_ms * 10.0).round() / 10.0),
                ),
                (
                    "host_cpu_ms_4w".into(),
                    Json::Num((host_4w_ms * 10.0).round() / 10.0),
                ),
                (
                    "host_cpu_ratio_4v1".into(),
                    Json::Num((scaling_ratio * 100.0).round() / 100.0),
                ),
                ("host_cores".into(), Json::n(cores as f64)),
                ("flat_gate".into(), Json::Num(flat_gate)),
            ]),
        ),
    ]);

    let out_dir = std::path::Path::new("results");
    if std::fs::create_dir_all(out_dir).is_ok() {
        let path = out_dir.join("BENCH_hotpath.json");
        match std::fs::write(&path, dataset.render() + "\n") {
            Ok(()) => println!("dataset: wrote {}", path.display()),
            Err(e) => eprintln!("dataset: cannot write {}: {e}", path.display()),
        }
    }

    println!(
        "\n[ok] payload deep-copies {copies_per_replay_before:.0} -> \
{copies_per_replay_after:.0} per replay, automaton holds every profile at every \
size, host cost flat 1 -> 4 workers ({scaling_ratio:.2}x)"
    );
}
