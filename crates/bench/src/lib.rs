//! # liberate-bench
//!
//! The experiment harness regenerating every table and figure of the
//! lib·erate paper (see `EXPERIMENTS.md` at the workspace root for the
//! index). Binaries in `src/bin/` print paper-expected values next to
//! measured ones; the shared logic lives here so the workspace
//! integration tests can assert the same results.

pub mod envs;
pub mod expected;
pub mod obsflag;
pub mod osmatrix;
pub mod table3;
