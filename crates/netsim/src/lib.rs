//! # liberate-netsim
//!
//! A deterministic discrete-event network simulator: the substrate on which
//! the lib·erate reproduction runs its experiments.
//!
//! The topology is always `client — [path elements] — server`:
//!
//! - the **client** is script-driven (lib·erate's replay/deploy engines
//!   inject raw wire packets, mirroring the raw-socket control the real
//!   tool has);
//! - **path elements** are router hops ([`hop::RouterHop`]: TTL decrement,
//!   ICMP Time Exceeded, malformed-packet filters, fragment normalization),
//!   shapers ([`shaper::LinkShaper`]), and — from the `liberate-dpi`
//!   crate — DPI middleboxes and transparent proxies;
//! - the **server** ([`server::ServerHost`]) is a faithful endpoint: an IP
//!   layer applying a per-OS validation profile ([`os::OsProfile`], encoding
//!   Table 3's Linux/macOS/Windows differences), fragment reassembly, and
//!   honest TCP/UDP stacks feeding a pluggable [`server::ServerApp`].
//!
//! Everything runs on a virtual clock ([`time::SimTime`]) so second- and
//! minute-scale phenomena (classifier flush timeouts, time-of-day load)
//! reproduce instantly and deterministically. Capture taps
//! ([`capture::Capture`]) provide the tcpdump-equivalent observations the
//! paper's RS? column relies on, exportable as pcap.

pub mod blueprint;
pub mod capture;
pub mod element;
pub mod filter;
pub mod firewall;
pub mod hop;
pub mod icmp;
pub mod network;
pub mod os;
pub mod server;
pub mod shaper;
pub mod stats;
pub mod time;

pub mod prelude {
    pub use crate::blueprint::{ElementFactory, NetworkBlueprint};
    pub use crate::capture::{Capture, CaptureRecord, TapPoint};
    pub use crate::element::{Effects, PathElement, TimedPacket, Verdict};
    pub use crate::filter::{FilterPolicy, FragmentHandling};
    pub use crate::firewall::StatefulFirewall;
    pub use crate::hop::RouterHop;
    pub use crate::icmp::{parse_icmp_error, IcmpError};
    pub use crate::network::Network;
    pub use crate::os::{OsAction, OsKind, OsProfile};
    pub use crate::server::{EchoApp, ServerApp, ServerHost, SinkApp, SERVER_MSS};
    pub use crate::shaper::{LinkShaper, TokenBucket};
    pub use crate::stats::ThroughputMeter;
    pub use crate::time::SimTime;
}
