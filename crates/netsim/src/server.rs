//! The server endpoint: an IP layer applying an [`OsProfile`], plus small
//! but honest TCP and UDP stacks, plus a pluggable [`ServerApp`].
//!
//! This plays the role of the paper's *replay server* (and of unmodified
//! application servers in deployment mode). It is deliberately a faithful
//! endpoint: out-of-order segments are reassembled, out-of-window data is
//! discarded, fragments are reassembled — because lib·erate's techniques
//! work precisely when the middlebox's view diverges from this endpoint
//! view.

use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

use liberate_packet::buf::{PacketBuf, WireBytes};
use liberate_packet::flow::FlowKey;
use liberate_packet::fragment::{OverlapPolicy, Reassembler};
use liberate_packet::ipv4::ParsedIpv4;
use liberate_packet::packet::{Packet, ParsedPacket, ParsedTransport};
use liberate_packet::tcp::TcpFlags;
use liberate_packet::validate::validate_wire;

use crate::os::{OsAction, OsProfile};
use crate::time::SimTime;

/// Maximum segment size used when the server segments responses.
pub const SERVER_MSS: usize = 1460;

/// Application logic running on the server.
///
/// `Send` for the same reason as [`crate::element::PathElement`]: worker
/// networks (server included) run on pool threads.
pub trait ServerApp: Send {
    /// In-order TCP bytes delivered on `flow` (the client→server key).
    /// Returns response bytes to send back (may be empty).
    fn on_tcp_data(&mut self, flow: FlowKey, data: &[u8]) -> Vec<u8>;

    /// A UDP datagram arrived. Returns zero or more response datagrams.
    fn on_udp_datagram(&mut self, flow: FlowKey, data: &[u8]) -> Vec<Vec<u8>>;

    /// A new TCP connection completed its handshake.
    fn on_tcp_connect(&mut self, _flow: FlowKey) {}

    /// A TCP connection closed (FIN or RST).
    fn on_tcp_close(&mut self, _flow: FlowKey) {}

    /// Downcasting hook for test harnesses that need to inspect a
    /// concrete app after a run. Defaults to `None`.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// An app that acknowledges everything and answers nothing.
#[derive(Debug, Default)]
pub struct SinkApp {
    pub tcp_bytes: Vec<u8>,
    pub datagrams: Vec<Vec<u8>>,
}

impl ServerApp for SinkApp {
    fn on_tcp_data(&mut self, _flow: FlowKey, data: &[u8]) -> Vec<u8> {
        self.tcp_bytes.extend_from_slice(data);
        Vec::new()
    }

    fn on_udp_datagram(&mut self, _flow: FlowKey, data: &[u8]) -> Vec<Vec<u8>> {
        self.datagrams.push(data.to_vec());
        Vec::new()
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// An app that echoes whatever it receives.
#[derive(Debug, Default)]
pub struct EchoApp;

impl ServerApp for EchoApp {
    fn on_tcp_data(&mut self, _flow: FlowKey, data: &[u8]) -> Vec<u8> {
        data.to_vec()
    }

    fn on_udp_datagram(&mut self, _flow: FlowKey, data: &[u8]) -> Vec<Vec<u8>> {
        vec![data.to_vec()]
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TcpState {
    SynReceived,
    Established,
    Closed,
}

struct TcpConn {
    state: TcpState,
    /// Next sequence number expected from the client.
    rcv_next: u32,
    /// Next sequence number the server will send.
    snd_next: u32,
    /// Out-of-order segments keyed by sequence number; shared views of
    /// the wire buffers they arrived in.
    ooo: BTreeMap<u32, PacketBuf>,
    /// Total in-order bytes delivered to the app.
    delivered: u64,
}

/// Receive window the stack advertises/enforces; data beyond
/// `rcv_next + window` is discarded as out-of-window (this is what makes
/// "wrong sequence number" packets inert at the endpoint).
const RECV_WINDOW: u32 = 65_535;

fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// The server host.
pub struct ServerHost {
    pub addr: Ipv4Addr,
    pub os: OsProfile,
    app: Box<dyn ServerApp>,
    conns: HashMap<FlowKey, TcpConn>,
    reassembler: Reassembler,
    isn_counter: u32,
    /// Packets the server wants transmitted (toward the client).
    outbox: Vec<Vec<u8>>,
    /// Count of packets the OS layer dropped, by cause, for diagnostics.
    pub os_dropped: u64,
}

impl ServerHost {
    pub fn new(addr: Ipv4Addr, os: OsProfile, app: Box<dyn ServerApp>) -> ServerHost {
        ServerHost {
            addr,
            os,
            app,
            conns: HashMap::new(),
            reassembler: Reassembler::new(OverlapPolicy::FirstWins),
            isn_counter: 0x1000,
            outbox: Vec::new(),
            os_dropped: 0,
        }
    }

    /// Replace the application.
    pub fn set_app(&mut self, app: Box<dyn ServerApp>) {
        self.app = app;
    }

    /// Access the app for inspection in tests (downcast by the caller).
    pub fn app_mut(&mut self) -> &mut dyn ServerApp {
        self.app.as_mut()
    }

    /// Number of live TCP connections.
    pub fn connection_count(&self) -> usize {
        self.conns
            .values()
            .filter(|c| c.state != TcpState::Closed)
            .count()
    }

    /// Total in-order bytes delivered to the app on `flow`.
    pub fn delivered_bytes(&self, flow: &FlowKey) -> u64 {
        self.conns.get(flow).map(|c| c.delivered).unwrap_or(0)
    }

    /// Drain packets queued for transmission toward the client.
    pub fn take_outbox(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.outbox)
    }

    /// Drop all connection state for flows originating at `client`.
    /// Reactor-mode sessions mux many client addresses through one host;
    /// evicting a finished client's conns bounds endpoint memory.
    pub fn evict_client(&mut self, client: Ipv4Addr) {
        self.conns.retain(|flow, _| flow.src != client);
    }

    /// Receive one wire packet at the server NIC. `_now` is kept for
    /// symmetry with path elements (the stack itself is time-free).
    /// Accepts any [`WireBytes`] input; [`PacketBuf`] callers (the wire
    /// path) are ingested as shared views without copying.
    pub fn receive<W: WireBytes + ?Sized>(&mut self, _now: SimTime, wire: &W) {
        // IP-level reassembly first: all tested OSes reassemble fragments.
        // A header-only probe decides; the full parse happens once below.
        let Some(ip_probe) = ParsedIpv4::parse(wire.wire()) else {
            self.os_dropped += 1;
            return;
        };
        let whole: PacketBuf = if ip_probe.is_fragment() {
            match self.reassembler.push(wire.wire()) {
                Some(w) => PacketBuf::from(w),
                None => return, // awaiting more fragments
            }
        } else {
            wire.tail_view(0)
        };

        let defects = validate_wire(&whole);
        let Some(pkt) = ParsedPacket::parse(&whole) else {
            self.os_dropped += 1;
            return;
        };
        if pkt.ip.dst != self.addr {
            self.os_dropped += 1;
            return;
        }

        match self.os.action(&defects) {
            OsAction::Drop => {
                self.os_dropped += 1;
            }
            OsAction::RstResponse => {
                self.os_dropped += 1;
                if let Some(t) = pkt.tcp() {
                    let rst = Packet::tcp(
                        self.addr,
                        pkt.ip.src,
                        t.dst_port,
                        t.src_port,
                        t.ack,
                        t.seq.wrapping_add(pkt.payload.len() as u32),
                        Vec::new(),
                    )
                    .with_flags(TcpFlags::RST);
                    self.outbox.push(rst.serialize());
                }
            }
            OsAction::Deliver => self.deliver(&pkt, None),
            OsAction::DeliverTruncated => {
                let claim = pkt
                    .udp()
                    .map(|u| u.claimed_payload_len())
                    .unwrap_or(pkt.payload.len());
                self.deliver(&pkt, Some(claim));
            }
        }
    }

    fn deliver(&mut self, pkt: &ParsedPacket, truncate_to: Option<usize>) {
        match &pkt.transport {
            ParsedTransport::Tcp(_) => self.deliver_tcp(pkt),
            ParsedTransport::Udp(_) => self.deliver_udp(pkt, truncate_to),
            ParsedTransport::Other(_) => {
                // ICMP and unknown protocols are accepted silently.
            }
        }
    }

    fn deliver_udp(&mut self, pkt: &ParsedPacket, truncate_to: Option<usize>) {
        let Some(flow) = FlowKey::from_packet(pkt) else {
            return;
        };
        // A (possibly truncated) view of the datagram bytes — no copy.
        let data = match truncate_to {
            Some(n) => pkt.payload.slice(..n.min(pkt.payload.len())),
            // lint: allow(payload-copy) refcount bump on the shared view
            None => pkt.payload.clone(),
        };
        for resp in self.app.on_udp_datagram(flow, &data) {
            let out = Packet::udp(self.addr, flow.src, flow.dst_port, flow.src_port, resp);
            self.outbox.push(out.serialize());
        }
    }

    fn deliver_tcp(&mut self, pkt: &ParsedPacket) {
        let Some(flow) = FlowKey::from_packet(pkt) else {
            return;
        };
        let t = pkt.tcp().expect("checked by caller");
        let flags = t.flags;

        if flags.rst {
            if let Some(conn) = self.conns.get_mut(&flow) {
                conn.state = TcpState::Closed;
                self.app.on_tcp_close(flow);
            }
            return;
        }

        if flags.syn && !flags.ack {
            // New connection (or SYN retransmit): reply SYN-ACK.
            self.isn_counter = self.isn_counter.wrapping_add(64_000);
            let isn = self.isn_counter;
            let conn = TcpConn {
                state: TcpState::SynReceived,
                rcv_next: t.seq.wrapping_add(1),
                snd_next: isn.wrapping_add(1),
                ooo: BTreeMap::new(),
                delivered: 0,
            };
            self.conns.insert(flow, conn);
            let syn_ack = Packet::tcp(
                self.addr,
                flow.src,
                flow.dst_port,
                flow.src_port,
                isn,
                t.seq.wrapping_add(1),
                Vec::new(),
            )
            .with_flags(TcpFlags::SYN_ACK);
            self.outbox.push(syn_ack.serialize());
            return;
        }

        let Some(conn) = self.conns.get_mut(&flow) else {
            // Data for an unknown connection: answer with RST (standard).
            let rst = Packet::tcp(
                self.addr,
                flow.src,
                flow.dst_port,
                flow.src_port,
                t.ack,
                t.seq.wrapping_add(pkt.payload.len() as u32),
                Vec::new(),
            )
            .with_flags(TcpFlags::RST);
            self.outbox.push(rst.serialize());
            return;
        };
        if conn.state == TcpState::Closed {
            return;
        }
        if conn.state == TcpState::SynReceived && flags.ack {
            conn.state = TcpState::Established;
            self.app.on_tcp_connect(flow);
        }

        // Data handling with sequence reassembly.
        if !pkt.payload.is_empty() {
            let seg_seq = t.seq;
            let seg_end = seg_seq.wrapping_add(pkt.payload.len() as u32);
            let conn = self.conns.get_mut(&flow).expect("present");
            let window_end = conn.rcv_next.wrapping_add(RECV_WINDOW);

            if seq_le(seg_end, conn.rcv_next) || !seq_lt(seg_seq, window_end) {
                // Entirely old, or beyond the window: discard, re-ACK.
                let rcv_next = conn.rcv_next;
                let snd_next = conn.snd_next;
                self.send_ack(flow, snd_next, rcv_next);
                return;
            }

            // Trim any portion before rcv_next (retransmitted overlap) by
            // re-slicing the shared view — no copy.
            // lint: allow(payload-copy) refcount bump on the shared view
            let mut data = pkt.payload.clone();
            let mut start = seg_seq;
            if seq_lt(seg_seq, conn.rcv_next) {
                let skip = conn.rcv_next.wrapping_sub(seg_seq) as usize;
                data = data.slice(skip.min(data.len())..);
                start = conn.rcv_next;
            }
            // First-wins against already-buffered out-of-order data.
            conn.ooo.entry(start).or_insert(data);

            // Drain contiguous data.
            let mut delivered = Vec::new();
            loop {
                let Some((&s, _)) = conn
                    .ooo
                    .iter()
                    .find(|(&s, d)| {
                        seq_le(s, conn.rcv_next)
                            && seq_lt(conn.rcv_next, s.wrapping_add(d.len() as u32))
                            || s == conn.rcv_next
                    })
                    .map(|(s, d)| (s, d))
                else {
                    break;
                };
                let seg = conn.ooo.remove(&s).expect("present");
                let skip = conn.rcv_next.wrapping_sub(s) as usize;
                if skip < seg.len() {
                    delivered.extend_from_slice(&seg[skip..]);
                    conn.rcv_next = s.wrapping_add(seg.len() as u32);
                }
            }
            // Evict stale buffered segments that fell behind rcv_next.
            let rcv_next = conn.rcv_next;
            conn.ooo
                .retain(|&s, d| !seq_le(s.wrapping_add(d.len() as u32), rcv_next));

            if !delivered.is_empty() {
                conn.delivered += delivered.len() as u64;
                let snd_before = conn.snd_next;
                let rcv_now = conn.rcv_next;
                let response = self.app.on_tcp_data(flow, &delivered);
                let conn = self.conns.get_mut(&flow).expect("present");
                if response.is_empty() {
                    self.send_ack(flow, snd_before, rcv_now);
                } else {
                    // Segment the response at MSS.
                    let mut seq = conn.snd_next;
                    for chunk in response.chunks(SERVER_MSS) {
                        let seg = Packet::tcp(
                            self.addr,
                            flow.src,
                            flow.dst_port,
                            flow.src_port,
                            seq,
                            rcv_now,
                            chunk.to_vec(),
                        )
                        .with_flags(TcpFlags::PSH_ACK);
                        self.outbox.push(seg.serialize());
                        seq = seq.wrapping_add(chunk.len() as u32);
                    }
                    conn.snd_next = seq;
                }
            } else {
                // Out-of-order: duplicate ACK.
                let conn = self.conns.get_mut(&flow).expect("present");
                let (s, r) = (conn.snd_next, conn.rcv_next);
                self.send_ack(flow, s, r);
            }
        }

        if flags.fin {
            let conn = self.conns.get_mut(&flow).expect("present");
            conn.rcv_next = conn.rcv_next.wrapping_add(1);
            conn.state = TcpState::Closed;
            let (s, r) = (conn.snd_next, conn.rcv_next);
            self.app.on_tcp_close(flow);
            // ACK the FIN and send our own FIN.
            let fin = Packet::tcp(
                self.addr,
                flow.src,
                flow.dst_port,
                flow.src_port,
                s,
                r,
                vec![],
            )
            .with_flags(TcpFlags::FIN_ACK);
            self.outbox.push(fin.serialize());
        }
    }

    fn send_ack(&mut self, flow: FlowKey, seq: u32, ack: u32) {
        let pkt = Packet::tcp(
            self.addr,
            flow.src,
            flow.dst_port,
            flow.src_port,
            seq,
            ack,
            Vec::new(),
        )
        .with_flags(TcpFlags::ACK);
        self.outbox.push(pkt.serialize());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);

    fn host() -> ServerHost {
        ServerHost::new(SERVER, OsProfile::linux(), Box::<EchoApp>::default())
    }

    fn syn(seq: u32) -> Vec<u8> {
        Packet::tcp(CLIENT, SERVER, 40000, 80, seq, 0, vec![])
            .with_flags(TcpFlags::SYN)
            .serialize()
    }

    fn data(seq: u32, ack: u32, payload: &[u8]) -> Vec<u8> {
        Packet::tcp(CLIENT, SERVER, 40000, 80, seq, ack, payload.to_vec()).serialize()
    }

    fn handshake(h: &mut ServerHost) -> (u32, u32) {
        h.receive(SimTime::ZERO, &syn(999));
        let out = h.take_outbox();
        assert_eq!(out.len(), 1);
        let sa = ParsedPacket::parse(&out[0]).unwrap();
        let t = sa.tcp().unwrap();
        assert!(t.flags.syn && t.flags.ack);
        assert_eq!(t.ack, 1000);
        (1000, t.seq.wrapping_add(1)) // (client seq, server seq next)
    }

    #[test]
    fn handshake_and_echo() {
        let mut h = host();
        let (cseq, _sseq) = handshake(&mut h);
        h.receive(SimTime::ZERO, &data(cseq, 1, b"hello"));
        let out = h.take_outbox();
        assert_eq!(out.len(), 1);
        let resp = ParsedPacket::parse(&out[0]).unwrap();
        assert_eq!(resp.payload, b"hello");
        assert_eq!(h.connection_count(), 1);
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        let mut h = host();
        let (cseq, _) = handshake(&mut h);
        // Send "world" (seq+5) before "hello" (seq).
        h.receive(SimTime::ZERO, &data(cseq + 5, 1, b"world"));
        let dup_ack = h.take_outbox();
        assert_eq!(dup_ack.len(), 1);
        let p = ParsedPacket::parse(&dup_ack[0]).unwrap();
        assert!(p.payload.is_empty());
        assert_eq!(p.tcp().unwrap().ack, cseq); // still waiting

        h.receive(SimTime::ZERO, &data(cseq, 1, b"hello"));
        let out = h.take_outbox();
        let resp = ParsedPacket::parse(&out[0]).unwrap();
        assert_eq!(resp.payload, b"helloworld");
    }

    #[test]
    fn wrong_sequence_number_is_inert() {
        let mut h = host();
        let (cseq, _) = handshake(&mut h);
        // Far-future sequence number: outside the receive window.
        h.receive(
            SimTime::ZERO,
            &data(cseq.wrapping_add(1_000_000), 1, b"EVIL"),
        );
        let out = h.take_outbox();
        // Re-ACK only; nothing delivered.
        assert_eq!(out.len(), 1);
        assert!(ParsedPacket::parse(&out[0]).unwrap().payload.is_empty());
        // Real data still flows at the expected sequence number.
        h.receive(SimTime::ZERO, &data(cseq, 1, b"real"));
        let out = h.take_outbox();
        assert_eq!(ParsedPacket::parse(&out[0]).unwrap().payload, b"real");
    }

    #[test]
    fn retransmission_overlap_is_trimmed() {
        let mut h = host();
        let (cseq, _) = handshake(&mut h);
        h.receive(SimTime::ZERO, &data(cseq, 1, b"abcd"));
        h.take_outbox();
        // Retransmit "abcd" plus new "ef": only "ef" is new.
        h.receive(SimTime::ZERO, &data(cseq, 1, b"abcdef"));
        let out = h.take_outbox();
        assert_eq!(ParsedPacket::parse(&out[0]).unwrap().payload, b"ef");
    }

    #[test]
    fn rst_closes_connection() {
        let mut h = host();
        let (cseq, _) = handshake(&mut h);
        let rst = Packet::tcp(CLIENT, SERVER, 40000, 80, cseq, 1, vec![])
            .with_flags(TcpFlags::RST)
            .serialize();
        h.receive(SimTime::ZERO, &rst);
        assert_eq!(h.connection_count(), 0);
    }

    #[test]
    fn fin_acked_and_closed() {
        let mut h = host();
        let (cseq, _) = handshake(&mut h);
        let fin = Packet::tcp(CLIENT, SERVER, 40000, 80, cseq, 1, vec![])
            .with_flags(TcpFlags::FIN_ACK)
            .serialize();
        h.receive(SimTime::ZERO, &fin);
        let out = h.take_outbox();
        assert_eq!(out.len(), 1);
        let p = ParsedPacket::parse(&out[0]).unwrap();
        assert!(p.tcp().unwrap().flags.fin);
        assert_eq!(h.connection_count(), 0);
    }

    #[test]
    fn malformed_packets_dropped_by_os() {
        let mut h = host();
        let (cseq, _) = handshake(&mut h);
        let mut evil = Packet::tcp(CLIENT, SERVER, 40000, 80, cseq, 1, &b"EVIL"[..]);
        evil.tcp_mut().checksum = liberate_packet::checksum::ChecksumSpec::Fixed(7);
        h.receive(SimTime::ZERO, &evil.serialize());
        assert!(h.take_outbox().is_empty());
        assert_eq!(h.os_dropped, 1);
        // The stream is uncorrupted.
        h.receive(SimTime::ZERO, &data(cseq, 1, b"ok"));
        let out = h.take_outbox();
        assert_eq!(ParsedPacket::parse(&out[0]).unwrap().payload, b"ok");
    }

    #[test]
    fn windows_rsts_on_xmas_flags() {
        let mut h = ServerHost::new(SERVER, OsProfile::windows(), Box::<EchoApp>::default());
        h.receive(SimTime::ZERO, &syn(0));
        h.take_outbox();
        let mut p = Packet::tcp(CLIENT, SERVER, 40000, 80, 1, 1, &b"X"[..]);
        p.tcp_mut().flags = TcpFlags::XMAS;
        h.receive(SimTime::ZERO, &p.serialize());
        let out = h.take_outbox();
        assert_eq!(out.len(), 1);
        assert!(
            ParsedPacket::parse(&out[0])
                .unwrap()
                .tcp()
                .unwrap()
                .flags
                .rst
        );
    }

    #[test]
    fn fragments_reassembled_before_delivery() {
        let mut h = host();
        let (cseq, _) = handshake(&mut h);
        let whole = data(cseq, 1, &[b'z'; 100]);
        let frags = liberate_packet::fragment::fragment_packet(&whole, 48);
        assert!(frags.len() > 1);
        for f in &frags {
            h.receive(SimTime::ZERO, f);
        }
        let out = h.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(
            ParsedPacket::parse(&out[0]).unwrap().payload,
            vec![b'z'; 100]
        );
    }

    #[test]
    fn data_to_unknown_connection_gets_rst() {
        let mut h = host();
        h.receive(SimTime::ZERO, &data(5, 1, b"orphan"));
        let out = h.take_outbox();
        assert!(
            ParsedPacket::parse(&out[0])
                .unwrap()
                .tcp()
                .unwrap()
                .flags
                .rst
        );
    }

    #[test]
    fn udp_echo_and_sink() {
        let mut h = host();
        let dgram = Packet::udp(CLIENT, SERVER, 5000, 53, &b"ping"[..]).serialize();
        h.receive(SimTime::ZERO, &dgram);
        let out = h.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(ParsedPacket::parse(&out[0]).unwrap().payload, b"ping");
    }

    #[test]
    fn linux_truncates_short_udp() {
        let mut h = host();
        let mut p = Packet::udp(CLIENT, SERVER, 5000, 53, &b"secret-data"[..]);
        p.udp_mut().length = Some(8 + 6);
        h.receive(SimTime::ZERO, &p.serialize());
        let out = h.take_outbox();
        assert_eq!(ParsedPacket::parse(&out[0]).unwrap().payload, b"secret");
    }

    #[test]
    fn large_response_is_segmented() {
        let mut h = host();
        let (cseq, _) = handshake(&mut h);
        // Echo app: send 4000 bytes, receive 3 segments.
        h.receive(SimTime::ZERO, &data(cseq, 1, &vec![b'q'; 4000]));
        let out = h.take_outbox();
        assert_eq!(out.len(), 3);
        let total: usize = out
            .iter()
            .map(|w| ParsedPacket::parse(w).unwrap().payload.len())
            .sum();
        assert_eq!(total, 4000);
        // Sequence numbers are contiguous.
        let p0 = ParsedPacket::parse(&out[0]).unwrap();
        let p1 = ParsedPacket::parse(&out[1]).unwrap();
        assert_eq!(
            p0.tcp().unwrap().seq.wrapping_add(p0.payload.len() as u32),
            p1.tcp().unwrap().seq
        );
    }
}
