//! Per-hop filtering of malformed packets.
//!
//! §7 of the paper ("Impact of filtering"): *"many of the inert packets that
//! worked in our testbed were dropped in every operational network we
//! tested... likely due to routers and/or firewalls that drop malformed
//! packets."* Whether a crafted packet survives to the middlebox — and
//! whether it then survives to the server — is decided by these policies,
//! which is exactly what the RS? column of Table 3 measures.

use liberate_packet::validate::{validate_wire, Malformation, MalformationSet};

/// What a path element does with IP fragments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FragmentHandling {
    /// Forward fragments untouched.
    #[default]
    Pass,
    /// Reassemble and forward the whole datagram (observed in the testbed,
    /// T-Mobile, and China: Table 3 footnote 2).
    Reassemble,
    /// Drop all fragments (observed in Iran, §6.6).
    Drop,
}

/// Which malformations cause a router/firewall hop to drop a packet.
#[derive(Debug, Clone, Default)]
pub struct FilterPolicy {
    drops: MalformationSet,
    pub fragments: FragmentHandling,
}

impl FilterPolicy {
    /// Forward everything (lab testbed switch).
    pub fn permissive() -> FilterPolicy {
        FilterPolicy::default()
    }

    /// Drop on the listed malformations.
    pub fn dropping(malformations: impl IntoIterator<Item = Malformation>) -> FilterPolicy {
        FilterPolicy {
            drops: malformations.into_iter().collect(),
            fragments: FragmentHandling::Pass,
        }
    }

    /// Typical operational-core hygiene: drops packets that are not even
    /// structurally valid IP (bad version/IHL/length/checksum, unknown
    /// protocol), but forwards transport-level oddities.
    pub fn ip_hygiene() -> FilterPolicy {
        FilterPolicy::dropping([
            Malformation::IpVersionInvalid,
            Malformation::IpHeaderLengthInvalid,
            Malformation::IpTotalLengthLong,
            Malformation::IpTotalLengthShort,
            Malformation::IpChecksumWrong,
        ])
    }

    /// Aggressive cellular-gateway normalization: everything in
    /// [`FilterPolicy::ip_hygiene`] plus transport-checksum and header validation. This is
    /// the behaviour implied by T-Mobile's RS? column, where nearly every
    /// inert packet died in-network.
    pub fn strict_normalizer() -> FilterPolicy {
        FilterPolicy::dropping([
            Malformation::IpVersionInvalid,
            Malformation::IpHeaderLengthInvalid,
            Malformation::IpTotalLengthLong,
            Malformation::IpTotalLengthShort,
            Malformation::IpChecksumWrong,
            Malformation::TcpChecksumWrong,
            Malformation::TcpDataOffsetInvalid,
            Malformation::TcpFlagsInvalid,
            Malformation::TcpAckFlagMissing,
            Malformation::UdpChecksumWrong,
            Malformation::UdpLengthLong,
            Malformation::UdpLengthShort,
        ])
    }

    /// Add IP-option filtering (drops both invalid and deprecated options).
    pub fn also_dropping(
        mut self,
        malformations: impl IntoIterator<Item = Malformation>,
    ) -> FilterPolicy {
        self.drops.extend(malformations);
        self
    }

    /// Set the fragment handling mode.
    pub fn with_fragments(mut self, fragments: FragmentHandling) -> FilterPolicy {
        self.fragments = fragments;
        self
    }

    /// Whether `wire` should be dropped under this policy.
    pub fn should_drop(&self, wire: &[u8]) -> bool {
        if self.drops.is_empty() {
            return false;
        }
        !self.drops.is_disjoint(&validate_wire(wire))
    }

    /// Whether `wire`'s defect set intersects this policy.
    pub fn matches(&self, defects: &MalformationSet) -> bool {
        !self.drops.is_disjoint(defects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberate_packet::checksum::ChecksumSpec;
    use liberate_packet::packet::Packet;
    use std::net::Ipv4Addr;

    fn tcp_packet() -> Packet {
        Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            4000,
            80,
            1,
            1,
            &b"GET /"[..],
        )
    }

    #[test]
    fn permissive_forwards_garbage() {
        let mut p = tcp_packet();
        p.ip.checksum = ChecksumSpec::Fixed(0);
        p.ip.version = 9;
        assert!(!FilterPolicy::permissive().should_drop(&p.serialize()));
    }

    #[test]
    fn hygiene_drops_bad_ip_but_not_bad_tcp() {
        let policy = FilterPolicy::ip_hygiene();
        let mut bad_ip = tcp_packet();
        bad_ip.ip.checksum = ChecksumSpec::Fixed(0x1234);
        assert!(policy.should_drop(&bad_ip.serialize()));

        let mut bad_tcp = tcp_packet();
        bad_tcp.tcp_mut().checksum = ChecksumSpec::Fixed(0x1234);
        assert!(!policy.should_drop(&bad_tcp.serialize()));
    }

    #[test]
    fn strict_normalizer_drops_bad_tcp() {
        let mut bad_tcp = tcp_packet();
        bad_tcp.tcp_mut().checksum = ChecksumSpec::Fixed(0x1234);
        assert!(FilterPolicy::strict_normalizer().should_drop(&bad_tcp.serialize()));
        // A clean packet still passes.
        assert!(!FilterPolicy::strict_normalizer().should_drop(&tcp_packet().serialize()));
    }

    #[test]
    fn also_dropping_extends() {
        use liberate_packet::validate::Malformation::*;
        let policy = FilterPolicy::ip_hygiene().also_dropping([IpOptionsDeprecated]);
        let mut p = tcp_packet();
        p.ip.options = vec![liberate_packet::ipv4::IpOption::StreamId(1)];
        assert!(policy.should_drop(&p.serialize()));
    }
}
