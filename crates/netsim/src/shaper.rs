//! Rate limiting: a token-bucket model used both for access-link capacity
//! and for middlebox throttling actions (AT&T's 1.5 Mbps Stream Saver cap,
//! T-Mobile's Binge On video throttle).

use std::time::Duration;

use liberate_packet::flow::Direction;

use crate::element::{Effects, PacketBuf, PathElement, TimedPacket, Verdict};
use crate::time::SimTime;

/// A byte-based token bucket. Tokens accrue at `rate_bps / 8` bytes per
/// second up to `burst_bytes`; a packet of `n` bytes departs as soon as `n`
/// tokens are available, FIFO.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bytes_per_sec: f64,
    burst_bytes: f64,
    tokens: f64,
    last_update: SimTime,
    /// Earliest time the next packet may depart (FIFO ordering).
    next_free: SimTime,
}

impl TokenBucket {
    pub fn new(rate_bps: u64, burst_bytes: u64) -> TokenBucket {
        TokenBucket {
            rate_bytes_per_sec: rate_bps as f64 / 8.0,
            burst_bytes: burst_bytes as f64,
            tokens: burst_bytes as f64,
            last_update: SimTime::ZERO,
            next_free: SimTime::ZERO,
        }
    }

    fn refill(&mut self, now: SimTime) {
        let dt = now.since(self.last_update).as_secs_f64();
        self.tokens = (self.tokens + dt * self.rate_bytes_per_sec).min(self.burst_bytes);
        self.last_update = now;
    }

    /// Departure time for a packet of `len` bytes arriving at `now`.
    pub fn schedule(&mut self, now: SimTime, len: usize) -> SimTime {
        let now = now.max(self.next_free);
        self.refill(now);
        let need = len as f64;
        let depart = if self.tokens >= need {
            self.tokens -= need;
            now
        } else {
            let wait = (need - self.tokens) / self.rate_bytes_per_sec;
            self.tokens = 0.0;
            self.last_update = now + Duration::from_secs_f64(wait);
            now + Duration::from_secs_f64(wait)
        };
        self.next_free = depart;
        depart
    }
}

/// A path element limiting throughput in one or both directions.
pub struct LinkShaper {
    name: String,
    downstream: TokenBucket,
    upstream: TokenBucket,
}

impl LinkShaper {
    /// Symmetric shaper at `rate_bps` with `burst_bytes` of depth.
    pub fn symmetric(name: impl Into<String>, rate_bps: u64, burst_bytes: u64) -> LinkShaper {
        LinkShaper {
            name: name.into(),
            downstream: TokenBucket::new(rate_bps, burst_bytes),
            upstream: TokenBucket::new(rate_bps, burst_bytes),
        }
    }
}

impl PathElement for LinkShaper {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn process(
        &mut self,
        now: SimTime,
        dir: Direction,
        wire: PacketBuf,
        _effects: &mut Effects,
    ) -> Verdict {
        let bucket = match dir {
            Direction::ClientToServer => &mut self.upstream,
            Direction::ServerToClient => &mut self.downstream,
        };
        let at = bucket.schedule(now, wire.len());
        Verdict::Forward(vec![TimedPacket { at, wire }])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_passes_instantly_then_paces() {
        // 8 kbps = 1000 bytes/s, burst 1000 bytes.
        let mut tb = TokenBucket::new(8_000, 1000);
        let t0 = SimTime::from_secs(1);
        // First 1000 bytes: instantaneous (burst).
        assert_eq!(tb.schedule(t0, 1000), t0);
        // Next 500 bytes must wait 0.5 s for tokens.
        let d = tb.schedule(t0, 500);
        assert_eq!(d.as_micros(), 1_500_000);
        // FIFO: a later tiny packet departs no earlier than the previous.
        let d2 = tb.schedule(t0, 1);
        assert!(d2 >= d);
    }

    #[test]
    fn tokens_refill_over_time() {
        let mut tb = TokenBucket::new(8_000, 1000);
        assert_eq!(tb.schedule(SimTime::ZERO, 1000), SimTime::ZERO);
        // After 2 s the bucket is full again (capped at burst).
        let t = SimTime::from_secs(3);
        assert_eq!(tb.schedule(t, 1000), t);
    }

    #[test]
    fn sustained_rate_is_respected() {
        // 1 Mbps, minimal burst; sending 1 MB should take ~8 s.
        let mut tb = TokenBucket::new(1_000_000, 1500);
        let mut last = SimTime::ZERO;
        for _ in 0..667 {
            last = tb.schedule(SimTime::ZERO, 1500);
        }
        let secs = last.as_secs_f64();
        assert!((secs - 8.0).abs() < 0.1, "took {secs}");
    }

    #[test]
    fn shaper_directions_independent() {
        let mut s = LinkShaper::symmetric("s", 8_000, 100);
        let mut fx = Effects::default();
        // Exhaust upstream.
        let v = s.process(
            SimTime::ZERO,
            Direction::ClientToServer,
            vec![0; 100].into(),
            &mut fx,
        );
        match v {
            Verdict::Forward(p) => assert_eq!(p[0].at, SimTime::ZERO),
            _ => panic!(),
        }
        // Downstream still has its own burst.
        let v = s.process(
            SimTime::ZERO,
            Direction::ServerToClient,
            vec![0; 100].into(),
            &mut fx,
        );
        match v {
            Verdict::Forward(p) => assert_eq!(p[0].at, SimTime::ZERO),
            _ => panic!(),
        }
    }
}
