//! The path-element abstraction: anything sitting between the client and
//! the server — router hops, normalizing gateways, shapers, and (from the
//! `liberate-dpi` crate) DPI middleboxes and transparent proxies.
//!
//! The verdict vocabulary ([`Verdict`], [`Effects`], [`TimedPacket`])
//! moved to the backend-neutral `liberate-substrate` crate and is
//! re-exported here; the [`PathElement`] trait itself is simulator-only
//! (real-wire backends have no element chain to walk).

use std::sync::Arc;

use liberate_obs::Journal;
use liberate_packet::flow::Direction;

use crate::time::SimTime;

pub use liberate_substrate::buf::{CopyTally, PacketBuf};
pub use liberate_substrate::verdict::{Effects, TimedPacket, Verdict};

/// An element on the client-to-server path.
///
/// `Send` so a worker session's whole `Network` can move to (or be
/// borrowed by) a pool thread; elements hold plain data or `Arc`s of
/// sync state, never thread-bound handles.
pub trait PathElement: Send {
    /// Short name for traces and captures.
    fn name(&self) -> &str;

    /// Downcasting hook so orchestration code can reach a concrete element
    /// (e.g. the testbed reads its DPI device's classification directly,
    /// §6.1: "the middlebox shows the result of classification immediately").
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Process one packet traveling in `dir`. `now` is the element-local
    /// arrival time. The wire buffer is a shared [`PacketBuf`] view:
    /// pass-through elements forward it untouched (a move), mutating
    /// elements go through [`PacketBuf::make_mut`] copy-on-write.
    fn process(
        &mut self,
        now: SimTime,
        dir: Direction,
        wire: PacketBuf,
        effects: &mut Effects,
    ) -> Verdict;

    /// Whether this element decrements the IP TTL (router hops do; DPI
    /// devices and shapers are transparent).
    fn decrements_ttl(&self) -> bool {
        false
    }

    /// Hand the element a journal handle for verdict/flow events. Most
    /// elements ignore it; the DPI device keeps a clone.
    fn attach_journal(&mut self, _journal: &Arc<Journal>) {}
}
