//! Capture taps: the simulator's tcpdump — moved to the backend-neutral
//! `liberate-substrate` crate (the RS? vantage exists on every backend);
//! re-exported here so simulator-facing code keeps its paths.

pub use liberate_substrate::capture::*;
