//! The network fabric: a deterministic discrete-event loop moving wire
//! packets from the client through an ordered chain of path elements to the
//! server and back.
//!
//! The client side is *script-driven* (lib·erate's replay and deployment
//! engines inject raw packets and inspect what comes back — mirroring the
//! raw-socket control the real tool has), while the server side runs the
//! full endpoint stack from [`crate::server`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Duration;

use liberate_obs::{Counter, EventKind, Hist, Journal};
use liberate_packet::flow::Direction;

use crate::capture::{Capture, TapPoint};
use crate::element::{Effects, PacketBuf, PathElement, TimedPacket, Verdict};
use crate::server::ServerHost;
use crate::time::SimTime;

/// Hard cap on processed events per `run_until_idle`, guarding against a
/// misbehaving element ping-ponging packets forever.
const EVENT_BUDGET: u64 = 5_000_000;

struct Event {
    at: SimTime,
    seq: u64,
    /// Index of the next element to process this packet. For
    /// client-to-server travel, `elements.len()` means "deliver to server";
    /// for server-to-client, index 0 is processed last and then the packet
    /// is delivered to the client.
    pos: usize,
    dir: Direction,
    wire: PacketBuf,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The simulated network.
pub struct Network {
    pub clock: SimTime,
    events: BinaryHeap<Event>,
    next_seq: u64,
    elements: Vec<Box<dyn PathElement>>,
    pub server: ServerHost,
    pub client_addr: Ipv4Addr,
    /// Propagation latency added per element traversal.
    pub hop_latency: Duration,
    client_inbox: Vec<(SimTime, PacketBuf)>,
    pub capture: Capture,
    /// Shared observability journal; every simulator step and injected
    /// packet is counted here (timestamps are SimTime micros, never the
    /// wall clock).
    journal: Arc<Journal>,
    /// Sim timestamp of the last dispatched event, feeding the
    /// step-sim-micros inter-event-gap histogram.
    last_step_us: u64,
}

impl Network {
    pub fn new(
        client_addr: Ipv4Addr,
        elements: Vec<Box<dyn PathElement>>,
        server: ServerHost,
    ) -> Network {
        Network {
            clock: SimTime::ZERO,
            events: BinaryHeap::new(),
            next_seq: 0,
            elements,
            server,
            client_addr,
            hop_latency: Duration::from_millis(1),
            client_inbox: Vec::new(),
            capture: Capture::default(),
            journal: Arc::new(Journal::new()),
            last_step_us: 0,
        }
    }

    /// Replace the journal and propagate the handle to every path element.
    pub fn set_journal(&mut self, journal: Arc<Journal>) {
        for el in &mut self.elements {
            el.attach_journal(&journal);
        }
        self.journal = journal;
    }

    /// The shared observability journal.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.journal
    }

    /// Number of path elements.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Mutable access to a path element (for downcasting in experiments).
    pub fn element_mut(&mut self, index: usize) -> &mut dyn PathElement {
        self.elements[index].as_mut()
    }

    /// Find an element by name.
    pub fn element_index(&self, name: &str) -> Option<usize> {
        self.elements.iter().position(|e| e.name() == name)
    }

    /// Number of TTL-decrementing hops from the client up to but not
    /// including element `index` — what a probe's TTL must exceed to
    /// *reach* that element.
    pub fn ttl_hops_before(&self, index: usize) -> u8 {
        self.elements[..index]
            .iter()
            .filter(|e| e.decrements_ttl())
            .count() as u8
    }

    /// Total TTL-decrementing hops on the whole path.
    pub fn ttl_hops_total(&self) -> u8 {
        self.elements.iter().filter(|e| e.decrements_ttl()).count() as u8
    }

    fn push_event(&mut self, at: SimTime, pos: usize, dir: Direction, wire: PacketBuf) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(Event {
            at,
            seq,
            pos,
            dir,
            wire,
        });
    }

    /// Inject a packet from the client after `delay`.
    pub fn send_from_client(&mut self, delay: Duration, wire: Vec<u8>) {
        let at = self.clock + delay;
        let wire = PacketBuf::from(wire);
        self.capture.record(at, TapPoint::ClientEgress, &wire);
        self.journal.metrics.incr(Counter::PacketsInjected);
        self.journal.observe(Hist::InjectBytes, wire.len() as u64);
        self.journal.record(
            at.as_micros(),
            EventKind::PacketInjected {
                bytes: wire.len() as u64,
            },
        );
        self.push_event(at, 0, Direction::ClientToServer, wire);
    }

    /// Packets delivered to the client so far.
    pub fn client_inbox(&self) -> &[(SimTime, PacketBuf)] {
        &self.client_inbox
    }

    /// Drain the client inbox.
    pub fn take_client_inbox(&mut self) -> Vec<(SimTime, PacketBuf)> {
        std::mem::take(&mut self.client_inbox)
    }

    /// Advance the clock with no traffic (used by the pause-based flushing
    /// techniques). Processes any events scheduled within the window.
    pub fn advance(&mut self, d: Duration) {
        let target = self.clock + d;
        self.run_until(target);
        self.clock = target;
    }

    /// Process all events scheduled at or before `until`.
    pub fn run_until(&mut self, until: SimTime) {
        let mut budget = EVENT_BUDGET;
        while let Some(ev) = self.events.peek() {
            if ev.at > until {
                break;
            }
            let ev = self.events.pop().expect("peeked");
            self.clock = self.clock.max(ev.at);
            self.journal.metrics.incr(Counter::PacketsStepped);
            let now_us = self.clock.as_micros();
            self.journal.observe(
                Hist::StepSimMicros,
                now_us.saturating_sub(self.last_step_us),
            );
            self.last_step_us = now_us;
            self.dispatch(ev);
            budget -= 1;
            if budget == 0 {
                panic!("event budget exhausted: a path element is looping");
            }
        }
    }

    /// Process every pending event (the network quiesces because endpoints
    /// are reactive).
    pub fn run_until_idle(&mut self) {
        self.run_until(SimTime::from_micros(u64::MAX));
    }

    /// Whether any event is still queued. Lane swaps (below) are only
    /// legal on a quiescent network.
    pub fn is_idle(&self) -> bool {
        self.events.is_empty()
    }

    /// Restart the inter-event-gap baseline at the current clock, so the
    /// next dispatched event's `step-sim-micros` sample measures from
    /// *here* rather than from the previous activity burst. The replay
    /// engine calls this at the top of every replay, making the gap
    /// distribution a per-replay property — identical whether replays run
    /// back to back on one timeline or on interleaved reactor lanes.
    pub fn mark_step_epoch(&mut self) {
        self.last_step_us = self.clock.as_micros();
    }

    /// Exchange the per-lane virtual-timeline state — clock, step-epoch
    /// baseline, and capture buffer — with a reactor lane's stash. Only
    /// meaningful while the network is idle (event heap and client inbox
    /// drained): a quiesced network's *entire* mutable timeline state is
    /// exactly these three fields, which is what makes lane-virtualized
    /// replay (`liberate::reactor`) equivalent to sequential execution.
    pub fn swap_lane(
        &mut self,
        clock: &mut SimTime,
        step_epoch_us: &mut u64,
        capture: &mut Capture,
    ) {
        debug_assert!(self.events.is_empty(), "lane swap on a non-idle network");
        debug_assert!(
            self.client_inbox.is_empty(),
            "lane swap with undrained client inbox"
        );
        std::mem::swap(&mut self.clock, clock);
        std::mem::swap(&mut self.last_step_us, step_epoch_us);
        std::mem::swap(&mut self.capture, capture);
    }

    fn dispatch(&mut self, ev: Event) {
        let Event {
            at, pos, dir, wire, ..
        } = ev;
        match dir {
            Direction::ClientToServer => {
                if pos == self.elements.len() {
                    self.deliver_to_server(at, wire);
                    return;
                }
                self.traverse(at, pos, dir, wire);
            }
            Direction::ServerToClient => {
                // pos is the element index to process; after element 0 the
                // packet is delivered to the client. We encode "deliver to
                // client" as pos == usize::MAX (wrapped below zero).
                if pos == usize::MAX {
                    self.capture.record(at, TapPoint::ClientIngress, &wire);
                    self.client_inbox.push((at, wire));
                    return;
                }
                self.traverse(at, pos, dir, wire);
            }
        }
    }

    fn traverse(&mut self, at: SimTime, pos: usize, dir: Direction, wire: PacketBuf) {
        let mut effects = Effects::default();
        let verdict = self.elements[pos].process(at, dir, wire, &mut effects);

        // Injected packets enter the path adjacent to this element.
        let Effects {
            toward_client,
            toward_server,
        } = effects;
        for TimedPacket { at: t, wire } in toward_client {
            let next = pos.checked_sub(1).unwrap_or(usize::MAX);
            self.push_event(
                t.max(at) + self.hop_latency,
                next,
                Direction::ServerToClient,
                wire,
            );
        }
        for TimedPacket { at: t, wire } in toward_server {
            self.push_event(
                t.max(at) + self.hop_latency,
                pos + 1,
                Direction::ClientToServer,
                wire,
            );
        }

        if let Verdict::Forward(packets) = verdict {
            for TimedPacket { at: t, wire } in packets {
                let next = match dir {
                    Direction::ClientToServer => pos + 1,
                    Direction::ServerToClient => pos.checked_sub(1).unwrap_or(usize::MAX),
                };
                self.push_event(t.max(at) + self.hop_latency, next, dir, wire);
            }
        }
    }

    fn deliver_to_server(&mut self, at: SimTime, wire: PacketBuf) {
        self.capture.record(at, TapPoint::ServerIngress, &wire);
        self.server.receive(at, &wire);
        for out in self.server.take_outbox() {
            let out = PacketBuf::from(out);
            self.capture.record(at, TapPoint::ServerEgress, &out);
            let entry = self.elements.len().checked_sub(1).unwrap_or(usize::MAX);
            self.push_event(at + self.hop_latency, entry, Direction::ServerToClient, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hop::RouterHop;
    use crate::os::OsProfile;
    use crate::server::EchoApp;
    use liberate_packet::packet::{Packet, ParsedPacket};
    use liberate_packet::tcp::TcpFlags;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SERVER: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);

    fn net(hops: usize) -> Network {
        let elements: Vec<Box<dyn PathElement>> = (0..hops)
            .map(|i| {
                Box::new(RouterHop::transparent(
                    format!("r{i}"),
                    Ipv4Addr::new(172, 16, 0, i as u8 + 1),
                )) as Box<dyn PathElement>
            })
            .collect();
        let server = ServerHost::new(SERVER, OsProfile::linux(), Box::<EchoApp>::default());
        Network::new(CLIENT, elements, server)
    }

    fn tcp_handshake(net: &mut Network) -> (u32, u32) {
        let syn = Packet::tcp(CLIENT, SERVER, 40000, 80, 999, 0, vec![])
            .with_flags(TcpFlags::SYN)
            .serialize();
        net.send_from_client(Duration::ZERO, syn);
        net.run_until_idle();
        let inbox = net.take_client_inbox();
        assert_eq!(inbox.len(), 1, "expected SYN-ACK");
        let sa = ParsedPacket::parse(&inbox[0].1).unwrap();
        let t = sa.tcp().unwrap();
        assert!(t.flags.syn && t.flags.ack);
        (1000, t.seq.wrapping_add(1))
    }

    #[test]
    fn end_to_end_echo_through_hops() {
        let mut net = net(3);
        let (cseq, _) = tcp_handshake(&mut net);
        let data = Packet::tcp(CLIENT, SERVER, 40000, 80, cseq, 1, &b"ping"[..]).serialize();
        net.send_from_client(Duration::ZERO, data);
        net.run_until_idle();
        let inbox = net.take_client_inbox();
        let payloads: Vec<_> = inbox
            .iter()
            .map(|(_, w)| ParsedPacket::parse(w).unwrap().payload)
            .collect();
        assert!(payloads.iter().any(|p| p == b"ping"));
        // Latency: 4 traversals each way (3 hops + server hop latency).
        assert!(net.clock > SimTime::ZERO);
    }

    #[test]
    fn ttl_expires_at_hop_and_icmp_returns() {
        let mut net = net(3);
        let mut p = Packet::tcp(CLIENT, SERVER, 40000, 80, 0, 0, vec![]);
        p.ip.ttl = 2; // dies at the second hop
        p = p.with_flags(TcpFlags::SYN);
        net.send_from_client(Duration::ZERO, p.serialize());
        net.run_until_idle();
        // No SYN reached the server.
        assert_eq!(net.capture.at(TapPoint::ServerIngress).count(), 0);
        // An ICMP Time Exceeded came back from hop r1 (the second hop).
        let inbox = net.take_client_inbox();
        assert_eq!(inbox.len(), 1);
        let icmp = crate::icmp::parse_icmp_error(&inbox[0].1).unwrap();
        assert_eq!(icmp.from, Ipv4Addr::new(172, 16, 0, 2));
    }

    #[test]
    fn ttl_hops_accounting() {
        let net = net(3);
        assert_eq!(net.ttl_hops_total(), 3);
        assert_eq!(net.ttl_hops_before(0), 0);
        assert_eq!(net.ttl_hops_before(2), 2);
    }

    #[test]
    fn capture_sees_both_ends() {
        let mut net = net(1);
        tcp_handshake(&mut net);
        assert!(net.capture.at(TapPoint::ClientEgress).count() >= 1);
        assert!(net.capture.at(TapPoint::ServerIngress).count() >= 1);
        assert!(net.capture.at(TapPoint::ServerEgress).count() >= 1);
        assert!(net.capture.at(TapPoint::ClientIngress).count() >= 1);
    }

    #[test]
    fn advance_moves_clock_without_traffic() {
        let mut net = net(1);
        let t0 = net.clock;
        net.advance(Duration::from_secs(120));
        assert_eq!(net.clock - t0, Duration::from_secs(120));
    }

    #[test]
    fn zero_hop_network_works() {
        let mut net = net(0);
        let (cseq, _) = tcp_handshake(&mut net);
        let data = Packet::tcp(CLIENT, SERVER, 40000, 80, cseq, 1, &b"hi"[..]).serialize();
        net.send_from_client(Duration::ZERO, data);
        net.run_until_idle();
        let inbox = net.take_client_inbox();
        assert!(inbox
            .iter()
            .any(|(_, w)| ParsedPacket::parse(w).unwrap().payload == b"hi"));
    }
}
