//! Simulated time — moved to the backend-neutral `liberate-substrate`
//! crate; re-exported here so simulator-facing code keeps its paths.

pub use liberate_substrate::time::*;
