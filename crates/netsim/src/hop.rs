//! Router hops: TTL decrement, ICMP Time Exceeded, malformed-packet
//! filtering, and optional in-path fragment normalization.

use std::net::Ipv4Addr;
use std::sync::Arc;

use liberate_obs::{Counter, Journal};
use liberate_packet::flow::Direction;
use liberate_packet::fragment::{OverlapPolicy, Reassembler};
use liberate_packet::ipv4::ParsedIpv4;

use crate::element::{CopyTally, Effects, PacketBuf, PathElement, TimedPacket, Verdict};
use crate::filter::{FilterPolicy, FragmentHandling};
use crate::icmp::time_exceeded;
use crate::time::SimTime;

/// A router hop.
pub struct RouterHop {
    name: String,
    address: Ipv4Addr,
    filter: FilterPolicy,
    /// Whether TTL expiry generates an ICMP Time Exceeded back to the
    /// source (real routers do; some operational boxes stay silent).
    sends_icmp: bool,
    /// Recompute the TCP checksum of forwarded segments instead of
    /// dropping bad ones — observed in the path to China (Table 3
    /// footnote 4: "The TCP checksum is corrected before arriving at the
    /// server").
    fix_tcp_checksum: bool,
    reassembler: Reassembler,
    /// Packets dropped by the filter, for diagnostics.
    pub filtered_count: u64,
    /// Packets dropped due to TTL expiry.
    pub expired_count: u64,
    /// Journal for copy-on-write accounting (TTL/checksum rewrites on a
    /// shared buffer fault a counted payload copy).
    journal: Option<Arc<Journal>>,
}

impl RouterHop {
    pub fn new(name: impl Into<String>, address: Ipv4Addr, filter: FilterPolicy) -> RouterHop {
        RouterHop {
            name: name.into(),
            address,
            filter,
            sends_icmp: true,
            fix_tcp_checksum: false,
            reassembler: Reassembler::new(OverlapPolicy::FirstWins),
            filtered_count: 0,
            expired_count: 0,
            journal: None,
        }
    }

    /// A plain hop that forwards everything (still decrements TTL).
    pub fn transparent(name: impl Into<String>, address: Ipv4Addr) -> RouterHop {
        RouterHop::new(name, address, FilterPolicy::permissive())
    }

    /// Disable ICMP Time Exceeded generation.
    pub fn silent(mut self) -> RouterHop {
        self.sends_icmp = false;
        self
    }

    /// Recompute TCP checksums on forwarded segments.
    pub fn fixing_tcp_checksums(mut self) -> RouterHop {
        self.fix_tcp_checksum = true;
        self
    }

    /// Rewrite the TCP checksum of a serialized packet to the correct
    /// value, if it parses as an unfragmented TCP packet.
    fn repair_tcp_checksum(wire: &mut [u8]) {
        use liberate_packet::checksum::pseudo_header_checksum;
        use liberate_packet::ipv4::protocol;
        let Some(ip) = ParsedIpv4::parse(wire) else {
            return;
        };
        if ip.protocol != protocol::TCP || ip.is_fragment() {
            return;
        }
        let off = ip.payload_offset;
        if wire.len() < off + 18 {
            return;
        }
        wire[off + 16] = 0;
        wire[off + 17] = 0;
        let (src, dst) = (ip.src, ip.dst);
        let ck = {
            let seg = &wire[off..];
            pseudo_header_checksum(src, dst, protocol::TCP, seg)
        };
        wire[off + 16..off + 18].copy_from_slice(&ck.to_be_bytes());
    }

    /// Rewrite the TTL field (decrement) and *incrementally* update the
    /// header checksum (RFC 1141). Real routers adjust the checksum for
    /// the delta only — a corrupted checksum stays exactly as corrupted
    /// after forwarding, which the wrong-IP-checksum inert technique
    /// relies on.
    fn decrement_ttl(wire: &mut [u8]) -> u8 {
        let ttl = wire[8].saturating_sub(1);
        if wire[8] == 0 {
            return 0; // nothing to adjust
        }
        wire[8] = ttl;
        // The 16-bit word at offset 8 (TTL|protocol) decreased by 0x0100,
        // so the one's-complement checksum increases by 0x0100.
        let old = u16::from_be_bytes([wire[10], wire[11]]);
        let sum = old as u32 + 0x0100;
        let new = ((sum & 0xffff) + (sum >> 16)) as u16;
        wire[10..12].copy_from_slice(&new.to_be_bytes());
        ttl
    }
}

impl PathElement for RouterHop {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn decrements_ttl(&self) -> bool {
        true
    }

    fn attach_journal(&mut self, journal: &Arc<Journal>) {
        self.journal = Some(Arc::clone(journal));
    }

    fn process(
        &mut self,
        now: SimTime,
        dir: Direction,
        mut wire: PacketBuf,
        effects: &mut Effects,
    ) -> Verdict {
        let Some(ip) = ParsedIpv4::parse(&wire) else {
            self.filtered_count += 1;
            return Verdict::Drop; // not even a header: unroutable
        };

        // TTL handling first: a packet arriving with TTL 0 or 1 dies here.
        if ip.ttl <= 1 {
            self.expired_count += 1;
            if self.sends_icmp {
                effects.inject(
                    dir.flip(),
                    TimedPacket::now(now, time_exceeded(self.address, &wire)),
                );
            }
            return Verdict::Drop;
        }

        if self.filter.should_drop(&wire) {
            self.filtered_count += 1;
            return Verdict::Drop;
        }

        match self.filter.fragments {
            FragmentHandling::Pass => {}
            FragmentHandling::Drop => {
                if ip.is_fragment() {
                    self.filtered_count += 1;
                    return Verdict::Drop;
                }
            }
            FragmentHandling::Reassemble => {
                if ip.is_fragment() {
                    match self.reassembler.push(&wire) {
                        Some(whole) => wire = whole.into(),
                        None => return Verdict::Drop, // held for reassembly
                    }
                }
            }
        }

        // One copy-on-write fault covers both header rewrites; a
        // uniquely-owned buffer (every hop after the first) is free.
        let mut tally = CopyTally::default();
        let buf = wire.make_mut(&mut tally);
        if self.fix_tcp_checksum {
            Self::repair_tcp_checksum(buf);
        }
        Self::decrement_ttl(buf);
        if let Some(journal) = &self.journal {
            if !tally.is_empty() {
                journal.metrics.add(Counter::PayloadCopies, tally.copies);
                journal
                    .metrics
                    .add(Counter::PayloadBytesCopied, tally.bytes);
            }
        }
        Verdict::pass(now, wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::icmp::parse_icmp_error;
    use liberate_packet::packet::{Packet, ParsedPacket};

    fn hop() -> RouterHop {
        RouterHop::transparent("r1", Ipv4Addr::new(172, 16, 0, 1))
    }

    fn pkt(ttl: u8) -> Vec<u8> {
        let mut p = Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000,
            80,
            0,
            0,
            &b"x"[..],
        );
        p.ip.ttl = ttl;
        p.serialize()
    }

    #[test]
    fn decrements_ttl_and_fixes_checksum() {
        let mut h = hop();
        let mut fx = Effects::default();
        match h.process(
            SimTime::ZERO,
            Direction::ClientToServer,
            pkt(10).into(),
            &mut fx,
        ) {
            Verdict::Forward(out) => {
                let p = ParsedPacket::parse(&out[0].wire).unwrap();
                assert_eq!(p.ip.ttl, 9);
                assert!(liberate_packet::validate::is_well_formed(&out[0].wire));
            }
            Verdict::Drop => panic!("should forward"),
        }
        assert!(fx.is_empty());
    }

    #[test]
    fn ttl_expiry_generates_icmp_back() {
        let mut h = hop();
        let mut fx = Effects::default();
        let verdict = h.process(
            SimTime::ZERO,
            Direction::ClientToServer,
            pkt(1).into(),
            &mut fx,
        );
        assert_eq!(verdict, Verdict::Drop);
        assert_eq!(h.expired_count, 1);
        assert_eq!(fx.toward_client.len(), 1);
        let icmp = parse_icmp_error(&fx.toward_client[0].wire).unwrap();
        assert_eq!(icmp.from, Ipv4Addr::new(172, 16, 0, 1));
    }

    #[test]
    fn silent_hop_drops_without_icmp() {
        let mut h = hop().silent();
        let mut fx = Effects::default();
        assert_eq!(
            h.process(
                SimTime::ZERO,
                Direction::ClientToServer,
                pkt(1).into(),
                &mut fx
            ),
            Verdict::Drop
        );
        assert!(fx.is_empty());
    }

    #[test]
    fn filter_applies() {
        let mut h = RouterHop::new(
            "fw",
            Ipv4Addr::new(172, 16, 0, 2),
            FilterPolicy::ip_hygiene(),
        );
        let mut bad = Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            0,
            0,
            vec![],
        );
        bad.ip.checksum = liberate_packet::checksum::ChecksumSpec::Fixed(0xffff);
        let mut fx = Effects::default();
        assert_eq!(
            h.process(
                SimTime::ZERO,
                Direction::ClientToServer,
                bad.serialize().into(),
                &mut fx
            ),
            Verdict::Drop
        );
        assert_eq!(h.filtered_count, 1);
    }

    #[test]
    fn fragment_dropping_hop() {
        let mut h = RouterHop::new(
            "iran-edge",
            Ipv4Addr::new(172, 16, 0, 3),
            FilterPolicy::permissive().with_fragments(FragmentHandling::Drop),
        );
        let wire = {
            let mut p = Packet::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                1,
                2,
                0,
                0,
                vec![0u8; 64],
            );
            p.ip.ttl = 9;
            p.serialize()
        };
        let frags = liberate_packet::fragment::fragment_packet(&wire, 32);
        assert!(frags.len() > 1);
        let mut fx = Effects::default();
        for f in &frags {
            assert_eq!(
                h.process(
                    SimTime::ZERO,
                    Direction::ClientToServer,
                    f.clone().into(),
                    &mut fx
                ),
                Verdict::Drop
            );
        }
    }

    #[test]
    fn fragment_reassembling_hop_emits_whole_packet() {
        let mut h = RouterHop::new(
            "normalizer",
            Ipv4Addr::new(172, 16, 0, 4),
            FilterPolicy::permissive().with_fragments(FragmentHandling::Reassemble),
        );
        let wire = {
            let mut p = Packet::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                1,
                2,
                0,
                0,
                vec![7u8; 64],
            );
            p.ip.ttl = 9;
            p.serialize()
        };
        let frags = liberate_packet::fragment::fragment_packet(&wire, 32);
        let mut fx = Effects::default();
        let mut forwarded = Vec::new();
        for f in &frags {
            if let Verdict::Forward(out) = h.process(
                SimTime::ZERO,
                Direction::ClientToServer,
                f.clone().into(),
                &mut fx,
            ) {
                forwarded.extend(out);
            }
        }
        assert_eq!(forwarded.len(), 1);
        let whole = ParsedPacket::parse(&forwarded[0].wire).unwrap();
        assert_eq!(whole.ip.fragment_offset, 0);
        assert!(!whole.ip.more_fragments);
        assert_eq!(whole.payload, vec![7u8; 64]);
    }
}

#[cfg(test)]
mod checksum_fix_tests {
    use super::*;
    use crate::element::Effects;
    use crate::time::SimTime;
    use liberate_packet::checksum::ChecksumSpec;
    use liberate_packet::flow::Direction;
    use liberate_packet::packet::Packet;
    use liberate_packet::validate::{validate_wire, Malformation};
    use std::net::Ipv4Addr;

    #[test]
    fn hop_repairs_tcp_checksums_when_asked() {
        let mut h =
            RouterHop::transparent("fixer", Ipv4Addr::new(172, 16, 0, 9)).fixing_tcp_checksums();
        let mut p = Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            100,
            200,
            &b"GET / HTTP/1.1"[..],
        );
        p.ip.ttl = 12;
        p.tcp_mut().checksum = ChecksumSpec::Fixed(0x0bad);
        let wire = p.serialize();
        assert!(validate_wire(&wire).contains(&Malformation::TcpChecksumWrong));
        let mut fx = Effects::default();
        match h.process(
            SimTime::ZERO,
            Direction::ClientToServer,
            wire.into(),
            &mut fx,
        ) {
            Verdict::Forward(out) => {
                assert!(!validate_wire(&out[0].wire).contains(&Malformation::TcpChecksumWrong));
            }
            Verdict::Drop => panic!("should forward"),
        }
    }
}
