//! Endpoint operating-system profiles.
//!
//! The right-hand "Server Response" columns of Table 3 record, per OS,
//! whether each inert packet is dropped (good for unilateral evasion) or
//! delivered/answered (a side effect the evasion planner must avoid).
//! The differences the paper found:
//!
//! - **Invalid IP options**: Linux and macOS *deliver* such packets
//!   (× in the table); Windows drops them (✓).
//! - **Deprecated IP options**: all three deliver (×, ×, ×).
//! - **Invalid TCP flag combinations**: Linux and macOS drop; Windows
//!   *responds with a RST* (footnote 6), killing the connection.
//! - **UDP length shorter than payload**: Linux delivers the payload
//!   truncated to the claimed length (footnote 5); macOS and Windows drop.
//!
//! Everything else malformed is dropped by all three.

use liberate_packet::validate::{Malformation, MalformationSet};

/// Behaviours an OS can exhibit for a received malformed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OsAction {
    /// Deliver to the transport layer as if nothing were wrong.
    Deliver,
    /// Deliver, but truncate the UDP payload to the claimed length.
    DeliverTruncated,
    /// Silently drop.
    Drop,
    /// Drop and answer with a TCP RST (Windows on invalid flag combos).
    RstResponse,
}

/// Which OS family an endpoint host emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsKind {
    Linux,
    MacOs,
    Windows,
}

impl OsKind {
    pub const ALL: [OsKind; 3] = [OsKind::Linux, OsKind::MacOs, OsKind::Windows];

    pub fn name(self) -> &'static str {
        match self {
            OsKind::Linux => "Linux",
            OsKind::MacOs => "macOS",
            OsKind::Windows => "Windows",
        }
    }
}

/// An endpoint validation profile.
#[derive(Debug, Clone)]
pub struct OsProfile {
    pub kind: OsKind,
}

impl OsProfile {
    pub fn new(kind: OsKind) -> OsProfile {
        OsProfile { kind }
    }

    pub fn linux() -> OsProfile {
        OsProfile::new(OsKind::Linux)
    }

    pub fn macos() -> OsProfile {
        OsProfile::new(OsKind::MacOs)
    }

    pub fn windows() -> OsProfile {
        OsProfile::new(OsKind::Windows)
    }

    /// Decide what to do with a packet exhibiting `defects`.
    ///
    /// Flow-state problems (wrong sequence numbers) are not judged here —
    /// the TCP stack handles them inherently by discarding out-of-window
    /// data.
    pub fn action(&self, defects: &MalformationSet) -> OsAction {
        use Malformation::*;
        if defects.is_empty() {
            return OsAction::Deliver;
        }
        // Hard structural drops common to every OS.
        const ALWAYS_DROP: &[Malformation] = &[
            IpVersionInvalid,
            IpHeaderLengthInvalid,
            IpTotalLengthLong,
            IpTotalLengthShort,
            IpChecksumWrong,
            IpProtocolUnknown,
            TtlExpired,
            TcpChecksumWrong,
            TcpDataOffsetInvalid,
            TcpAckFlagMissing,
            TransportTruncated,
            UdpChecksumWrong,
            UdpLengthLong,
        ];
        if ALWAYS_DROP.iter().any(|m| defects.contains(m)) {
            return OsAction::Drop;
        }
        if defects.contains(&TcpFlagsInvalid) {
            return match self.kind {
                OsKind::Linux | OsKind::MacOs => OsAction::Drop,
                // Footnote 6: "The server sends a RST packet in response."
                OsKind::Windows => OsAction::RstResponse,
            };
        }
        if defects.contains(&IpOptionsInvalid) {
            return match self.kind {
                // Table 3: Linux/macOS deliver invalid-option packets.
                OsKind::Linux | OsKind::MacOs => OsAction::Deliver,
                OsKind::Windows => OsAction::Drop,
            };
        }
        if defects.contains(&IpOptionsDeprecated) {
            // All three OSes deliver deprecated-option packets.
            return OsAction::Deliver;
        }
        if defects.contains(&UdpLengthShort) {
            return match self.kind {
                // Footnote 5: "The server reads the content up to the
                // specified length."
                OsKind::Linux => OsAction::DeliverTruncated,
                OsKind::MacOs | OsKind::Windows => OsAction::Drop,
            };
        }
        OsAction::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberate_packet::checksum::ChecksumSpec;
    use liberate_packet::ipv4::IpOption;
    use liberate_packet::packet::Packet;
    use liberate_packet::tcp::TcpFlags;
    use liberate_packet::validate::validate_wire;
    use std::net::Ipv4Addr;

    fn defects_of(p: &Packet) -> MalformationSet {
        validate_wire(&p.serialize())
    }

    fn tcp() -> Packet {
        Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            80,
            0,
            0,
            &b"data"[..],
        )
    }

    fn udp() -> Packet {
        Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1,
            2,
            &b"datagram"[..],
        )
    }

    #[test]
    fn clean_packets_delivered_everywhere() {
        for os in OsKind::ALL {
            assert_eq!(
                OsProfile::new(os).action(&defects_of(&tcp())),
                OsAction::Deliver
            );
        }
    }

    #[test]
    fn bad_checksum_dropped_everywhere() {
        let mut p = tcp();
        p.tcp_mut().checksum = ChecksumSpec::Fixed(0x1111);
        for os in OsKind::ALL {
            assert_eq!(OsProfile::new(os).action(&defects_of(&p)), OsAction::Drop);
        }
    }

    #[test]
    fn invalid_ip_options_split_by_os() {
        let mut p = tcp();
        p.ip.options = vec![IpOption::InvalidOverrun {
            kind: 0x99,
            claimed_len: 44,
        }];
        let d = defects_of(&p);
        assert_eq!(OsProfile::linux().action(&d), OsAction::Deliver);
        assert_eq!(OsProfile::macos().action(&d), OsAction::Deliver);
        assert_eq!(OsProfile::windows().action(&d), OsAction::Drop);
    }

    #[test]
    fn deprecated_ip_options_delivered_everywhere() {
        let mut p = tcp();
        p.ip.options = vec![IpOption::StreamId(3)];
        let d = defects_of(&p);
        for os in OsKind::ALL {
            assert_eq!(OsProfile::new(os).action(&d), OsAction::Deliver);
        }
    }

    #[test]
    fn xmas_flags_rst_on_windows_only() {
        let mut p = tcp();
        p.tcp_mut().flags = TcpFlags::XMAS;
        let d = defects_of(&p);
        assert_eq!(OsProfile::linux().action(&d), OsAction::Drop);
        assert_eq!(OsProfile::macos().action(&d), OsAction::Drop);
        assert_eq!(OsProfile::windows().action(&d), OsAction::RstResponse);
    }

    #[test]
    fn short_udp_truncates_on_linux() {
        let mut p = udp();
        p.udp_mut().length = Some(10); // 2 bytes of the 8-byte payload
        let d = defects_of(&p);
        assert_eq!(OsProfile::linux().action(&d), OsAction::DeliverTruncated);
        assert_eq!(OsProfile::macos().action(&d), OsAction::Drop);
        assert_eq!(OsProfile::windows().action(&d), OsAction::Drop);
    }

    #[test]
    fn combined_defects_hard_drop_wins() {
        // Invalid options (deliverable on Linux) + bad IP checksum (always
        // dropped) => dropped.
        let mut p = tcp();
        p.ip.options = vec![IpOption::InvalidOverrun {
            kind: 0x99,
            claimed_len: 44,
        }];
        p.ip.checksum = ChecksumSpec::Fixed(0);
        assert_eq!(OsProfile::linux().action(&defects_of(&p)), OsAction::Drop);
    }
}
