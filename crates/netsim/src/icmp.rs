//! ICMP support — moved to the backend-neutral `liberate-substrate`
//! crate (localization parses these errors on every backend);
//! re-exported here so simulator-facing code keeps its paths.

pub use liberate_substrate::icmp::*;
