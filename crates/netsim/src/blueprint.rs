//! A reusable recipe for building identical [`Network`]s.
//!
//! The multi-session engine gives every pool worker its own network —
//! same topology, fresh per-element state — so element-chain construction
//! is factored out of one-shot builder code into a [`NetworkBlueprint`]:
//! an ordered list of element *factories*. Each [`NetworkBlueprint::build`]
//! call runs every factory once, yielding a chain whose elements share
//! nothing with previous builds except whatever the factory closures
//! deliberately capture (the DPI profiles capture an
//! `Arc<ShardedFlowTable>` so all workers front one flow table).

use std::net::Ipv4Addr;

use crate::element::PathElement;
use crate::network::Network;
use crate::server::ServerHost;

/// Builds one fresh path element per invocation. `Send + Sync` so a
/// blueprint can be consulted from pool threads.
pub type ElementFactory = Box<dyn Fn() -> Box<dyn PathElement> + Send + Sync>;

/// An ordered element-chain recipe plus the client address; everything a
/// [`Network`] needs except the server (which carries per-build app
/// state, so the caller supplies it to [`NetworkBlueprint::build`]).
pub struct NetworkBlueprint {
    client_addr: Ipv4Addr,
    factories: Vec<ElementFactory>,
}

impl NetworkBlueprint {
    pub fn new(client_addr: Ipv4Addr) -> NetworkBlueprint {
        NetworkBlueprint {
            client_addr,
            factories: Vec::new(),
        }
    }

    pub fn client_addr(&self) -> Ipv4Addr {
        self.client_addr
    }

    /// Append an element factory to the chain (client side first, same
    /// order as [`Network::new`]'s element vector).
    pub fn push(&mut self, factory: ElementFactory) {
        self.factories.push(factory);
    }

    pub fn element_count(&self) -> usize {
        self.factories.len()
    }

    /// Materialize a network: run every factory, in order, against a
    /// fresh server. The caller attaches its own journal afterwards.
    pub fn build(&self, server: ServerHost) -> Network {
        let elements = self.factories.iter().map(|f| f()).collect();
        Network::new(self.client_addr, elements, server)
    }
}

impl std::fmt::Debug for NetworkBlueprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetworkBlueprint")
            .field("client_addr", &self.client_addr)
            .field("elements", &self.factories.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hop::RouterHop;
    use crate::os::{OsKind, OsProfile};
    use crate::server::{ServerHost, SinkApp};

    fn blueprint() -> NetworkBlueprint {
        let mut bp = NetworkBlueprint::new(Ipv4Addr::new(10, 0, 0, 2));
        bp.push(Box::new(|| {
            Box::new(RouterHop::transparent("r1", Ipv4Addr::new(172, 16, 1, 1)))
        }));
        bp.push(Box::new(|| {
            Box::new(RouterHop::transparent("r2", Ipv4Addr::new(172, 16, 1, 2)))
        }));
        bp
    }

    fn server() -> ServerHost {
        ServerHost::new(
            Ipv4Addr::new(203, 0, 113, 10),
            OsProfile::new(OsKind::Linux),
            Box::new(SinkApp::default()),
        )
    }

    #[test]
    fn builds_are_independent_and_identically_shaped() {
        let bp = blueprint();
        assert_eq!(bp.element_count(), 2);
        let mut a = bp.build(server());
        let b = bp.build(server());
        assert!(a.element_index("r1").is_some());
        assert!(a.element_index("r2").is_some());
        assert_eq!(a.element_index("r1"), b.element_index("r1"));
        // Element state is per-build: mutating one network's element must
        // not be visible through the other (fresh factory output, not a
        // shared box).
        assert_eq!(a.clock, b.clock);
    }

    #[test]
    fn blueprint_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetworkBlueprint>();
    }
}
