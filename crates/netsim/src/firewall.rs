//! A stateful TCP firewall hop: tracks connections and drops segments
//! whose sequence numbers fall far outside the expected window.
//!
//! Cellular gateways commonly do this; it is why T-Mobile's RS? column
//! shows wrong-sequence-number inert packets never reaching the server
//! (Table 3), while the GFC's column shows them sailing through.

use std::collections::HashMap;

use liberate_packet::flow::{Direction, FlowKey};
use liberate_packet::packet::ParsedPacket;

use crate::element::{Effects, PacketBuf, PathElement, Verdict};
use crate::time::SimTime;

/// Tracked per-connection expectations.
#[derive(Debug, Clone, Copy)]
struct ConnTrack {
    /// Highest in-window sequence seen from the client plus payload.
    client_next: u32,
    /// Same for the server direction (0 until the SYN-ACK).
    server_next: u32,
}

/// The firewall element.
pub struct StatefulFirewall {
    name: String,
    window: u32,
    conns: HashMap<FlowKey, ConnTrack>,
    pub dropped: u64,
}

fn seq_in_window(seq: u32, expected: u32, window: u32) -> bool {
    // Accept seq within [expected - window, expected + window].
    let delta = seq.wrapping_sub(expected) as i32;
    delta.unsigned_abs() <= window
}

impl StatefulFirewall {
    pub fn new(name: impl Into<String>, window: u32) -> StatefulFirewall {
        StatefulFirewall {
            name: name.into(),
            window,
            conns: HashMap::new(),
            dropped: 0,
        }
    }
}

impl PathElement for StatefulFirewall {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }

    fn process(
        &mut self,
        now: SimTime,
        dir: Direction,
        wire: PacketBuf,
        _effects: &mut Effects,
    ) -> Verdict {
        let Some(pkt) = ParsedPacket::parse(&wire) else {
            return Verdict::pass(now, wire);
        };
        let Some(tcp) = pkt.tcp() else {
            return Verdict::pass(now, wire); // non-TCP is not tracked
        };
        let Some(key) = FlowKey::from_packet(&pkt) else {
            return Verdict::pass(now, wire);
        };
        let canonical = key.canonical();

        if tcp.flags.syn && !tcp.flags.ack && dir == Direction::ClientToServer {
            self.conns.insert(
                canonical,
                ConnTrack {
                    client_next: tcp.seq.wrapping_add(1),
                    server_next: 0,
                },
            );
            return Verdict::pass(now, wire);
        }

        let Some(track) = self.conns.get_mut(&canonical) else {
            // Untracked flows pass (the firewall only polices what it saw
            // open).
            return Verdict::pass(now, wire);
        };

        if tcp.flags.syn && tcp.flags.ack && dir == Direction::ServerToClient {
            track.server_next = tcp.seq.wrapping_add(1);
            return Verdict::pass(now, wire);
        }

        let (expected, advance): (u32, bool) = match dir {
            Direction::ClientToServer => (track.client_next, true),
            Direction::ServerToClient => (track.server_next, true),
        };
        // A zero expectation means we have not seen that side yet: pass.
        if expected != 0 && !seq_in_window(tcp.seq, expected, self.window) {
            self.dropped += 1;
            return Verdict::Drop;
        }
        if advance && !pkt.payload.is_empty() {
            let end = tcp.seq.wrapping_add(pkt.payload.len() as u32);
            match dir {
                Direction::ClientToServer => {
                    if seq_in_window(end, track.client_next, self.window) {
                        track.client_next = end;
                    }
                }
                Direction::ServerToClient => {
                    if seq_in_window(end, track.server_next, self.window) {
                        track.server_next = end;
                    }
                }
            }
        }
        if tcp.flags.rst {
            self.conns.remove(&canonical);
        }
        Verdict::pass(now, wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use liberate_packet::packet::Packet;
    use liberate_packet::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    const C: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const S: Ipv4Addr = Ipv4Addr::new(10, 9, 9, 9);

    fn fw() -> StatefulFirewall {
        StatefulFirewall::new("fw", 65_535)
    }

    fn process(fw: &mut StatefulFirewall, dir: Direction, p: Packet) -> Verdict {
        let mut fx = Effects::default();
        fw.process(SimTime::ZERO, dir, p.serialize().into(), &mut fx)
    }

    fn open(fw: &mut StatefulFirewall) {
        let syn = Packet::tcp(C, S, 40000, 80, 1000, 0, vec![]).with_flags(TcpFlags::SYN);
        assert!(matches!(
            process(fw, Direction::ClientToServer, syn),
            Verdict::Forward(_)
        ));
        let syn_ack =
            Packet::tcp(S, C, 80, 40000, 5000, 1001, vec![]).with_flags(TcpFlags::SYN_ACK);
        assert!(matches!(
            process(fw, Direction::ServerToClient, syn_ack),
            Verdict::Forward(_)
        ));
    }

    #[test]
    fn in_window_data_passes() {
        let mut f = fw();
        open(&mut f);
        let data = Packet::tcp(C, S, 40000, 80, 1001, 5001, &b"GET /"[..]);
        assert!(matches!(
            process(&mut f, Direction::ClientToServer, data),
            Verdict::Forward(_)
        ));
        assert_eq!(f.dropped, 0);
    }

    #[test]
    fn far_out_of_window_dropped() {
        let mut f = fw();
        open(&mut f);
        let evil = Packet::tcp(C, S, 40000, 80, 1001 + 10_000_000, 5001, &b"EVIL"[..]);
        assert_eq!(
            process(&mut f, Direction::ClientToServer, evil),
            Verdict::Drop
        );
        assert_eq!(f.dropped, 1);
        // The connection still works for honest data.
        let data = Packet::tcp(C, S, 40000, 80, 1001, 5001, &b"ok"[..]);
        assert!(matches!(
            process(&mut f, Direction::ClientToServer, data),
            Verdict::Forward(_)
        ));
    }

    #[test]
    fn untracked_flows_pass() {
        let mut f = fw();
        let data = Packet::tcp(C, S, 50000, 80, 77, 0, &b"mid-flow"[..]);
        assert!(matches!(
            process(&mut f, Direction::ClientToServer, data),
            Verdict::Forward(_)
        ));
    }

    #[test]
    fn non_tcp_passes() {
        let mut f = fw();
        let dgram = Packet::udp(C, S, 1, 2, &b"x"[..]);
        assert!(matches!(
            process(&mut f, Direction::ClientToServer, dgram),
            Verdict::Forward(_)
        ));
    }
}
