//! Property tests for the simulator substrate.

use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

use liberate_netsim::element::{Effects, PathElement, Verdict};
use liberate_netsim::hop::RouterHop;
use liberate_netsim::shaper::TokenBucket;
use liberate_netsim::time::SimTime;
use liberate_packet::checksum::ChecksumSpec;
use liberate_packet::flow::Direction;
use liberate_packet::packet::{Packet, ParsedPacket};
use liberate_packet::validate::{validate_wire, Malformation};

proptest! {
    /// Token buckets are FIFO (departures never reorder) and never
    /// schedule before the arrival instant.
    #[test]
    fn token_bucket_fifo_and_causal(
        rate in 1_000u64..100_000_000,
        burst in 100u64..1_000_000,
        arrivals in proptest::collection::vec((0u64..10_000_000, 40usize..1500), 1..64),
    ) {
        let mut tb = TokenBucket::new(rate, burst);
        let mut arrivals = arrivals;
        arrivals.sort_by_key(|(t, _)| *t);
        let mut last_depart = SimTime::ZERO;
        for (t, len) in arrivals {
            let now = SimTime::from_micros(t);
            let depart = tb.schedule(now, len);
            prop_assert!(depart >= now, "causality");
            prop_assert!(depart >= last_depart, "FIFO");
            last_depart = depart;
        }
    }

    /// A sequence of router hops preserves packet well-formedness for any
    /// TTL large enough, and a corrupted IP checksum stays corrupted
    /// across hops (incremental update must not repair it).
    #[test]
    fn hops_preserve_validity_and_corruption(
        hops in 1usize..8,
        ttl in 16u8..=255,
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        corrupt in any::<bool>(),
    ) {
        let mut p = Packet::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            1000, 80, 1, 1, payload,
        );
        p.ip.ttl = ttl;
        if corrupt {
            p.ip.checksum = ChecksumSpec::Fixed(0x0bad);
        }
        let mut wire: liberate_netsim::element::PacketBuf = p.serialize().into();
        let mut fx = Effects::default();
        for i in 0..hops {
            let mut hop = RouterHop::transparent(
                format!("r{i}"),
                Ipv4Addr::new(172, 16, 0, i as u8 + 1),
            );
            let verdict = hop.process(SimTime::ZERO, Direction::ClientToServer, wire.clone(), &mut fx);
            match verdict {
                Verdict::Forward(mut out) => {
                    prop_assert_eq!(out.len(), 1);
                    wire = out.pop().unwrap().wire;
                }
                Verdict::Drop => prop_assert!(false, "TTL was large enough"),
            }
        }
        let parsed = ParsedPacket::parse(&wire).unwrap();
        prop_assert_eq!(parsed.ip.ttl, ttl - hops as u8);
        let has_bad_ck = validate_wire(&wire).contains(&Malformation::IpChecksumWrong);
        prop_assert_eq!(has_bad_ck, corrupt, "corruption must be preserved exactly");
    }

    /// The discrete-event network delivers every clean client packet to
    /// the server exactly once, in order, whatever the hop count.
    #[test]
    fn network_delivers_in_order(
        hops in 0usize..6,
        n_packets in 1usize..12,
    ) {
        use liberate_netsim::network::Network;
        use liberate_netsim::os::OsProfile;
        use liberate_netsim::server::{ServerHost, SinkApp};
        use liberate_netsim::capture::TapPoint;
        use liberate_packet::tcp::TcpFlags;

        let client = Ipv4Addr::new(10, 0, 0, 1);
        let server_addr = Ipv4Addr::new(10, 9, 9, 9);
        let elements: Vec<Box<dyn PathElement>> = (0..hops)
            .map(|i| {
                Box::new(RouterHop::transparent(
                    format!("r{i}"),
                    Ipv4Addr::new(172, 16, 0, i as u8 + 1),
                )) as Box<dyn PathElement>
            })
            .collect();
        let server = ServerHost::new(server_addr, OsProfile::linux(), Box::<SinkApp>::default());
        let mut net = Network::new(client, elements, server);

        let syn = Packet::tcp(client, server_addr, 40_000, 80, 999, 0, vec![])
            .with_flags(TcpFlags::SYN);
        net.send_from_client(Duration::ZERO, syn.serialize());
        net.run_until_idle();
        net.take_client_inbox();

        let mut seq = 1_000u32;
        for i in 0..n_packets {
            let body = vec![i as u8; 100];
            let pkt = Packet::tcp(client, server_addr, 40_000, 80, seq, 1, body);
            seq += 100;
            net.send_from_client(Duration::ZERO, pkt.serialize());
            net.run_until_idle();
        }

        // Server-side ingress saw SYN + n data packets, in order.
        let seen: Vec<u32> = net
            .capture
            .at(TapPoint::ServerIngress)
            .filter_map(|r| {
                let p = ParsedPacket::parse(&r.wire)?;
                let t = p.tcp()?;
                (!p.payload.is_empty()).then_some(t.seq)
            })
            .collect();
        prop_assert_eq!(seen.len(), n_packets);
        prop_assert!(seen.windows(2).all(|w| w[0] < w[1]), "in order: {:?}", seen);
    }

    /// ICMP time-exceeded always returns to the packet's source and
    /// embeds the original header, for any source/destination.
    #[test]
    fn icmp_errors_return_to_source(
        src in any::<u32>().prop_map(Ipv4Addr::from),
        dst in any::<u32>().prop_map(Ipv4Addr::from),
        router in any::<u32>().prop_map(Ipv4Addr::from),
    ) {
        use liberate_netsim::icmp::{parse_icmp_error, time_exceeded};
        let orig = Packet::tcp(src, dst, 1, 2, 3, 4, vec![1, 2, 3]).serialize();
        let icmp = time_exceeded(router, &orig);
        let parsed = parse_icmp_error(&icmp).unwrap();
        prop_assert_eq!(parsed.from, router);
        let embedded = parsed.original.unwrap();
        prop_assert_eq!(embedded.src, src);
        prop_assert_eq!(embedded.dst, dst);
        let outer = ParsedPacket::parse(&icmp).unwrap();
        prop_assert_eq!(outer.ip.dst, src, "errors go back to the source");
    }
}
