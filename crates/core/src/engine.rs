//! The multi-session replay engine: a pool of worker [`Session`]s, each
//! with its own deterministically-seeded network, fronting one shared
//! sharded DPI flow table
//! ([`liberate_dpi::sharded::ShardedFlowTable`]).
//!
//! The paper's measurements are embarrassingly parallel at the probe
//! level: on a live path, characterization wall-clock is dominated by the
//! mandatory gap between rounds ([`crate::config::LiberateConfig::round_gap`]),
//! and probes over disjoint flows neither share client state nor — thanks
//! to port striding — contend on classifier flow entries. The engine
//! exploits that by converting the characterizer's recursive blinding
//! search into a **level-synchronous wave search**: every bisection level
//! enqueues its left/right(/middle) probes as independent jobs, workers
//! execute them on pool sessions, and results are merged in canonical
//! order.
//!
//! ## Determinism contract
//!
//! For a fixed seed and worker count, every run is bit-identical. Across
//! *worker counts*, the engine executes the **same probe multiset** as
//! the sequential recursion — only the execution order and the
//! round-number permutation differ. Probe outcomes under the
//! [`Signal::Readout`] and [`Signal::Blocking`] signals are
//! history-independent (each probe is a fresh flow on a fresh client
//! port; rotated server ports are used at most once, so residual
//! penalties never fire), so:
//!
//! - discovered [`MatchingField`]s are identical to sequential for any
//!   worker count (leaves are merged through the canonically-sorting
//!   [`merge_regions`]);
//! - per-probe counter totals ([`liberate_obs::Counter`]) sum to the
//!   sequential totals.
//!
//! Worker `w` seeds its RNG with `seed + w` and owns the client-port
//! lane `42_000 + w, step workers`, so concurrent probes always hit
//! disjoint [`liberate_packet::flow::FlowKey`]s of the shared table.

use std::ops::Range;
use std::sync::Arc;
use std::time::Duration;

use liberate_dpi::profiles::{EnvKind, EnvironmentBlueprint};
use liberate_obs::{Counter, Hist, Journal, Phase};
use liberate_packet::mutate::{invert_range, merge_regions, ByteRegion};
use liberate_substrate::time::SimTime;
use liberate_substrate::Substrate;
use liberate_traces::recorded::{RecordedTrace, Sender};

use crate::characterize::{
    port_for_round, probe_blinded, probe_position_inner, Characterization, CharacterizeOpts,
    MatchingField,
};
use crate::config::LiberateConfig;
use crate::detect::{read_billed_counter, was_classified, Signal};
use crate::reactor::{lane_addr, Reactor};
use crate::replay::{LaneAddr, ReplayOpts, ReplayOutcome, ReplaySm, Session};
use crate::schedule::Schedule;
use crate::sim::{OsKind, SimSubstrate};
use crate::task::{FlowTask, TaskPoll, Wake};

/// How a pool executes a wave's jobs on its workers.
///
/// | | per-worker concurrency | blocking cost |
/// |---|---|---|
/// | `Threads` | none (bucket runs job-by-job) | one OS thread per worker |
/// | `Reactor` | lane-virtualized ([`crate::reactor`]) | one OS thread per worker |
///
/// Both engines execute the same probe multiset and produce
/// byte-identical per-worker journals (pinned by
/// `tests/reactor_parity.rs`); `Reactor` additionally sustains thousands
/// of in-flight flows per worker, which is what
/// [`crate::deploy::DeploymentPool`] scale runs need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// One OS thread per worker; each bucket's jobs run to completion in
    /// order (the paper's wave search as-is).
    #[default]
    Threads,
    /// Event-driven: jobs become [`FlowTask`]s interleaved on each
    /// worker by a [`Reactor`] over per-flow lanes. Falls back to
    /// chained (in-order) execution for job shapes that cannot
    /// interleave — closure waves, non-lane substrates, signals with
    /// cross-flow state.
    Reactor,
}

/// A pool of worker sessions over one [`EnvironmentBlueprint`]. Every
/// worker owns a full network (and journal); all DPI devices front the
/// blueprint's shared [`liberate_dpi::sharded::ShardedFlowTable`].
/// Generic over the [`Substrate`]; the default is the simulator.
pub struct SessionPool<S: Substrate = SimSubstrate> {
    sessions: Vec<Session<S>>,
    engine: Engine,
    /// The reactor's scheduling telemetry (ticks, queue depth, timer
    /// fires). A separate journal that is never merged into worker
    /// journals, so engine choice cannot perturb the determinism
    /// contract. Event recording stays off; counters are always live.
    reactor_telemetry: Arc<Journal>,
}

impl SessionPool<SimSubstrate> {
    /// Build a pool of `workers` sessions (at least one) against a fresh
    /// blueprint for `kind`.
    pub fn new(kind: EnvKind, os: OsKind, config: LiberateConfig, workers: usize) -> SessionPool {
        let blueprint = EnvironmentBlueprint::new(kind, 0);
        SessionPool::from_blueprint(&blueprint, os, config, workers)
    }

    /// Build a pool over an existing blueprint (e.g. to share its flow
    /// table with sessions created elsewhere).
    pub fn from_blueprint(
        blueprint: &EnvironmentBlueprint,
        os: OsKind,
        config: LiberateConfig,
        workers: usize,
    ) -> SessionPool {
        let n = workers.max(1);
        let sessions = (0..n)
            .map(|w| Session::worker_from_blueprint(blueprint, os, config.clone(), w, n))
            .collect();
        SessionPool::from_sessions(sessions)
    }
}

impl<S: Substrate> SessionPool<S> {
    /// Build a pool from pre-built worker sessions (the generic
    /// counterpart of [`SessionPool::from_blueprint`]; callers construct
    /// each worker via [`Session::worker_over`]). Panics on an empty
    /// vector.
    pub fn from_sessions(sessions: Vec<Session<S>>) -> SessionPool<S> {
        assert!(!sessions.is_empty(), "a pool needs at least one worker");
        SessionPool {
            sessions,
            engine: Engine::default(),
            reactor_telemetry: Arc::new(Journal::disabled()),
        }
    }

    /// Select the wave-execution engine (builder-style).
    pub fn with_engine(mut self, engine: Engine) -> SessionPool<S> {
        self.engine = engine;
        self
    }

    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// The reactor's scheduling telemetry journal (counter/histogram
    /// totals accumulate across waves; empty under [`Engine::Threads`]).
    pub fn reactor_telemetry(&self) -> &Arc<Journal> {
        &self.reactor_telemetry
    }

    pub fn workers(&self) -> usize {
        self.sessions.len()
    }

    pub fn sessions(&self) -> &[Session<S>] {
        &self.sessions
    }

    pub fn session_mut(&mut self, worker: usize) -> &mut Session<S> {
        &mut self.sessions[worker]
    }

    /// Fold every worker's journal (events tagged with the worker index,
    /// counters summed) into `journal`, in ascending worker order. Call
    /// once, after the pool's work is done.
    pub fn merge_journals_into(&self, journal: &Arc<Journal>) {
        for (w, s) in self.sessions.iter().enumerate() {
            journal.absorb_worker(w as u32, s.journal());
        }
    }

    /// Execute one wave of jobs. Job `i` runs on worker `i % workers`
    /// (deterministic round-robin); each worker processes its bucket in
    /// order on its own OS thread; results come back in job order. A
    /// single-worker pool (or a single job) runs inline — no threads, no
    /// behavioral difference.
    pub fn run_wave<T, R, F>(&mut self, jobs: Vec<T>, f: &F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(&mut Session<S>, T) -> R + Sync,
    {
        let n = self.sessions.len();
        if n == 1 || jobs.len() <= 1 {
            if jobs.is_empty() {
                return Vec::new();
            }
            let session = &mut self.sessions[0];
            wave_open(session, jobs.len());
            let out = jobs.into_iter().map(|job| f(session, job)).collect();
            wave_close(session);
            return out;
        }

        let mut buckets: Vec<Vec<(usize, T)>> = (0..n).map(|_| Vec::new()).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            buckets[i % n].push((i, job));
        }

        if self.engine == Engine::Reactor {
            // Chained execution: closure jobs cannot interleave, so the
            // reactor engine runs each worker's bucket in-order without
            // spawning OS threads. Buckets only touch their own session,
            // so per-worker journals are identical to the threads path.
            let mut tagged: Vec<(usize, R)> = Vec::new();
            for (session, bucket) in self.sessions.iter_mut().zip(buckets) {
                if bucket.is_empty() {
                    continue;
                }
                wave_open(session, bucket.len());
                for (i, job) in bucket {
                    tagged.push((i, f(session, job)));
                }
                wave_close(session);
            }
            tagged.sort_by_key(|(i, _)| *i);
            return tagged.into_iter().map(|(_, r)| r).collect();
        }

        let mut tagged: Vec<(usize, R)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (session, bucket) in self.sessions.iter_mut().zip(buckets) {
                if bucket.is_empty() {
                    continue;
                }
                handles.push(scope.spawn(move || {
                    wave_open(session, bucket.len());
                    let part = bucket
                        .into_iter()
                        .map(|(i, job)| (i, f(session, job)))
                        .collect::<Vec<_>>();
                    wave_close(session);
                    part
                }));
            }
            for handle in handles {
                match handle.join() {
                    Ok(mut part) => tagged.append(&mut part),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        tagged.sort_by_key(|(i, _)| *i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }

    /// Execute one wave of [`FlowTask`]s — the reactor counterpart of
    /// [`SessionPool::run_wave`]. Bucketing (job `i` on worker `i % n`),
    /// empty-bucket skipping, and the single-worker shortcut are
    /// identical; within each worker the bucket's tasks run interleaved
    /// on a [`Reactor`], and every finished lane's staged journal is
    /// spliced back in admission order, so per-worker journals are
    /// byte-identical to the threads engine running the same jobs.
    /// `None` results mark contained task panics.
    pub fn run_wave_tasks<T>(&mut self, tasks: Vec<T>) -> Vec<Option<T::Output>>
    where
        T: FlowTask<S>,
        T::Output: Send,
    {
        let n = self.sessions.len();
        let telemetry = Arc::clone(&self.reactor_telemetry);
        if n == 1 || tasks.len() <= 1 {
            if tasks.is_empty() {
                return Vec::new();
            }
            return run_task_bucket(&mut self.sessions[0], tasks, &telemetry);
        }

        let mut buckets: Vec<Vec<(usize, T)>> = (0..n).map(|_| Vec::new()).collect();
        for (i, task) in tasks.into_iter().enumerate() {
            buckets[i % n].push((i, task));
        }

        let mut tagged: Vec<(usize, Option<T::Output>)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (session, bucket) in self.sessions.iter_mut().zip(buckets) {
                if bucket.is_empty() {
                    continue;
                }
                let telemetry = &telemetry;
                handles.push(scope.spawn(move || {
                    let (ids, tasks): (Vec<usize>, Vec<T>) = bucket.into_iter().unzip();
                    let part = run_task_bucket(session, tasks, telemetry);
                    ids.into_iter().zip(part).collect::<Vec<_>>()
                }));
            }
            for handle in handles {
                match handle.join() {
                    Ok(mut part) => tagged.append(&mut part),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        tagged.sort_by_key(|(i, _)| *i);
        tagged.into_iter().map(|(_, r)| r).collect()
    }
}

/// Run one worker's bucket of tasks on a [`Reactor`] and splice the
/// finished lanes back into the worker's journal and timeline.
///
/// Splice accounting: lanes are visited in admission (bucket) order.
/// A successful lane's staged journal is rebased by `dt_us` — the sum of
/// earlier successful lanes' virtual durations — making the worker
/// journal read as if the bucket had run sequentially; `replay_base`
/// advances by every task's started replays (panicked ones included) so
/// rebased [`liberate_obs::EventKind::ReplayFinished`] ordinals stay
/// consistent with the session's replay counter. The worker clock then
/// advances by the total spliced duration, closing the wave at the same
/// instant the threads engine would.
fn run_task_bucket<S: Substrate, T: FlowTask<S>>(
    session: &mut Session<S>,
    tasks: Vec<T>,
    telemetry: &Journal,
) -> Vec<Option<T::Output>> {
    let t0 = session.env.clock();
    let prewave = session.replays;
    wave_open(session, tasks.len());
    let mut reactor = Reactor::new(session, tasks, telemetry);
    reactor.run(session, telemetry);
    let outcome = reactor.into_outcome();
    let journal = session.journal().clone();
    let mut dt_us: u64 = 0;
    let mut replay_base = prewave;
    for (i, lane) in outcome.lanes.iter().enumerate() {
        if outcome.results[i].is_some() {
            journal.splice_staged(&lane.journal, dt_us, replay_base);
            dt_us += (lane.clock - t0).as_micros() as u64;
        }
        replay_base += outcome.replays[i];
    }
    session.env.advance(Duration::from_micros(dt_us));
    wave_close(session);
    outcome.results
}

/// Open a wave span on the worker's own journal and record how many
/// jobs landed in its bucket (the per-wave occupancy distribution the
/// ROADMAP's worker-scaling question needs).
fn wave_open<S: Substrate>(session: &Session<S>, occupancy: usize) {
    let journal = session.journal();
    journal.span_start(session.env.clock().as_micros(), Phase::Wave);
    journal.observe(Hist::WaveOccupancy, occupancy as u64);
}

fn wave_close<S: Substrate>(session: &Session<S>) {
    session
        .journal()
        .span_end(session.env.clock().as_micros(), Phase::Wave);
}

/// A bisection node awaiting its probes in the next wave. Mirrors the
/// sequential recursion's stack frames exactly.
enum Pending {
    /// `search_message_range` frame: bisect over message indices.
    SplitAtoms(Vec<usize>),
    /// `search_message` frame: bisect a byte range of one message.
    SplitBytes { msg: usize, range: Range<usize> },
    /// The conditional centered-half probe of a `SplitBytes` whose halves
    /// both failed to kill classification.
    Middle {
        msg: usize,
        range: Range<usize>,
        middle: Range<usize>,
    },
}

/// One blinding probe, bound to its trace and pre-assigned round number.
struct ProbeJob {
    trace: usize,
    round: u64,
    blind: Vec<(usize, Range<usize>)>,
}

/// What one probe cost and decided, measured on the worker that ran it.
struct ProbeResult {
    classified: bool,
    bytes_sent: u64,
    bytes_received: u64,
    elapsed: Duration,
}

/// Where a [`ProbeTask`] is between polls.
enum ProbeTaskState {
    /// Nothing has run: the first poll does the probe's bookkeeping
    /// (blinded-bytes counter, billed-counter read) *and* the replay's
    /// Init segment in one go, so every order-sensitive session-global
    /// mutation — the RNG draw, the client-port stride, the ISN bump —
    /// happens in admission order, exactly as the threads engine
    /// sequences them.
    Start,
    /// Forwarding polls to the inner [`ReplaySm`].
    Replaying,
    /// Replay judged; sitting out the mandatory round gap.
    Resting,
}

/// One blinding probe as a reactor [`FlowTask`]: replicates
/// [`probe_blinded`]'s exact sequence — blind, counter read, replay,
/// judgment, rest — as a resumable machine over a private lane.
struct ProbeTask<'a> {
    signal: &'a Signal,
    sm: ReplaySm<RecordedTrace, Schedule>,
    blinded_bytes: u64,
    state: ProbeTaskState,
    t0: SimTime,
    billed_before: i64,
    classified: bool,
    outcome: Option<ReplayOutcome>,
    replays: u64,
}

impl<'a> ProbeTask<'a> {
    /// Build the task for `job`, cloning and blinding the trace and
    /// compiling its schedule up front (both are journal-silent, pure
    /// transformations). `job_index` is the wave-global job number —
    /// the lane's unique client address.
    fn new(
        trace: &RecordedTrace,
        job: ProbeJob,
        job_index: usize,
        signal: &'a Signal,
        opts: &CharacterizeOpts,
    ) -> ProbeTask<'a> {
        let mut t = trace.clone();
        let mut blinded_bytes = 0u64;
        for (msg, range) in &job.blind {
            blinded_bytes += range.len() as u64;
            invert_range(&mut t.messages[*msg].payload, range.clone());
        }
        let schedule = Schedule::from_trace(&t);
        let replay_opts = ReplayOpts {
            server_port: port_for_round(opts, job.round),
            ..Default::default()
        };
        let lane = LaneAddr {
            client_addr: lane_addr(job_index),
            replay_no: 1,
        };
        ProbeTask {
            signal,
            sm: ReplaySm::new(t, schedule, replay_opts, Some(lane)),
            blinded_bytes,
            state: ProbeTaskState::Start,
            t0: SimTime::ZERO,
            billed_before: 0,
            classified: false,
            outcome: None,
            replays: 0,
        }
    }

    fn step_sm<S: Substrate>(&mut self, session: &mut Session<S>) -> TaskPoll<ProbeResult> {
        match self.sm.poll(session) {
            TaskPoll::Done(outcome) => {
                self.classified =
                    was_classified(session, self.signal, &outcome, self.billed_before);
                self.outcome = Some(outcome);
                self.state = ProbeTaskState::Resting;
                TaskPoll::Pending(Wake::Timer(session.config.round_gap))
            }
            TaskPoll::Pending(wake) => TaskPoll::Pending(wake),
        }
    }
}

impl<'a, S: Substrate> FlowTask<S> for ProbeTask<'a> {
    type Output = ProbeResult;

    fn poll(&mut self, session: &mut Session<S>) -> TaskPoll<ProbeResult> {
        match self.state {
            ProbeTaskState::Start => {
                self.t0 = session.env.clock();
                if self.blinded_bytes > 0 {
                    session
                        .env
                        .journal()
                        .metrics
                        .add(Counter::BytesBlinded, self.blinded_bytes);
                }
                self.billed_before = read_billed_counter(session);
                self.replays = 1;
                self.state = ProbeTaskState::Replaying;
                self.step_sm(session)
            }
            ProbeTaskState::Replaying => self.step_sm(session),
            ProbeTaskState::Resting => {
                // lint: allow(no-panic) invariant: set before Resting
                let outcome = self.outcome.take().expect("outcome recorded before rest");
                TaskPoll::Done(ProbeResult {
                    classified: self.classified,
                    bytes_sent: outcome.bytes_sent,
                    bytes_received: outcome.server_payload_bytes,
                    elapsed: session.env.clock() - self.t0,
                })
            }
        }
    }

    fn replays_done(&self) -> u64 {
        self.replays
    }
}

/// Per-trace search state, accumulated across waves.
#[derive(Default)]
struct TraceState {
    /// Blinding rounds consumed (also the next round id to assign).
    rounds: u64,
    pending: Vec<Pending>,
    /// Located single-range leaves, `(message, byte range)`.
    leaves: Vec<(usize, Range<usize>)>,
    fields: Vec<MatchingField>,
    bytes_sent: u64,
    bytes_received: u64,
    elapsed: Duration,
}

impl TraceState {
    fn absorb_cost(&mut self, r: &ProbeResult) {
        self.bytes_sent += r.bytes_sent;
        self.bytes_received += r.bytes_received;
        self.elapsed += r.elapsed;
    }

    fn take_round(&mut self) -> u64 {
        let round = self.rounds;
        self.rounds += 1;
        round
    }

    /// Normalize-and-enqueue for message-index nodes: empty ranges vanish,
    /// single messages fall through to the byte search — exactly the
    /// sequential base cases.
    fn push_atoms(&mut self, trace: &RecordedTrace, atoms: Vec<usize>) {
        match atoms.len() {
            0 => {}
            1 => {
                let i = atoms[0];
                self.push_bytes(i, 0..trace.messages[i].payload.len());
            }
            _ => self.pending.push(Pending::SplitAtoms(atoms)),
        }
    }

    /// Normalize-and-enqueue for byte-range nodes: ranges at bisection
    /// granularity become leaves without probing.
    fn push_bytes(&mut self, msg: usize, range: Range<usize>) {
        if range.len() <= 1 {
            self.leaves.push((msg, range));
        } else {
            self.pending.push(Pending::SplitBytes { msg, range });
        }
    }
}

fn blind_all(atoms: &[usize], trace: &RecordedTrace) -> Vec<(usize, Range<usize>)> {
    atoms
        .iter()
        .map(|&i| (i, 0..trace.messages[i].payload.len()))
        .collect()
}

/// [`crate::characterize::characterize`] for a batch of traces, fanned
/// out over the pool. One trace and one worker degenerate to the
/// sequential algorithm; several traces share each wave, which is what
/// actually fills the pool (individual bisection levels are narrow).
pub fn characterize_many<S: Substrate>(
    pool: &mut SessionPool<S>,
    traces: &[RecordedTrace],
    signal: &Signal,
    opts: &CharacterizeOpts,
) -> Vec<Characterization> {
    let exec = |session: &mut Session<S>, job: ProbeJob| -> ProbeResult {
        let bytes0 = session.bytes_sent_total;
        let recv0 = session.bytes_received_total;
        let t0 = session.env.clock();
        let classified = probe_blinded(
            session,
            &traces[job.trace],
            signal,
            opts,
            &job.blind,
            job.round,
        );
        ProbeResult {
            classified,
            bytes_sent: session.bytes_sent_total - bytes0,
            bytes_received: session.bytes_received_total - recv0,
            elapsed: session.env.clock() - t0,
        }
    };

    // The reactor engine interleaves blinding probes on per-flow lanes.
    // Eligibility: the substrate must support lane swaps, and the signal
    // must be judged from per-flow state alone (Readout, Blocking) —
    // Throttling and ZeroRating compare against shared counters whose
    // readings are order-sensitive, so they stay chained.
    let use_reactor = pool.engine == Engine::Reactor
        && matches!(signal, Signal::Readout | Signal::Blocking)
        && pool.sessions[0].env.supports_lanes();
    let run_probe_wave = |pool: &mut SessionPool<S>, jobs: Vec<ProbeJob>| -> Vec<ProbeResult> {
        if use_reactor {
            let tasks: Vec<ProbeTask<'_>> = jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| ProbeTask::new(&traces[job.trace], job, i, signal, opts))
                .collect();
            pool.run_wave_tasks(tasks)
                .into_iter()
                // lint: allow(no-panic) contract: a panicking replay is a
                // characterization bug; surfacing it beats a silent skip.
                .map(|r| r.expect("probe replays do not panic"))
                .collect()
        } else {
            pool.run_wave(jobs, &exec)
        }
    };

    let mut states: Vec<TraceState> = traces.iter().map(|_| TraceState::default()).collect();

    for s in pool.sessions.iter() {
        s.journal()
            .span_start(s.env.clock().as_micros(), Phase::BlindSearch);
    }

    // Wave A — sanity: each unmodified trace must classify.
    let boot_jobs: Vec<ProbeJob> = (0..traces.len())
        .map(|t| ProbeJob {
            trace: t,
            round: states[t].take_round(),
            blind: Vec::new(),
        })
        .collect();
    let boot = run_probe_wave(pool, boot_jobs);
    let survivors: Vec<usize> = boot
        .iter()
        .enumerate()
        .map(|(t, r)| {
            states[t].absorb_cost(r);
            (t, r.classified)
        })
        .filter(|&(_, classified)| classified)
        .map(|(t, _)| t)
        .collect();

    // Wave B — bisection invariant: blinding the whole searchable space
    // must stop classification.
    let atoms_of: Vec<Vec<usize>> = traces
        .iter()
        .map(|trace| {
            trace
                .messages
                .iter()
                .enumerate()
                .filter(|(_, m)| {
                    !m.payload.is_empty()
                        && (m.sender == Sender::Client || opts.search_server_direction)
                })
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    let everything_jobs: Vec<ProbeJob> = survivors
        .iter()
        .map(|&t| ProbeJob {
            trace: t,
            round: states[t].take_round(),
            blind: blind_all(&atoms_of[t], &traces[t]),
        })
        .collect();
    let everything = run_probe_wave(pool, everything_jobs);
    for (&t, r) in survivors.iter().zip(&everything) {
        states[t].absorb_cost(r);
        if !r.classified {
            let atoms = atoms_of[t].clone();
            states[t].push_atoms(&traces[t], atoms);
        }
    }

    // Wave loop: one bisection level per wave. Jobs are enumerated in
    // canonical order — trace ascending, node order, left before right —
    // and round ids are assigned per trace at enumeration time, so the
    // schedule is independent of how jobs later map onto workers.
    loop {
        struct WaveItem {
            trace: usize,
            pending: Pending,
            jobs: Range<usize>,
        }
        let mut items: Vec<WaveItem> = Vec::new();
        let mut jobs: Vec<ProbeJob> = Vec::new();
        for t in 0..traces.len() {
            for pending in std::mem::take(&mut states[t].pending) {
                let start = jobs.len();
                match &pending {
                    Pending::SplitAtoms(atoms) => {
                        let mid = atoms.len() / 2;
                        let (left, right) = atoms.split_at(mid);
                        for half in [left, right] {
                            jobs.push(ProbeJob {
                                trace: t,
                                round: states[t].take_round(),
                                blind: blind_all(half, &traces[t]),
                            });
                        }
                    }
                    Pending::SplitBytes { msg, range } => {
                        let mid = range.start + range.len() / 2;
                        for half in [range.start..mid, mid..range.end] {
                            jobs.push(ProbeJob {
                                trace: t,
                                round: states[t].take_round(),
                                blind: vec![(*msg, half)],
                            });
                        }
                    }
                    Pending::Middle { msg, middle, .. } => {
                        jobs.push(ProbeJob {
                            trace: t,
                            round: states[t].take_round(),
                            blind: vec![(*msg, middle.clone())],
                        });
                    }
                }
                items.push(WaveItem {
                    trace: t,
                    pending,
                    jobs: start..jobs.len(),
                });
            }
        }
        if jobs.is_empty() {
            break;
        }
        let job_trace: Vec<usize> = jobs.iter().map(|j| j.trace).collect();
        let results = run_probe_wave(pool, jobs);
        for (idx, r) in results.iter().enumerate() {
            states[job_trace[idx]].absorb_cost(r);
        }

        // Expand each node with the sequential recursion's exact rules.
        for item in items {
            let t = item.trace;
            let kills: Vec<bool> = item.jobs.clone().map(|i| !results[i].classified).collect();
            match item.pending {
                Pending::SplitAtoms(atoms) => {
                    let mid = atoms.len() / 2;
                    let (left, right) = atoms.split_at(mid);
                    let (lk, rk) = (kills[0], kills[1]);
                    if lk {
                        states[t].push_atoms(&traces[t], left.to_vec());
                    }
                    if rk {
                        states[t].push_atoms(&traces[t], right.to_vec());
                    }
                    if !lk && !rk {
                        // Conjunctive fields split across the halves:
                        // recurse into both without further probes.
                        states[t].push_atoms(&traces[t], left.to_vec());
                        states[t].push_atoms(&traces[t], right.to_vec());
                    }
                }
                Pending::SplitBytes { msg, range } => {
                    let mid = range.start + range.len() / 2;
                    let (lk, rk) = (kills[0], kills[1]);
                    if lk {
                        states[t].push_bytes(msg, range.start..mid);
                    }
                    if rk {
                        states[t].push_bytes(msg, mid..range.end);
                    }
                    if !lk && !rk {
                        // The field straddles the midpoint: try the
                        // centered half, if it is strictly smaller.
                        let quarter = range.len() / 4;
                        let middle = (range.start + quarter)
                            ..(range.end - quarter).max(range.start + quarter + 1);
                        if middle.len() < range.len() {
                            states[t]
                                .pending
                                .push(Pending::Middle { msg, range, middle });
                        } else {
                            states[t].leaves.push((msg, range));
                        }
                    }
                }
                Pending::Middle { msg, range, middle } => {
                    if kills[0] {
                        states[t].push_bytes(msg, middle);
                    } else {
                        // Give up at this granularity: the whole range is
                        // the field.
                        states[t].leaves.push((msg, range));
                    }
                }
            }
        }
    }

    for s in pool.sessions.iter() {
        s.journal()
            .span_end(s.env.clock().as_micros(), Phase::BlindSearch);
    }

    // Leaves → canonical fields: per message ascending, ranges merged by
    // the sorting `merge_regions`, so the output is independent of the
    // order waves discovered them in.
    for (t, state) in states.iter_mut().enumerate() {
        let mut msgs: Vec<usize> = state.leaves.iter().map(|&(m, _)| m).collect();
        msgs.sort_unstable();
        msgs.dedup();
        for m in msgs {
            let regions: Vec<ByteRegion> = state
                .leaves
                .iter()
                .filter(|&&(mm, _)| mm == m)
                .map(|(_, r)| ByteRegion::new(m, r.clone()))
                .collect();
            let msg = &traces[t].messages[m];
            for region in merge_regions(regions) {
                state.fields.push(MatchingField {
                    message: m,
                    sender: msg.sender,
                    range: region.range.clone(),
                    bytes: msg.payload[region.range.clone()].to_vec(),
                });
            }
        }
    }

    // Position phase: one prepend ladder per trace, each a single
    // sequential job (the ladder is inherently serial), traces fanned
    // across workers.
    let pos_exec = |session: &mut Session<S>, t: usize| {
        let journal = session.journal().clone();
        journal.span_start(session.env.clock().as_micros(), Phase::PositionProbe);
        let bytes0 = session.bytes_sent_total;
        let recv0 = session.bytes_received_total;
        let t0 = session.env.clock();
        let (profile, rounds) = probe_position_inner(session, &traces[t], signal, opts);
        journal.span_end(session.env.clock().as_micros(), Phase::PositionProbe);
        (
            profile,
            rounds,
            session.bytes_sent_total - bytes0,
            session.bytes_received_total - recv0,
            session.env.clock() - t0,
        )
    };
    let ladders = pool.run_wave((0..traces.len()).collect(), &pos_exec);

    // One blind-rounds sample per trace, mirroring the sequential
    // `find_matching_fields`. Worker 0's journal keeps the merged
    // histogram invariant across worker counts.
    for state in &states {
        pool.sessions[0]
            .journal()
            .observe(Hist::BlindRounds, state.rounds);
    }

    states
        .into_iter()
        .zip(ladders)
        .map(
            |(state, (position, ladder_rounds, bytes_sent, bytes_received, elapsed))| {
                Characterization {
                    fields: state.fields,
                    position,
                    rounds: state.rounds + ladder_rounds,
                    bytes_sent: state.bytes_sent + bytes_sent,
                    bytes_received: state.bytes_received + bytes_received,
                    elapsed: state.elapsed + elapsed,
                }
            },
        )
        .collect()
}

/// [`characterize_many`] for a single trace.
pub fn characterize_parallel<S: Substrate>(
    pool: &mut SessionPool<S>,
    trace: &RecordedTrace,
    signal: &Signal,
    opts: &CharacterizeOpts,
) -> Characterization {
    let mut out = characterize_many(pool, std::slice::from_ref(trace), signal, opts);
    // lint: allow(no-panic) contract: one characterization per trace in
    out.pop().expect("one trace in, one characterization out")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::characterize;
    use liberate_obs::Counter;
    use liberate_traces::apps;

    fn pool(workers: usize) -> SessionPool {
        SessionPool::new(
            EnvKind::Testbed,
            OsKind::Linux,
            LiberateConfig::default(),
            workers,
        )
    }

    #[test]
    fn run_wave_returns_results_in_job_order() {
        let mut p = pool(3);
        let jobs: Vec<usize> = (0..10).collect();
        let out = p.run_wave(jobs, &|_s, i| i * 2);
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_stun_characterization_matches_sequential() {
        let trace = apps::skype_stun(4);
        let opts = CharacterizeOpts::default();

        let mut solo = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
        let seq = characterize(&mut solo, &trace, &Signal::Readout, &opts);

        for workers in [1usize, 2] {
            let mut p = pool(workers);
            let par = characterize_parallel(&mut p, &trace, &Signal::Readout, &opts);
            assert_eq!(par.fields, seq.fields, "workers={workers}");
            assert_eq!(par.rounds, seq.rounds, "workers={workers}");
            assert_eq!(par.position, seq.position, "workers={workers}");
            assert_eq!(par.bytes_sent, seq.bytes_sent, "workers={workers}");
        }
    }

    #[test]
    fn merged_journal_accounts_every_replay() {
        let trace = apps::skype_stun(4);
        let mut p = pool(2);
        let c = characterize_parallel(
            &mut p,
            &trace,
            &Signal::Readout,
            &CharacterizeOpts::default(),
        );

        let merged = Arc::new(Journal::new());
        p.merge_journals_into(&merged);
        assert_eq!(merged.metrics.get(Counter::ReplaysExecuted), c.rounds);
        // Every absorbed event carries its worker tag.
        assert!(merged.events().iter().all(|e| e.worker.is_some()));
    }

    #[test]
    fn pool_workers_share_one_flow_table() {
        let blueprint = EnvironmentBlueprint::new(EnvKind::Testbed, 0);
        let mut p =
            SessionPool::from_blueprint(&blueprint, OsKind::Linux, LiberateConfig::default(), 3);
        assert_eq!(p.workers(), 3);
        let shared = blueprint.shared_table();
        for w in 0..p.workers() {
            let table = p
                .session_mut(w)
                .env
                .dpi_mut()
                .expect("testbed has a DPI device")
                .shared_table();
            assert!(Arc::ptr_eq(&shared, &table), "worker {w}");
        }
    }
}
