//! Shared characterization results (§4.2): "An alternative approach to
//! reduce runtimes is to distribute disjoint subsets of the tests among
//! multiple users in the same network, and aggregate the results. These
//! test results can be stored in a well known public location (e.g., a
//! server or a DHT) so that all users can identify the matching rules
//! without running additional tests."
//!
//! We model the public store as a serde-serializable [`RuleCache`] keyed
//! by (network, application). The paper also notes the drawback — an
//! adversary who reads the cache learns the detected rules — which is why
//! entries record *when* they were learned so stale entries can be
//! re-verified cheaply (one replay) instead of re-characterized (~70).

use std::collections::HashMap;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use liberate_substrate::Substrate;
use liberate_traces::recorded::{RecordedTrace, Sender};

use crate::characterize::{Characterization, MatchingField, PositionProfile};
use crate::detect::{inverted_trace, probe, Signal};
use crate::replay::{ReplayOpts, Session};

/// A serializable description of the signal the contributor used, so a
/// reusing client can reconstruct an equivalent [`Signal`] (the throttling
/// variant re-measures its control locally).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CachedSignal {
    Blocking,
    ZeroRating,
    Readout,
    Throttling,
}

impl CachedSignal {
    pub fn from_signal(signal: &Signal) -> CachedSignal {
        match signal {
            Signal::Blocking => CachedSignal::Blocking,
            Signal::ZeroRating => CachedSignal::ZeroRating,
            Signal::Readout => CachedSignal::Readout,
            Signal::Throttling { .. } => CachedSignal::Throttling,
        }
    }

    /// Reconstruct a usable signal, measuring a local throttling control
    /// when needed.
    pub fn to_signal<S: Substrate>(
        self,
        session: &mut Session<S>,
        trace: &liberate_traces::recorded::RecordedTrace,
    ) -> Signal {
        match self {
            CachedSignal::Blocking => Signal::Blocking,
            CachedSignal::ZeroRating => Signal::ZeroRating,
            CachedSignal::Readout => Signal::Readout,
            CachedSignal::Throttling => {
                let control = session.replay_trace(&inverted_trace(trace), &ReplayOpts::default());
                Signal::Throttling {
                    control_bps: control.avg_bps,
                    ratio: session.config.throttle_ratio,
                }
            }
        }
    }
}

/// A cacheable, serializable summary of one characterization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedRules {
    /// Matching fields as (message index, start, end) plus the bytes.
    pub fields: Vec<CachedField>,
    pub prepend_break: Option<usize>,
    pub packet_based: bool,
    pub matches_all_packets: bool,
    /// Simulated time (seconds since epoch of the contributing session)
    /// at which these rules were learned.
    pub learned_at_secs: u64,
    /// How many replay rounds the contributor spent — what the next user
    /// saves.
    pub rounds_spent: u64,
    /// The signal the contributor observed classification with.
    pub signal: CachedSignal,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedField {
    pub message: usize,
    pub start: usize,
    pub end: usize,
    pub bytes: Vec<u8>,
}

impl CachedRules {
    pub fn from_characterization(c: &Characterization, learned_at_secs: u64) -> CachedRules {
        CachedRules::from_characterization_with_signal(c, learned_at_secs, CachedSignal::Blocking)
    }

    pub fn from_characterization_with_signal(
        c: &Characterization,
        learned_at_secs: u64,
        signal: CachedSignal,
    ) -> CachedRules {
        CachedRules {
            fields: c
                .fields
                .iter()
                .map(|f| CachedField {
                    message: f.message,
                    start: f.range.start,
                    end: f.range.end,
                    bytes: f.bytes.clone(),
                })
                .collect(),
            prepend_break: c.position.prepend_break,
            packet_based: c.position.packet_based,
            matches_all_packets: c.position.matches_all_packets,
            learned_at_secs,
            rounds_spent: c.rounds,
            signal,
        }
    }

    /// Reconstitute a [`Characterization`] usable by the evaluation and
    /// deployment phases (cost fields are zero: the cache paid them).
    pub fn to_characterization(&self, trace: &RecordedTrace) -> Characterization {
        Characterization {
            fields: self
                .fields
                .iter()
                .map(|f| MatchingField {
                    message: f.message,
                    sender: trace
                        .messages
                        .get(f.message)
                        .map(|m| m.sender)
                        .unwrap_or(Sender::Client),
                    range: f.start..f.end,
                    bytes: f.bytes.clone(),
                })
                .collect(),
            position: PositionProfile {
                prepend_break: self.prepend_break,
                packet_based: self.packet_based,
                matches_all_packets: self.matches_all_packets,
            },
            rounds: 0,
            bytes_sent: 0,
            bytes_received: 0,
            elapsed: std::time::Duration::ZERO,
        }
    }
}

/// The "well known public location": a map from (network name, app name)
/// to shared rules, serializable for distribution.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RuleCache {
    entries: HashMap<String, CachedRules>,
}

fn key(network: &str, app: &str) -> String {
    format!("{network}/{app}")
}

impl RuleCache {
    pub fn new() -> RuleCache {
        RuleCache::default()
    }

    pub fn publish(&mut self, network: &str, app: &str, rules: CachedRules) {
        self.entries.insert(key(network, app), rules);
    }

    pub fn lookup(&self, network: &str, app: &str) -> Option<&CachedRules> {
        self.entries.get(&key(network, app))
    }

    /// [`RuleCache::lookup`] variant that records the hit or miss in an
    /// observability journal, so cache effectiveness shows up in traces.
    pub fn lookup_observed(
        &self,
        network: &str,
        app: &str,
        journal: &liberate_obs::Journal,
        t_us: u64,
    ) -> Option<&CachedRules> {
        let k = key(network, app);
        let found = self.entries.get(&k);
        if found.is_some() {
            journal.metrics.incr(liberate_obs::Counter::CacheHits);
            journal.record(t_us, liberate_obs::EventKind::CacheHit { key: k });
        } else {
            journal.metrics.incr(liberate_obs::Counter::CacheMisses);
            journal.record(t_us, liberate_obs::EventKind::CacheMiss { key: k });
        }
        found
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cheap freshness check: blind each cached field *individually* and
    /// replay. Fresh iff every such blinding stops classification — if
    /// some field no longer matters (a new rule matches elsewhere), the
    /// entry is stale and full characterization must rerun. Costs one
    /// round per cached field (a handful) instead of the contributor's
    /// `rounds_spent` (~70).
    ///
    /// Per-field blinding matters: blinding all fields at once would also
    /// blind protocol-anchoring bytes like `GET `, which stops *any*
    /// gated rule and would mask a rule change.
    pub fn verify<S: Substrate>(
        &self,
        network: &str,
        app: &str,
        session: &mut Session<S>,
        trace: &RecordedTrace,
        signal: &Signal,
    ) -> Option<bool> {
        let cached = self.lookup(network, app)?;
        for f in &cached.fields {
            let mut blinded = trace.clone();
            if let Some(msg) = blinded.messages.get_mut(f.message) {
                liberate_packet::mutate::invert_range(&mut msg.payload, f.start..f.end);
            }
            let (_, still_classified) = probe(session, &blinded, &ReplayOpts::default(), signal);
            if still_classified {
                return Some(false); // this field no longer gates the rule
            }
        }
        Some(true)
    }
}

/// A [`RuleCache`] handle shared between concurrent users — the paper's
/// "well known public location" when several sessions on one network hit
/// it at once. Reads are epoch-style snapshots through a
/// [`Seqlock`](crate::seqlock::Seqlock): a lookup clones one `Arc`, never
/// takes a reader lock, and never holds anything across a replay.
/// Publishes copy the store, insert, and install the copy as the next
/// generation — rare enough (once per learned network/app) that the
/// copy is noise next to the ~70 replays the entry saves. Cloning the
/// handle shares the same underlying store.
#[derive(Debug, Clone, Default)]
pub struct SharedRuleCache {
    inner: Arc<crate::seqlock::Seqlock<RuleCache>>,
}

impl SharedRuleCache {
    pub fn new() -> SharedRuleCache {
        SharedRuleCache::default()
    }

    /// Wrap an existing cache (e.g. one deserialized from the public
    /// store) for concurrent use.
    pub fn from_cache(cache: RuleCache) -> SharedRuleCache {
        SharedRuleCache {
            inner: Arc::new(crate::seqlock::Seqlock::new(cache)),
        }
    }

    pub fn publish(&self, network: &str, app: &str, rules: CachedRules) {
        self.inner
            .update(|store| store.publish(network, app, rules));
    }

    pub fn lookup(&self, network: &str, app: &str) -> Option<CachedRules> {
        self.inner.read().lookup(network, app).cloned()
    }

    /// [`SharedRuleCache::lookup`] that journals the hit or miss.
    pub fn lookup_observed(
        &self,
        network: &str,
        app: &str,
        journal: &liberate_obs::Journal,
        t_us: u64,
    ) -> Option<CachedRules> {
        self.inner
            .read()
            .lookup_observed(network, app, journal, t_us)
            .cloned()
    }

    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// An owned copy of the current store, for redistribution.
    pub fn snapshot(&self) -> RuleCache {
        RuleCache::clone(&self.inner.read())
    }

    /// [`RuleCache::verify`] against a point-in-time snapshot: the entry
    /// is cloned out first, so the verification replays run without
    /// holding the lock (another user may publish meanwhile — the caller
    /// sees the entry it verified, not the concurrent update).
    pub fn verify<S: Substrate>(
        &self,
        network: &str,
        app: &str,
        session: &mut Session<S>,
        trace: &RecordedTrace,
        signal: &Signal,
    ) -> Option<bool> {
        let snapshot = self.snapshot();
        snapshot.verify(network, app, session, trace, signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CharacterizeOpts};
    use crate::config::LiberateConfig;
    use crate::sim::OsKind;
    use liberate_dpi::profiles::EnvKind;
    use liberate_traces::apps;

    #[test]
    fn second_user_skips_characterization() {
        let trace = apps::amazon_prime_http(30_000);
        let mut cache = RuleCache::new();

        // User A pays the characterization cost and publishes.
        let mut a = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
        let c = characterize(
            &mut a,
            &trace,
            &Signal::Readout,
            &CharacterizeOpts::default(),
        );
        assert!(c.rounds > 10);
        cache.publish(
            "testbed",
            &trace.app,
            CachedRules::from_characterization(&c, 0),
        );

        // User B verifies with ONE replay and reuses the fields.
        let mut b = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
        let fresh = cache
            .verify("testbed", &trace.app, &mut b, &trace, &Signal::Readout)
            .expect("entry exists");
        assert!(fresh, "rules have not changed");
        let fields = cache.lookup("testbed", &trace.app).unwrap().fields.len() as u64;
        assert_eq!(b.replays, fields, "verification costs one round per field");
        assert!(fields < c.rounds / 5, "far cheaper than re-characterizing");

        let reused = cache
            .lookup("testbed", &trace.app)
            .unwrap()
            .to_characterization(&trace);
        assert_eq!(reused.fields.len(), c.fields.len());
        assert_eq!(reused.position, c.position);
        assert_eq!(reused.rounds, 0, "no rounds spent by the reuser");
    }

    #[test]
    fn stale_entries_detected_in_one_round() {
        let trace = apps::amazon_prime_http(30_000);
        let mut cache = RuleCache::new();

        let mut a = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
        let c = characterize(
            &mut a,
            &trace,
            &Signal::Readout,
            &CharacterizeOpts::default(),
        );
        cache.publish(
            "testbed",
            &trace.app,
            CachedRules::from_characterization(&c, 0),
        );

        // The operator swaps the rule to match the User-Agent instead of
        // the Host header.
        let mut b = Session::new(EnvKind::Testbed, OsKind::Linux, LiberateConfig::default());
        {
            let dpi = b.env.dpi_mut().unwrap();
            dpi.config.rules =
                liberate_dpi::rules::RuleSet::new(vec![liberate_dpi::rules::MatchRule::keyword(
                    "ua",
                    "video",
                    &b"AmazonPrimeVideo"[..],
                )
                .client_only()]);
        }
        let fresh = cache
            .verify("testbed", &trace.app, &mut b, &trace, &Signal::Readout)
            .unwrap();
        assert!(
            !fresh,
            "blinding the old fields no longer stops classification"
        );
        assert!(b.replays <= 4, "staleness detected within a few rounds");
    }

    #[test]
    fn missing_entries_are_none() {
        let cache = RuleCache::new();
        assert!(cache.lookup("nowhere", "nothing").is_none());
        assert!(cache.is_empty());
    }
}
