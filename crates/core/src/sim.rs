//! The reference [`Substrate`]: `liberate-netsim`'s deterministic
//! discrete-event simulator, wrapped so the rest of this crate never
//! names the simulator directly.
//!
//! This is the **only** module in `crates/core` allowed to mention
//! `liberate_netsim` (enforced by the `substrate-seam` lint, LIB013).
//! Everything else — the replay engine, detection, characterization, the
//! pools — goes through the [`Substrate`] trait, and concrete
//! sim-specific access (e.g. `session.env.dpi_mut()` in tests) rides the
//! `Deref` to [`Environment`] this module provides.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use liberate_dpi::profiles::{build_environment, EnvKind, Environment, EnvironmentBlueprint};
use liberate_obs::Journal;
use liberate_packet::flow::FlowKey;
use liberate_substrate::capture::Capture;
use liberate_substrate::script::{ScriptEngine, ServerObs, ServerScript};
use liberate_substrate::time::SimTime;
use liberate_substrate::{ClassVerdict, LaneState, Substrate};

pub use liberate_netsim::os::OsKind;
pub use liberate_netsim::server::{EchoApp, ServerApp, SinkApp};

/// Adapter: a backend-neutral [`ScriptEngine`] plugged into the
/// simulator's [`ServerApp`] slot. The engine ignores flow identity (one
/// scripted flow per replay), so the flow argument is dropped.
struct ScriptServerApp {
    engine: ScriptEngine,
}

impl ServerApp for ScriptServerApp {
    fn on_tcp_data(&mut self, _flow: FlowKey, data: &[u8]) -> Vec<u8> {
        self.engine.on_tcp_data(data)
    }

    fn on_udp_datagram(&mut self, _flow: FlowKey, data: &[u8]) -> Vec<Vec<u8>> {
        self.engine.on_udp_datagram(data)
    }
}

/// Reactor-mode adapter: many scripted flows multiplexed through one
/// server host, each client address owning its own [`ScriptEngine`].
/// Routing keys on `flow.src` alone — the reactor assigns every
/// in-flight task a unique client address, so the key is unambiguous
/// even across that task's port-rotating replays.
#[derive(Default)]
struct MuxScriptApp {
    engines: HashMap<Ipv4Addr, ScriptEngine>,
}

impl ServerApp for MuxScriptApp {
    fn on_tcp_data(&mut self, flow: FlowKey, data: &[u8]) -> Vec<u8> {
        match self.engines.get_mut(&flow.src) {
            Some(engine) => engine.on_tcp_data(data),
            None => Vec::new(),
        }
    }

    fn on_udp_datagram(&mut self, flow: FlowKey, data: &[u8]) -> Vec<Vec<u8>> {
        match self.engines.get_mut(&flow.src) {
            Some(engine) => engine.on_udp_datagram(data),
            None => Vec::new(),
        }
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }
}

/// The simulator-backed substrate: owns a full [`Environment`] (network,
/// path elements, DPI device, journal) and exposes it through the
/// backend-neutral trait. `Deref`s to the environment so sim-aware
/// callers (tests, experiment binaries) keep their direct access.
pub struct SimSubstrate {
    env: Environment,
}

impl SimSubstrate {
    /// A fresh environment of `kind`, with control over the simulated
    /// time of day at start (Figure 4 sweeps it for the GFC).
    pub fn new(kind: EnvKind, os: OsKind, start_time_of_day_secs: u64) -> SimSubstrate {
        // The app is replaced per replay; a sink placeholder to start.
        let env = build_environment(
            kind,
            os,
            Box::new(SinkApp::default()),
            start_time_of_day_secs,
        );
        SimSubstrate { env }
    }

    /// A worker environment over a shared [`EnvironmentBlueprint`] (own
    /// network and journal, the blueprint's shared sharded flow table).
    pub fn from_blueprint(blueprint: &EnvironmentBlueprint, os: OsKind) -> SimSubstrate {
        SimSubstrate {
            env: blueprint.build(os, Box::new(SinkApp::default())),
        }
    }

    /// Wrap an environment built elsewhere.
    pub fn over(env: Environment) -> SimSubstrate {
        SimSubstrate { env }
    }
}

impl Deref for SimSubstrate {
    type Target = Environment;

    fn deref(&self) -> &Environment {
        &self.env
    }
}

impl DerefMut for SimSubstrate {
    fn deref_mut(&mut self) -> &mut Environment {
        &mut self.env
    }
}

impl Substrate for SimSubstrate {
    fn backend_name(&self) -> &'static str {
        "sim"
    }

    fn env_name(&self) -> String {
        self.env.kind.name().to_string()
    }

    fn hops_before_middlebox(&self) -> u8 {
        self.env.hops_before_middlebox
    }

    fn clock(&self) -> SimTime {
        self.env.network.clock
    }

    fn advance(&mut self, d: Duration) {
        self.env.network.advance(d);
    }

    fn run_until_idle(&mut self) {
        self.env.network.run_until_idle();
    }

    fn inject_client(&mut self, delay: Duration, wire: Vec<u8>) {
        self.env.network.send_from_client(delay, wire);
    }

    fn take_client_inbox(&mut self) -> Vec<(SimTime, liberate_substrate::buf::PacketBuf)> {
        self.env.network.take_client_inbox()
    }

    fn install_server_script(&mut self, script: ServerScript) -> Arc<Mutex<ServerObs>> {
        let (engine, obs) = ScriptEngine::new(script);
        self.env
            .network
            .server
            .set_app(Box::new(ScriptServerApp { engine }));
        obs
    }

    fn capture(&self) -> &Capture {
        &self.env.network.capture
    }

    fn clear_capture(&mut self) {
        self.env.network.capture.clear();
    }

    fn set_capture_points(&mut self, points: &[liberate_substrate::capture::TapPoint]) {
        self.env.network.capture.set_recorded_points(points);
    }

    fn journal(&self) -> &Arc<Journal> {
        &self.env.journal
    }

    fn set_journal(&mut self, journal: Arc<Journal>) {
        self.env.attach_journal(journal);
    }

    fn reclaim_flows(&mut self) {
        if let Some(dpi) = self.env.dpi_mut() {
            dpi.drain_expired_flows();
        }
    }

    fn billed_bytes(&mut self) -> Option<u64> {
        self.env.dpi_mut().map(|d| d.billed_bytes)
    }

    fn verdict_for(&mut self, flow: FlowKey) -> Option<ClassVerdict> {
        let dpi = self.env.dpi_mut()?;
        let class = dpi.classification_of(flow)?;
        let effective = dpi
            .config
            .policies
            .get(&class)
            .map(|p| !p.is_noop())
            .unwrap_or(false);
        Some(ClassVerdict { class, effective })
    }

    fn supports_lanes(&self) -> bool {
        true
    }

    fn swap_lane(&mut self, lane: &mut LaneState) {
        self.env
            .network
            .swap_lane(&mut lane.clock, &mut lane.step_epoch_us, &mut lane.capture);
        let prev = Arc::clone(&self.env.journal);
        self.env.attach_journal(Arc::clone(&lane.journal));
        lane.journal = prev;
    }

    fn mark_step_epoch(&mut self) {
        self.env.network.mark_step_epoch();
    }

    fn install_server_script_for(
        &mut self,
        client: Ipv4Addr,
        script: ServerScript,
    ) -> Arc<Mutex<ServerObs>> {
        let (engine, obs) = ScriptEngine::new(script);
        let server = &mut self.env.network.server;
        let is_mux = server
            .app_mut()
            .as_any_mut()
            .is_some_and(|a| a.is::<MuxScriptApp>());
        if !is_mux {
            server.set_app(Box::<MuxScriptApp>::default());
        }
        let mux = server
            .app_mut()
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<MuxScriptApp>())
            // lint: allow(no-panic) invariant: the branch above just
            // installed a MuxScriptApp when one wasn't present.
            .expect("server app is the mux installed above");
        mux.engines.insert(client, engine);
        obs
    }

    fn remove_server_script_for(&mut self, client: Ipv4Addr) {
        let server = &mut self.env.network.server;
        if let Some(mux) = server
            .app_mut()
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<MuxScriptApp>())
        {
            mux.engines.remove(&client);
        }
        server.evict_client(client);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_substrate_exposes_the_environment_surface() {
        let mut sub = SimSubstrate::new(EnvKind::Testbed, OsKind::Linux, 0);
        assert_eq!(sub.backend_name(), "sim");
        assert_eq!(sub.env_name(), "Testbed");
        assert_eq!(
            Substrate::hops_before_middlebox(&sub),
            sub.env.hops_before_middlebox
        );
        assert_eq!(sub.clock(), SimTime::ZERO);
        sub.advance(Duration::from_millis(5));
        assert!(sub.clock() > SimTime::ZERO);
        // The testbed exposes a billed counter; nothing classified yet.
        assert_eq!(sub.billed_bytes(), Some(0));
        let key = FlowKey::new(
            liberate_dpi::profiles::CLIENT_ADDR,
            liberate_dpi::profiles::SERVER_ADDR,
            42_000,
            80,
            6,
        );
        assert!(sub.verdict_for(key).is_none());
    }

    #[test]
    fn sprint_has_no_readable_counter_or_verdict() {
        let mut sub = SimSubstrate::new(EnvKind::Sprint, OsKind::Linux, 0);
        assert_eq!(sub.billed_bytes(), None);
        let key = FlowKey::new(
            liberate_dpi::profiles::CLIENT_ADDR,
            liberate_dpi::profiles::SERVER_ADDR,
            42_000,
            80,
            6,
        );
        assert!(sub.verdict_for(key).is_none());
    }
}
