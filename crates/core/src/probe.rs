//! Network probing (§5.2): locating the middlebox in TTL-space and
//! checking whether crafted inert packets survive to the middlebox and/or
//! the server.

use liberate_substrate::capture::TapPoint;
use liberate_substrate::Substrate;
use liberate_traces::recorded::RecordedTrace;

use crate::detect::{read_billed_counter, was_classified, Signal};
use crate::evasion::{EvasionContext, Technique};
use crate::replay::{ReplayOpts, Session};
use crate::schedule::Schedule;

/// Marker embedded in decoy payloads so captures can recognize them.
pub const DECOY_MARKER: &[u8] = b"/liberate-decoy";

/// A decoy request for the innocuous class A (Fig. 2): valid HTTP, no
/// matching fields of the application under test, recognizable in
/// captures via [`DECOY_MARKER`].
pub fn decoy_request() -> Vec<u8> {
    liberate_traces::http::get_request("www.example.org", "/liberate-decoy", "decoy/1.0")
}

/// Result of middlebox localization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Localization {
    /// Smallest TTL at which a TTL-limited matching packet triggered
    /// classification — the middlebox's hop distance.
    pub middlebox_ttl: Option<u8>,
    /// TTL probes spent.
    pub rounds: u64,
}

/// Locate the middlebox: replay a *carrier* trace (that never classifies)
/// with one TTL-limited inert packet carrying `matching_payload` inserted
/// at flow start; sweep the TTL upward until classification appears
/// (§5.2: "a series of probes ... incrementing the TTL until we observe a
/// response indicating that the TTL-limited flow was classified").
pub fn locate_middlebox<S: Substrate>(
    session: &mut Session<S>,
    carrier: &RecordedTrace,
    matching_payload: &[u8],
    signal: &Signal,
) -> Localization {
    locate_middlebox_rotating(session, carrier, matching_payload, signal, None)
}

/// [`locate_middlebox`] with per-probe server-port rotation (each probe
/// whose TTL reaches a GFC-style classifier gets that flow blocked, which
/// would otherwise accrue a server:port penalty, §6.5).
pub fn locate_middlebox_rotating<S: Substrate>(
    session: &mut Session<S>,
    carrier: &RecordedTrace,
    matching_payload: &[u8],
    signal: &Signal,
    rotate_base: Option<u16>,
) -> Localization {
    let mut rounds = 0;
    for ttl in 1..=session.config.max_probe_ttl {
        rounds += 1;
        let ctx = EvasionContext::blind(matching_payload.to_vec(), ttl);
        let Some(schedule) = Technique::InertLowTtl.apply(&Schedule::from_trace(carrier), &ctx)
        else {
            // A carrier with no data packets can't probe at any TTL.
            break;
        };
        let billed_before = read_billed_counter(session);
        let opts = ReplayOpts {
            server_port: rotate_base.map(|b| b.wrapping_add(ttl as u16)),
            ..Default::default()
        };
        let outcome = session.replay_schedule(carrier, &schedule, &opts);
        let classified = was_classified(session, signal, &outcome, billed_before);
        let gap = session.config.round_gap;
        session.rest(gap);
        if classified {
            return Localization {
                middlebox_ttl: Some(ttl),
                rounds,
            };
        }
    }
    Localization {
        middlebox_ttl: None,
        rounds,
    }
}

/// Whether an inert packet carrying [`DECOY_MARKER`] reached the server's
/// NIC during the most recent replay (the RS? measurement: a capture at
/// the replay server).
pub fn decoy_reached_server<S: Substrate>(session: &Session<S>) -> bool {
    session
        .env
        .capture()
        .any_at(TapPoint::ServerIngress, |wire| {
            wire.windows(DECOY_MARKER.len()).any(|w| w == DECOY_MARKER)
        })
}

/// §5.2 "Do invalid inert packets reach the middlebox?": send the inert
/// variant against the replay server; if it arrives there it certainly
/// crossed the middlebox. If it does not arrive, check whether subsequent
/// valid traffic was differentiated — if so, the middlebox still saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InertReach {
    /// Observed at the server: crossed the middlebox.
    ReachedServer,
    /// Never reached the server, but the carrier flow got differentiated:
    /// the middlebox processed the inert packet before it was dropped.
    ReachedMiddleboxOnly,
    /// No effect anywhere: "the inert packet is either ignored by the
    /// middlebox or never reaches it" (§5.2).
    NotObserved,
}

/// Test inert-packet reach for one technique. The context's decoy should
/// carry *matching* content for a flow the carrier itself does not
/// trigger, so middlebox processing becomes observable as differentiation
/// of the otherwise-innocuous carrier.
pub fn inert_reach<S: Substrate>(
    session: &mut Session<S>,
    carrier: &RecordedTrace,
    technique: &Technique,
    ctx: &EvasionContext,
    signal: &Signal,
) -> Option<InertReach> {
    let schedule = technique.apply(&Schedule::from_trace(carrier), ctx)?;
    let billed_before = read_billed_counter(session);
    let outcome = session.replay_schedule(carrier, &schedule, &ReplayOpts::default());
    let reached_server = decoy_reached_server(session);
    let classified = was_classified(session, signal, &outcome, billed_before);
    let gap = session.config.round_gap;
    session.rest(gap);
    Some(if reached_server {
        InertReach::ReachedServer
    } else if classified {
        InertReach::ReachedMiddleboxOnly
    } else {
        InertReach::NotObserved
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LiberateConfig;
    use crate::sim::OsKind;
    use liberate_dpi::profiles::EnvKind;
    use liberate_traces::apps;

    fn session(kind: EnvKind) -> Session {
        Session::new(kind, OsKind::Linux, LiberateConfig::default())
    }

    /// A probe payload carrying both the target's matching keyword (via
    /// the Host header) and the capture marker (via the path).
    fn blocked_request(host: &str) -> Vec<u8> {
        liberate_traces::http::get_request(host, "/liberate-decoy", "probe/1.0")
    }

    #[test]
    fn locates_gfc_at_ttl_10() {
        let mut s = session(EnvKind::Gfc);
        let loc = locate_middlebox(
            &mut s,
            &apps::control_http(),
            &blocked_request("www.economist.com"),
            &Signal::Blocking,
        );
        // §6.5: "using a TTL of 10 leads to misclassification without
        // reaching the server".
        assert_eq!(loc.middlebox_ttl, Some(10));
    }

    #[test]
    fn locates_iran_at_ttl_8() {
        let mut s = session(EnvKind::Iran);
        let loc = locate_middlebox(
            &mut s,
            &apps::control_http(),
            &blocked_request("www.facebook.com"),
            &Signal::Blocking,
        );
        // §6.6: "the classifier is eight hops away from our client".
        assert_eq!(loc.middlebox_ttl, Some(8));
    }

    #[test]
    fn locates_tmus_at_ttl_3() {
        let mut s = session(EnvKind::TMobile);
        // The carrier must move >= 200 KB per round for a reliable
        // zero-rating counter read (§6.2).
        let carrier =
            liberate_traces::generator::generate(&liberate_traces::generator::WorkloadSpec {
                server_bytes: 500_000,
                ..Default::default()
            });
        let loc = locate_middlebox(
            &mut s,
            &carrier,
            &blocked_request("video.cloudfront.net"),
            &Signal::ZeroRating,
        );
        // §6.2: "an inert packet with TTL = 3 is sufficient".
        assert_eq!(loc.middlebox_ttl, Some(3));
    }

    #[test]
    fn sprint_has_no_middlebox() {
        let mut s = session(EnvKind::Sprint);
        let loc = locate_middlebox(
            &mut s,
            &apps::control_http(),
            &blocked_request("video.cloudfront.net"),
            &Signal::Blocking,
        );
        assert_eq!(loc.middlebox_ttl, None);
        assert_eq!(loc.rounds as usize, 20);
    }

    #[test]
    fn decoy_carries_marker_and_no_keywords() {
        let d = decoy_request();
        assert!(d.windows(DECOY_MARKER.len()).any(|w| w == DECOY_MARKER));
        for kw in [
            &b"cloudfront"[..],
            b"economist",
            b"facebook",
            b"googlevideo",
        ] {
            assert!(liberate_traces::http::find(&d, kw).is_none());
        }
    }

    #[test]
    fn inert_reach_distinguishes_cases() {
        // The inert decoy carries a *video* request over a control carrier,
        // so middlebox processing shows up as classification.
        let ctx = EvasionContext {
            matching_fields: vec![],
            decoy: blocked_request("video.cloudfront.net"),
            middlebox_ttl: 1,
        };

        // Testbed, wrong IP checksum: the DPI processes it (lax
        // validation); the lab router then drops it => middlebox only.
        let mut s = session(EnvKind::Testbed);
        let reach = inert_reach(
            &mut s,
            &apps::control_http(),
            &Technique::InertIpWrongChecksum,
            &ctx,
            &Signal::Readout,
        )
        .unwrap();
        assert_eq!(reach, InertReach::ReachedMiddleboxOnly);

        // Testbed, invalid version: the DPI itself ignores it and the
        // router drops it => no observation anywhere.
        let mut s = session(EnvKind::Testbed);
        let reach = inert_reach(
            &mut s,
            &apps::control_http(),
            &Technique::InertIpInvalidVersion,
            &ctx,
            &Signal::Readout,
        )
        .unwrap();
        assert_eq!(reach, InertReach::NotObserved);

        // Testbed, wrong TCP checksum: processed by the DPI *and*
        // forwarded to the server by the lab router.
        let mut s = session(EnvKind::Testbed);
        let schedule_reach = inert_reach(
            &mut s,
            &apps::control_http(),
            &Technique::InertTcpWrongChecksum,
            &ctx,
            &Signal::Readout,
        )
        .unwrap();
        assert_eq!(schedule_reach, InertReach::ReachedServer);
    }
}
