//! Evasion evaluation (§4.3 "Evasion Evaluation", §5.2 "Efficient evasion
//! testing"): run candidate techniques against a live classifier, judge
//! CC? (changed classification) and RS? (reached server), prune and order
//! candidates using what characterization learned, and pick the cheapest
//! working technique for deployment.

use liberate_obs::{Counter, EventKind, Phase};
use liberate_packet::packet::ParsedPacket;
use liberate_packet::validate::{validate_wire, Malformation};
use liberate_substrate::capture::TapPoint;
use liberate_substrate::Substrate;
use liberate_traces::recorded::RecordedTrace;

use crate::characterize::PositionProfile;
use crate::detect::{read_billed_counter, was_classified, Signal};
use crate::evasion::{Category, EvasionContext, Technique};
use crate::probe::DECOY_MARKER;
use crate::replay::{ReplayOpts, ReplayOutcome, Session};
use crate::schedule::Schedule;

/// Table 3's RS? verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reach {
    /// The inserted/modified packets never reached the server.
    No,
    /// They arrived as sent.
    Yes,
    /// Something arrived, but not what was sent (reassembled fragments,
    /// repaired checksums — the overlined check marks of Table 3).
    Transformed,
}

/// The verdict for one technique in one environment.
#[derive(Debug, Clone)]
pub struct TechniqueResult {
    pub technique: Technique,
    /// Did the technique change classification? `None` renders as "—":
    /// the environment does not classify this flow at all (e.g. UDP on
    /// T-Mobile), so there is nothing to evade.
    pub cc: Option<bool>,
    pub rs: Reach,
    /// The transfer completed and the server saw an intact stream (no
    /// side effects).
    pub app_intact: bool,
    /// Replay rounds this judgment consumed (split rows escalate).
    pub rounds: u64,
    /// The parameterization that succeeded, when escalation was used.
    pub effective: Technique,
}

/// Inputs shared by every technique evaluation in one environment.
#[derive(Debug, Clone)]
pub struct EvaluationInputs {
    pub signal: Signal,
    pub ctx: EvasionContext,
    /// Rotate server ports between replays (GFC penalties, §6.5).
    pub rotate_server_ports: bool,
}

fn replay_opts<S: Substrate>(inputs: &EvaluationInputs, session: &Session<S>) -> ReplayOpts {
    ReplayOpts {
        server_port: inputs
            .rotate_server_ports
            .then_some(10_000 + (session.replays % 50_000) as u16),
        ..Default::default()
    }
}

/// Replay `trace` with `technique`; judge classification.
fn run_technique<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    technique: &Technique,
    inputs: &EvaluationInputs,
) -> Option<(ReplayOutcome, bool)> {
    let schedule = technique.apply(&Schedule::from_trace(trace), &inputs.ctx)?;
    let opts = replay_opts(inputs, session);
    let billed_before = read_billed_counter(session);
    let outcome = session.replay_schedule(trace, &schedule, &opts);
    let classified = was_classified(session, &inputs.signal, &outcome, billed_before);
    let gap = session.config.round_gap;
    session.rest(gap);
    Some((outcome, classified))
}

/// The packet-level malformation each inert technique is supposed to
/// exhibit at the server, for the Yes/Transformed distinction.
fn expected_defect(technique: &Technique) -> Option<Malformation> {
    use Technique::*;
    Some(match technique {
        InertIpInvalidVersion => Malformation::IpVersionInvalid,
        InertIpInvalidHeaderLength => Malformation::IpHeaderLengthInvalid,
        InertIpTotalLengthLong => Malformation::IpTotalLengthLong,
        InertIpTotalLengthShort => Malformation::IpTotalLengthShort,
        InertIpWrongProtocol => Malformation::IpProtocolUnknown,
        InertIpWrongChecksum => Malformation::IpChecksumWrong,
        InertIpInvalidOptions => Malformation::IpOptionsInvalid,
        InertIpDeprecatedOptions => Malformation::IpOptionsDeprecated,
        InertTcpWrongChecksum => Malformation::TcpChecksumWrong,
        InertTcpNoAckFlag => Malformation::TcpAckFlagMissing,
        InertTcpInvalidDataOffset => Malformation::TcpDataOffsetInvalid,
        InertTcpInvalidFlags => Malformation::TcpFlagsInvalid,
        InertUdpBadChecksum => Malformation::UdpChecksumWrong,
        InertUdpLengthLong => Malformation::UdpLengthLong,
        InertUdpLengthShort => Malformation::UdpLengthShort,
        _ => return None,
    })
}

/// Judge RS? from the server-ingress capture of the replay just run.
fn judge_reach<S: Substrate>(
    session: &Session<S>,
    technique: &Technique,
    trace: &RecordedTrace,
    ctx: &EvasionContext,
) -> Reach {
    let capture = session.env.capture();
    let ingress: Vec<&[u8]> = capture
        .at(TapPoint::ServerIngress)
        .map(|r| r.wire.as_slice())
        .collect();

    match technique.category() {
        Category::InertInsertion => {
            let marked: Vec<&&[u8]> = ingress
                .iter()
                .filter(|w| w.windows(DECOY_MARKER.len()).any(|x| x == DECOY_MARKER))
                .collect();
            if marked.is_empty() {
                return Reach::No;
            }
            match expected_defect(technique) {
                None => Reach::Yes, // valid-by-construction decoys
                Some(defect) => {
                    if marked.iter().any(|w| validate_wire(w).contains(&defect)) {
                        Reach::Yes
                    } else {
                        Reach::Transformed
                    }
                }
            }
        }
        Category::Flushing => match technique {
            Technique::TtlRstAfterMatch | Technique::TtlRstBeforeMatch => {
                // Only lib·erate's watermarked RSTs count — a blocking
                // middlebox injects its own RSTs with the client's
                // address as source.
                let rst_seen = ingress.iter().any(|w| {
                    ParsedPacket::parse(w)
                        .and_then(|p| {
                            p.tcp().map(|t| {
                                t.flags.rst && t.window == crate::evasion::LIBERATE_RST_WINDOW
                            })
                        })
                        .unwrap_or(false)
                });
                if rst_seen {
                    Reach::Yes
                } else {
                    Reach::No
                }
            }
            _ => {
                // Pauses: did the matching payload arrive at all?
                if matching_payload_reach(&ingress, trace, ctx) != Reach::No {
                    Reach::Yes
                } else {
                    Reach::No
                }
            }
        },
        Category::Splitting | Category::Reordering => match technique {
            Technique::IpFragmentSplit { .. } | Technique::IpFragmentReorder { .. } => {
                let any_fragment = ingress.iter().any(|w| {
                    ParsedPacket::parse(w)
                        .map(|p| p.ip.is_fragment())
                        .unwrap_or(false)
                });
                if any_fragment {
                    return Reach::Yes;
                }
                match matching_payload_reach(&ingress, trace, ctx) {
                    Reach::No => Reach::No,
                    // Arrived, but as a whole packet: reassembled in-path
                    // (Table 3 footnote 2).
                    _ => Reach::Transformed,
                }
            }
            _ => matching_payload_reach(&ingress, trace, ctx),
        },
    }
}

/// Did the matching packet's payload reach the server — whole
/// (`Transformed` for split techniques means "merged back together"),
/// in pieces (`Yes`), or not at all (`No`)?
fn matching_payload_reach(ingress: &[&[u8]], trace: &RecordedTrace, ctx: &EvasionContext) -> Reach {
    let ordinal = ctx.matching_fields.first().map(|f| f.packet).unwrap_or(0);
    let Some(payload) = trace
        .client_messages()
        .nth(ordinal)
        .map(|m| m.payload.clone())
    else {
        return Reach::No;
    };
    let mut pieces = 0usize;
    for w in ingress {
        let Some(p) = ParsedPacket::parse(w) else {
            continue;
        };
        if p.payload.is_empty() {
            continue;
        }
        if p.payload.len() >= payload.len()
            && p.payload
                .windows(payload.len())
                .any(|win| win == payload.as_slice())
        {
            // The whole original payload inside one packet.
            return Reach::Yes;
        }
        if payload
            .windows(p.payload.len().min(payload.len()))
            .any(|win| win == p.payload.as_slice())
        {
            pieces += 1;
        }
    }
    if pieces >= 2 {
        Reach::Yes
    } else if pieces == 1 {
        Reach::Transformed
    } else {
        Reach::No
    }
}

/// Evaluate one Table 3 row. Split/reorder rows escalate their parameter
/// until evasion succeeds or the configured maximum is reached (§5.2).
pub fn evaluate_technique<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    technique: &Technique,
    inputs: &EvaluationInputs,
    baseline_classified: bool,
) -> Option<TechniqueResult> {
    use Technique::*;
    let max_split = session.config.max_split_segments;
    let candidates: Vec<Technique> = match technique {
        TcpSegmentSplit { .. } => (2..=max_split)
            .map(|n| TcpSegmentSplit { segments: n })
            .collect(),
        TcpSegmentReorder { .. } => (2..=max_split)
            .map(|n| TcpSegmentReorder { segments: n })
            .collect(),
        IpFragmentSplit { .. } => vec![IpFragmentSplit {
            pieces: session.config.fragment_pieces,
        }],
        IpFragmentReorder { .. } => vec![IpFragmentReorder {
            pieces: session.config.fragment_pieces,
        }],
        other => vec![other.clone()],
    };

    let mut rounds = 0u64;
    let mut last: Option<(Technique, ReplayOutcome, bool, Reach)> = None;
    for cand in candidates {
        let (outcome, classified) = run_technique(session, trace, &cand, inputs)?;
        let reach = judge_reach(session, &cand, trace, &inputs.ctx);
        rounds += 1;
        // Evasion means the classifier lost *and* the content still got
        // through: a technique that merely kills the transfer (e.g.
        // fragments dropped in-network in Iran, §6.6) did not evade.
        let evaded = baseline_classified && !classified && outcome.complete;
        session.env.journal().metrics.incr(Counter::TechniquesTried);
        session.env.journal().record(
            session.env.clock().as_micros(),
            EventKind::TechniqueTried {
                technique: cand.description(),
                evaded,
            },
        );
        last = Some((cand, outcome, classified, reach));
        if evaded {
            break;
        }
    }
    let (effective, outcome, classified, reach) = last?;
    let evaded = !classified && outcome.complete;
    Some(TechniqueResult {
        technique: technique.clone(),
        cc: baseline_classified.then_some(evaded),
        rs: reach,
        app_intact: outcome.complete && outcome.integrity_ok,
        rounds,
        effective,
    })
}

/// Prune and order the taxonomy for one classifier, per §5.2:
///
/// - A classifier that inspects **all packets** cannot be fooled by inert
///   packets or flushing; only splitting/reordering remain.
/// - A **match-and-forget** classifier is tested with the efficient inert
///   insertions first.
pub fn plan(
    position: &PositionProfile,
    proto: liberate_traces::recorded::TraceProtocol,
) -> Vec<Technique> {
    let rows: Vec<Technique> = Technique::table3_rows()
        .into_iter()
        .filter(|t| t.applicable(proto))
        .collect();
    if position.matches_all_packets {
        // Iran-style: only content-splitting can help.
        return rows
            .into_iter()
            .filter(|t| matches!(t.category(), Category::Splitting | Category::Reordering))
            .collect();
    }
    let mut ordered = rows;
    ordered.sort_by_key(|t| match t.category() {
        Category::InertInsertion => (0, t.overhead().cost()),
        Category::Splitting => (1, t.overhead().cost()),
        Category::Reordering => (2, t.overhead().cost()),
        Category::Flushing => (3, t.overhead().cost()),
    });
    ordered
}

/// Run the planned candidates until one evades; return it with the try
/// count (§4: "iteratively try them until one succeeds").
pub fn find_working_technique<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    position: &PositionProfile,
    inputs: &EvaluationInputs,
) -> Option<(TechniqueResult, u64)> {
    let journal = session.env.journal().clone();
    journal.span_start(session.env.clock().as_micros(), Phase::Evaluate);
    let out = find_working_technique_inner(session, trace, position, inputs);
    journal.span_end(session.env.clock().as_micros(), Phase::Evaluate);
    out
}

fn find_working_technique_inner<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    position: &PositionProfile,
    inputs: &EvaluationInputs,
) -> Option<(TechniqueResult, u64)> {
    let mut tries = 0u64;
    for technique in plan(position, trace.protocol) {
        let Some(result) = evaluate_technique(session, trace, &technique, inputs, true) else {
            continue;
        };
        tries += result.rounds;
        if result.cc == Some(true) && result.app_intact {
            return Some((result, tries));
        }
    }
    None
}

/// Evaluate several independent Table 3 candidates concurrently, one job
/// per technique, fanned across a [`crate::engine::SessionPool`]. Each
/// worker judges its candidates on its own session (fresh flows on its
/// own client-port lane, shared sharded flow table), so candidates cannot
/// perturb each other's classifier state beyond what the real middlebox
/// would share. Results come back in the input techniques' order — the
/// canonical plan order — regardless of which worker ran what; `None`
/// entries mean the technique does not apply to this trace's transport.
pub fn evaluate_techniques_parallel<S: Substrate>(
    pool: &mut crate::engine::SessionPool<S>,
    trace: &RecordedTrace,
    techniques: &[Technique],
    inputs: &EvaluationInputs,
    baseline_classified: bool,
) -> Vec<Option<TechniqueResult>> {
    let exec = |session: &mut Session<S>, technique: Technique| {
        let journal = session.journal().clone();
        journal.span_start(session.env.clock().as_micros(), Phase::Evaluate);
        let out = evaluate_technique(session, trace, &technique, inputs, baseline_classified);
        journal.span_end(session.env.clock().as_micros(), Phase::Evaluate);
        out
    };
    pool.run_wave(techniques.to_vec(), &exec)
}

/// Among several working techniques, pick the cheapest (§4.4).
pub fn cheapest(results: &[TechniqueResult]) -> Option<&TechniqueResult> {
    results
        .iter()
        .filter(|r| r.cc == Some(true) && r.app_intact)
        .min_by_key(|r| r.effective.overhead().cost())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CharacterizeOpts};
    use crate::config::LiberateConfig;
    use crate::probe::decoy_request;
    use crate::sim::OsKind;
    use liberate_dpi::profiles::EnvKind;
    use liberate_traces::apps;

    fn session(kind: EnvKind) -> Session {
        Session::new(kind, OsKind::Linux, LiberateConfig::default())
    }

    fn inputs_for(
        session: &mut Session,
        trace: &RecordedTrace,
        signal: Signal,
        rotate: bool,
    ) -> (EvaluationInputs, PositionProfile) {
        let opts = CharacterizeOpts {
            rotate_server_ports: rotate,
            ..Default::default()
        };
        let c = characterize(session, trace, &signal, &opts);
        let ctx = EvasionContext {
            matching_fields: c.client_field_regions(trace),
            decoy: decoy_request(),
            middlebox_ttl: session.env.hops_before_middlebox + 1,
        };
        (
            EvaluationInputs {
                signal,
                ctx,
                rotate_server_ports: rotate,
            },
            c.position,
        )
    }

    #[test]
    fn plan_orders_and_prunes() {
        use liberate_traces::recorded::TraceProtocol;
        // Match-and-forget profile: inert first, flushing last, everything
        // applicable included exactly once.
        let maf = PositionProfile {
            prepend_break: Some(1),
            packet_based: true,
            matches_all_packets: false,
        };
        let planned = plan(&maf, TraceProtocol::Tcp);
        let tcp_rows = Technique::table3_rows()
            .iter()
            .filter(|t| t.applicable(TraceProtocol::Tcp))
            .count();
        assert_eq!(planned.len(), tcp_rows);
        assert_eq!(planned[0].category(), Category::InertInsertion);
        assert_eq!(planned.last().unwrap().category(), Category::Flushing);
        // Category order is monotone.
        let order = |c: Category| match c {
            Category::InertInsertion => 0,
            Category::Splitting => 1,
            Category::Reordering => 2,
            Category::Flushing => 3,
        };
        assert!(planned
            .windows(2)
            .all(|w| order(w[0].category()) <= order(w[1].category())));

        // All-packets profile (Iran): only splitting/reordering remain.
        let all = PositionProfile {
            prepend_break: None,
            packet_based: false,
            matches_all_packets: true,
        };
        let planned = plan(&all, TraceProtocol::Tcp);
        assert!(!planned.is_empty());
        assert!(planned
            .iter()
            .all(|t| matches!(t.category(), Category::Splitting | Category::Reordering)));

        // UDP flows only get UDP-applicable techniques.
        let planned = plan(&maf, TraceProtocol::Udp);
        assert!(planned.iter().all(|t| t.applicable(TraceProtocol::Udp)));
        assert!(!planned.is_empty());
    }

    #[test]
    fn cheapest_picks_lowest_cost_working_result() {
        let mk = |technique: Technique, cc: Option<bool>, intact: bool| TechniqueResult {
            technique: technique.clone(),
            cc,
            rs: Reach::Yes,
            app_intact: intact,
            rounds: 1,
            effective: technique,
        };
        let results = vec![
            mk(
                Technique::PauseBeforeMatch(std::time::Duration::from_secs(130)),
                Some(true),
                true,
            ),
            mk(Technique::InertLowTtl, Some(true), true),
            mk(
                Technique::TcpSegmentSplit { segments: 2 },
                Some(true),
                false,
            ), // side effects
            mk(
                Technique::TcpSegmentReorder { segments: 2 },
                Some(false),
                true,
            ), // failed
        ];
        let best = cheapest(&results).unwrap();
        assert_eq!(best.technique, Technique::InertLowTtl, "cheapest *working*");
        assert!(cheapest(&[]).is_none());
    }

    #[test]
    fn gfc_verdicts_match_table3() {
        let mut s = session(EnvKind::Gfc);
        let trace = apps::economist_http();
        let (inputs, _) = inputs_for(&mut s, &trace, Signal::Blocking, true);

        // TCP wrong checksum: evades, reaches (checksum repaired).
        let r = evaluate_technique(
            &mut s,
            &trace,
            &Technique::InertTcpWrongChecksum,
            &inputs,
            true,
        )
        .unwrap();
        assert_eq!(r.cc, Some(true), "{r:?}");
        assert_eq!(r.rs, Reach::Transformed, "footnote 4: checksum repaired");

        // Splitting fails against full reassembly.
        let r = evaluate_technique(
            &mut s,
            &trace,
            &Technique::TcpSegmentSplit { segments: 2 },
            &inputs,
            true,
        )
        .unwrap();
        assert_eq!(r.cc, Some(false));
        assert_eq!(r.rs, Reach::Yes);

        // Low TTL: evades, never reaches.
        let r = evaluate_technique(&mut s, &trace, &Technique::InertLowTtl, &inputs, true).unwrap();
        assert_eq!(r.cc, Some(true));
        assert_eq!(r.rs, Reach::No);
    }

    #[test]
    fn iran_planner_prunes_to_splitting() {
        let mut s = session(EnvKind::Iran);
        let trace = apps::facebook_http();
        let (inputs, position) = inputs_for(&mut s, &trace, Signal::Blocking, false);
        assert!(position.matches_all_packets);
        let planned = plan(&position, trace.protocol);
        assert!(!planned.is_empty());
        assert!(planned
            .iter()
            .all(|t| matches!(t.category(), Category::Splitting | Category::Reordering)));

        let (winner, tries) =
            find_working_technique(&mut s, &trace, &position, &inputs).expect("Iran is evadable");
        assert!(
            matches!(
                winner.effective,
                Technique::TcpSegmentSplit { .. } | Technique::TcpSegmentReorder { .. }
            ),
            "winner {winner:?}"
        );
        assert!(tries >= 1);
    }

    #[test]
    fn testbed_finds_cheap_winner() {
        let mut s = session(EnvKind::Testbed);
        let trace = apps::amazon_prime_http(60_000);
        let (inputs, position) = inputs_for(&mut s, &trace, Signal::Readout, false);
        assert_eq!(position.prepend_break, Some(1));
        let (winner, _) = find_working_technique(&mut s, &trace, &position, &inputs)
            .expect("the testbed is evadable");
        assert_eq!(winner.cc, Some(true));
        assert!(winner.app_intact);
    }

    #[test]
    fn att_has_no_winner_but_port_change_works() {
        let mut s = session(EnvKind::Att);
        let trace = apps::nbcsports_http(400_000);
        // Control throughput for the throttling signal.
        let control = crate::detect::inverted_trace(&trace);
        let free = s.replay_trace(&control, &ReplayOpts::default());
        let signal = Signal::Throttling {
            control_bps: free.avg_bps,
            ratio: 0.6,
        };
        let ctx = EvasionContext::blind(decoy_request(), s.env.hops_before_middlebox + 1);
        let inputs = EvaluationInputs {
            signal: signal.clone(),
            ctx,
            rotate_server_ports: false,
        };
        let position = PositionProfile {
            prepend_break: Some(1),
            packet_based: true,
            matches_all_packets: false,
        };
        assert!(
            find_working_technique(&mut s, &trace, &position, &inputs).is_none(),
            "no packet-level technique beats a terminating proxy"
        );

        // But the same flow on port 8080 runs at full speed (§6.3).
        let out = s.replay_trace(
            &trace,
            &ReplayOpts {
                server_port: Some(8080),
                ..Default::default()
            },
        );
        let billed = 0;
        assert!(!was_classified(&mut s, &signal, &out, billed));
        assert!(out.complete);
    }
}
