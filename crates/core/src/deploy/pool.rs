//! Pool-backed deployment (§4.4 at scale): many simulated users' live
//! application flows fanned across a [`SessionPool`]'s workers over one
//! shared sharded DPI flow table, with one adaptation loop for all of
//! them.
//!
//! The single-session [`super::LiberateProxy`] re-learns inline the moment
//! its one flow trips the change signal. A pool cannot do that: N workers
//! may observe the same classifier change in the same wave, and N
//! re-characterizations would multiply the most expensive phase of the
//! pipeline by the worker count. Instead the pool publishes its evasion
//! state once, generation-stamped, behind [`PublishedState`]:
//!
//! - **Workers only read.** Each flow snapshots the published state
//!   (an `Arc` clone — never a torn read), applies the technique, and
//!   reports back the generation it used. A flow whose technique burned
//!   mid-wave degrades onto the configured fallback ladder, in order, so
//!   the user's traffic keeps moving while the pool re-learns.
//! - **The driver only writes, between waves.** After a wave, change
//!   signals reported against the *current* generation trigger exactly one
//!   re-characterization (phase 2 runs level-synchronous across the whole
//!   pool via [`characterize_parallel`]); reports against an older
//!   generation are stale — some earlier wave already paid for the
//!   re-learn — and are ignored, which is how lagging workers self-correct
//!   without coordination.
//!
//! Determinism: workers never write shared deployment state and the
//! driver's writes are serialized between waves, so for a fixed seed and
//! worker count the merged journal is byte-identical run to run (the
//! same contract the engine pins for characterization).

use std::sync::Arc;

use liberate_dpi::profiles::EnvKind;
use liberate_dpi::rules::RuleSet;
use liberate_obs::{Counter, EventKind, Journal, Phase};
use liberate_substrate::Substrate;
use liberate_traces::recorded::RecordedTrace;

use crate::cache::SharedRuleCache;
use crate::characterize::{Characterization, CharacterizeOpts};
use crate::config::LiberateConfig;
use crate::deploy::{billed_baseline, complete_pipeline, signal_from_detection, ActiveEvasion};
use crate::detect::{detect_rotating, was_classified, Signal};
use crate::engine::{characterize_parallel, Engine, SessionPool};
use crate::error::{LiberateError, Result};
use crate::evasion::Technique;
use crate::reactor::lane_addr;
use crate::replay::{LaneAddr, ReplayOpts, ReplayOutcome, ReplaySm, Session};
use crate::schedule::Schedule;
use crate::sim::{OsKind, SimSubstrate};
use crate::task::{FlowTask, TaskPoll};

/// The generation-stamped evasion state the pool publishes to its
/// workers. The technique rides in an `Arc`, so a snapshot hands workers
/// a complete, immutable view — there is no moment at which a reader can
/// see generation `g+1` paired with generation `g`'s technique.
#[derive(Debug, Clone, Default)]
pub struct PublishedTechnique {
    /// Monotonic publish count; 0 means nothing published yet.
    pub generation: u64,
    pub evasion: Option<Arc<ActiveEvasion>>,
}

/// The shared cell holding the current [`PublishedTechnique`]. Cloning
/// the handle shares the cell; [`PublishedState::snapshot`] is the only
/// read path and [`PublishedState::publish`] the only write path.
///
/// Reads go through a [`Seqlock`](crate::seqlock::Seqlock): N workers
/// snapshotting per flow never take a reader lock, and the driver's
/// between-wave publish lands in the idle slot without stalling them.
/// The seqlock's own generation word moves in lockstep with the
/// [`PublishedTechnique::generation`] stamp (one completed publish each),
/// so the two can never disagree.
#[derive(Debug, Clone, Default)]
pub struct PublishedState {
    inner: Arc<crate::seqlock::Seqlock<PublishedTechnique>>,
}

impl PublishedState {
    pub fn new() -> PublishedState {
        PublishedState::default()
    }

    /// The current generation and technique, as one consistent view.
    pub fn snapshot(&self) -> PublishedTechnique {
        PublishedTechnique::clone(&self.inner.read())
    }

    pub fn generation(&self) -> u64 {
        self.inner.read().generation
    }

    /// Atomically install `evasion` under the next generation; returns
    /// the new generation stamp.
    // lint: allow(generation-discipline: publish) the single sanctioned
    // writer: the bump happens inside the seqlock's serialized write
    // path, and every other reader goes through snapshot()/generation().
    pub fn publish(&self, evasion: Arc<ActiveEvasion>) -> u64 {
        // `update` serializes writers, so the bump-and-install is atomic
        // and the returned seqlock stamp equals the new generation.
        self.inner.update(move |state| {
            state.generation += 1;
            state.evasion = Some(evasion);
        })
    }
}

/// What one user's flow did in one deployment wave.
#[derive(Debug, Clone)]
pub struct PoolFlowReport {
    /// The user (job) index within the wave.
    pub user: usize,
    /// The pool worker whose session carried the flow.
    pub worker: usize,
    /// The published generation this flow read at its start.
    pub generation: u64,
    /// The technique that ultimately carried the flow (the published one,
    /// or the fallback that caught it), if any applied.
    pub technique: Option<Technique>,
    /// The flow escaped classification.
    pub evaded: bool,
    /// The fallback-ladder entry that caught the flow after the published
    /// technique burned.
    pub parked_on_fallback: Option<Technique>,
    /// The published technique failed against the live classifier — the
    /// pool's cue to re-characterize (once) after the wave.
    pub change_signal: bool,
    pub outcome: ReplayOutcome,
}

/// One completed call to [`DeploymentPool::run_flows`].
#[derive(Debug)]
pub struct DeployWave {
    /// Per-user reports, in user order.
    pub reports: Vec<PoolFlowReport>,
    /// Whether this wave's change signals triggered a re-characterization
    /// (at most one, regardless of how many workers reported the change).
    pub recharacterized: bool,
    /// The published generation after the wave (and any re-learn).
    pub generation: u64,
}

impl DeployWave {
    /// Every user's flow escaped classification (possibly via fallback).
    pub fn all_evaded(&self) -> bool {
        self.reports.iter().all(|r| r.evaded)
    }

    /// How many flows reported the published technique burned.
    pub fn change_signals(&self) -> usize {
        self.reports.iter().filter(|r| r.change_signal).count()
    }
}

/// The pool-backed deployment subsystem: live flows from many simulated
/// users fanned across [`SessionPool`] workers, one shared
/// [`SharedRuleCache`], one generation-stamped published technique.
pub struct DeploymentPool<S: Substrate = SimSubstrate> {
    pool: SessionPool<S>,
    copts: CharacterizeOpts,
    fallback: Vec<Technique>,
    published: PublishedState,
    cache: Option<(SharedRuleCache, String)>,
    /// Times the pipeline ran (1 = initial; more = classifier changed).
    pub characterizations: u64,
    /// Characterizations skipped thanks to the shared cache.
    pub cache_hits: u64,
}

impl DeploymentPool<SimSubstrate> {
    /// A pool of `workers` deployment sessions against a fresh
    /// environment of `kind`.
    pub fn new(
        kind: EnvKind,
        os: OsKind,
        config: LiberateConfig,
        workers: usize,
        copts: CharacterizeOpts,
    ) -> DeploymentPool {
        DeploymentPool::over(SessionPool::new(kind, os, config, workers), copts)
    }

    /// Script a classifier change: swap the rule set on every worker's
    /// DPI device (they model one middlebox, so all must agree). Flow
    /// state is kept, mirroring a real rule push.
    pub fn hot_swap_rules(&mut self, rules: &RuleSet) {
        for w in 0..self.pool.workers() {
            // Stamp the swap at the worker's quiesced wave-boundary clock,
            // not at its device's last inspected packet: the reactor
            // engine's lane timestamps lag the session clock, and the
            // swap event must land at the same instant under both
            // engines.
            let now = self.pool.session_mut(w).env.clock();
            if let Some(dpi) = self.pool.session_mut(w).env.dpi_mut() {
                dpi.observe_now(now);
                dpi.hot_swap_rules(rules.clone());
            }
        }
    }
}

impl<S: Substrate> DeploymentPool<S> {
    /// Wrap an existing session pool (e.g. one built from a shared
    /// blueprint).
    pub fn over(pool: SessionPool<S>, copts: CharacterizeOpts) -> DeploymentPool<S> {
        DeploymentPool {
            pool,
            copts,
            fallback: Vec::new(),
            published: PublishedState::new(),
            cache: None,
            characterizations: 0,
            cache_hits: 0,
        }
    }

    /// Techniques to degrade onto, in order, when the published technique
    /// burns mid-wave.
    pub fn with_fallback_ladder(mut self, ladder: Vec<Technique>) -> DeploymentPool<S> {
        self.fallback = ladder;
        self
    }

    /// Attach a live shared rule cache under the given network name.
    pub fn with_shared_cache(mut self, cache: SharedRuleCache, network: &str) -> DeploymentPool<S> {
        self.cache = Some((cache, network.to_string()));
        self
    }

    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The published-state cell (e.g. for concurrent-read tests or for
    /// wiring external monitors).
    pub fn published(&self) -> &PublishedState {
        &self.published
    }

    pub fn generation(&self) -> u64 {
        self.published.generation()
    }

    /// The currently published technique, if any.
    pub fn active_technique(&self) -> Option<Technique> {
        self.published
            .snapshot()
            .evasion
            .map(|e| e.technique.effective.clone())
    }

    /// Direct access to the underlying pool (tests script classifier
    /// changes through a worker's environment).
    pub fn pool_mut(&mut self) -> &mut SessionPool<S> {
        &mut self.pool
    }

    /// Fold every worker's journal into `journal` (ascending worker
    /// order, deterministic). Call once, after the pool's work is done.
    pub fn merge_journals_into(&self, journal: &Arc<Journal>) {
        self.pool.merge_journals_into(journal);
    }

    /// Drive one wave of live flows: `users` copies of `trace`, user `u`
    /// on worker `u % workers`. Publishes an initial technique first if
    /// none is live yet. After the wave, change signals against the
    /// current generation trigger exactly one re-characterization; the
    /// refreshed technique is published for the next wave.
    pub fn run_flows(&mut self, trace: &RecordedTrace, users: usize) -> Result<DeployWave> {
        if self.published.snapshot().evasion.is_none() {
            self.recharacterize(trace)?;
        }

        let workers = self.pool.workers();
        // The driver is the only writer and it only writes between waves,
        // so every flow in this wave would snapshot the same state:
        // snapshot once, lower the technique (and fallback ladder) to
        // packet schedules once, and share the compiled wave by
        // reference. Schedule lowering is a pure transformation — the
        // hoist is journal- and RNG-silent.
        let compiled = CompiledWave::lower(trace, self.published.snapshot(), &self.fallback);
        // run_wave sends job i to worker i % n, or everything to worker 0
        // when the pool (or wave) is too small to fan out.
        let worker_of = move |user: usize| {
            if workers == 1 || users <= 1 {
                0
            } else {
                user % workers
            }
        };
        // The reactor engine interleaves flows as resumable tasks on
        // private lanes. That is only sound when flows cannot observe
        // each other through session-global mutable state: the zero-rating
        // signal reads the billed counter (an RNG-jittered session
        // global), so it stays on the threads path; blocking, throttling,
        // and readout judgments are functions of the lane's own outcome.
        let interleavable = compiled
            .evasion
            .as_deref()
            .is_none_or(|e| !matches!(e.signal, Signal::ZeroRating));
        let reports: Vec<PoolFlowReport> = if self.pool.engine() == Engine::Reactor
            && interleavable
            && self.pool.sessions()[0].env.supports_lanes()
        {
            let tasks: Vec<DeployFlowTask> = (0..users)
                .map(|user| DeployFlowTask::new(trace, &compiled, user, worker_of(user)))
                .collect();
            self.pool
                .run_wave_tasks(tasks)
                .into_iter()
                .map(|r| {
                    // lint: allow(no-panic) contract: deploy tasks judge
                    // and report; a panicking replay is a deployment bug.
                    r.expect("deploy flow task completed")
                })
                .collect()
        } else {
            let exec = |session: &mut Session<S>, user: usize| {
                run_one_flow(session, trace, user, worker_of(user), &compiled)
            };
            self.pool.run_wave((0..users).collect(), &exec)
        };

        // Between-wave housekeeping: the wave left one abandoned probe
        // flow per user in the shared table, and nothing ever looks them
        // up again — sweep whatever has gone idle in one batched pass
        // (one lock acquisition per shard) through worker 0, the only
        // actor while the pool is quiescent.
        self.pool.session_mut(0).env.reclaim_flows();

        // Exactly one re-characterization per acknowledged change: every
        // report in this wave read the same generation (the driver is the
        // only writer, and it only writes between waves), so one re-learn
        // covers all of them. A report stamped with an older generation
        // would mean some earlier wave already paid — ignore it and let
        // the worker pick up the newer technique next wave. Monotonic
        // `>=` rather than `==`: if the counter ever advances more than
        // once between a flow's snapshot and this check, an equality test
        // would silently drop the change signal.
        let current = self.published.generation();
        let needs_relearn = reports
            .iter()
            .any(|r| r.change_signal && r.generation >= current);
        let recharacterized = if needs_relearn {
            self.recharacterize(trace)?;
            true
        } else {
            false
        };

        Ok(DeployWave {
            reports,
            recharacterized,
            generation: self.published.generation(),
        })
    }

    /// Fresh shared rules for this trace, if the cache has them and they
    /// verify against the live classifier (worker 0 pays the per-field
    /// verification replays).
    fn shared_rules_for(&mut self, trace: &RecordedTrace) -> Option<Characterization> {
        let (cache, network) = self.cache.clone()?;
        let session = self.pool.session_mut(0);
        let journal = session.journal().clone();
        let t_us = session.env.clock().as_micros();
        let entry = cache.lookup_observed(&network, &trace.app, &journal, t_us)?;
        let signal = entry.signal.to_signal(session, trace);
        let fresh = cache.verify(&network, &trace.app, session, trace, &signal)?;
        if fresh {
            self.cache_hits += 1;
            Some(entry.to_characterization(trace))
        } else {
            None
        }
    }

    /// The single re-characterization wave: detection and the sequential
    /// phases (localization, evaluation) run on worker 0; the blinding
    /// search fans across the whole pool via [`characterize_parallel`].
    /// Ends by atomically publishing the refreshed technique under the
    /// next generation.
    fn recharacterize(&mut self, trace: &RecordedTrace) -> Result<()> {
        let copts = self.copts.clone();
        let rotate_base = copts.rotate_server_ports.then_some(copts.rotate_base);

        // Phase 1: detection, on worker 0.
        let detection = {
            let session = self.pool.session_mut(0);
            detect_rotating(session, trace, rotate_base.map(|b| b.wrapping_add(30_000)))
        };
        if !detection.differentiated {
            return Err(LiberateError::NoDifferentiation);
        }
        let throttle_ratio = self.pool.sessions()[0].config.throttle_ratio;
        let signal = signal_from_detection(&detection, throttle_ratio);

        // Phase 2: consult the shared cache, else the level-synchronous
        // blinding search across every worker.
        let characterization = match self.shared_rules_for(trace) {
            Some(c) => c,
            None => characterize_parallel(&mut self.pool, trace, &signal, &copts),
        };

        // Phases 3–4, on worker 0 — the same code path the sequential
        // proxy runs, so the adapted technique cannot diverge from it.
        let report = complete_pipeline(
            self.pool.session_mut(0),
            trace,
            &copts,
            detection,
            &signal,
            characterization,
        )?;

        // Publish what we learned for the next user on this network.
        if let Some((cache, network)) = self.cache.as_ref() {
            if let Some(c) = report.characterization.as_ref() {
                if c.rounds > 0 {
                    let learned_at = self.pool.sessions()[0].env.clock().as_micros() / 1_000_000;
                    cache.publish(
                        network,
                        &trace.app,
                        crate::cache::CachedRules::from_characterization_with_signal(
                            c,
                            learned_at,
                            crate::cache::CachedSignal::from_signal(&signal),
                        ),
                    );
                }
            }
        }

        let evasion = ActiveEvasion::from_report(&report, trace, &self.pool.sessions()[0])?;
        let description = evasion.technique.effective.description();
        let generation = self.published.publish(Arc::new(evasion));
        self.characterizations += 1;

        let session = self.pool.session_mut(0);
        let journal = session.journal().clone();
        journal.metrics.incr(Counter::RecharacterizeWaves);
        journal.record(
            session.env.clock().as_micros(),
            EventKind::TechniquePublished {
                generation,
                technique: description,
            },
        );
        Ok(())
    }
}

/// One wave's evasion state lowered to ready-to-replay packet schedules.
///
/// A wave of N flows deploys the *same* published technique against the
/// *same* trace; compiling the schedule (and every fallback rung's) once
/// per wave instead of once per flow turns schedule lowering from O(N)
/// into O(1) and lets both engines share the immutable result by
/// reference — the reactor's task wave and the threads engine's closures
/// read the same `Arc`s. `None` entries record rungs whose technique
/// declined the trace shape (`Technique::apply` returned `None`), so
/// flows skip them without re-attempting the lowering.
pub(crate) struct CompiledWave {
    /// The published generation this wave deploys.
    generation: u64,
    evasion: Option<Arc<ActiveEvasion>>,
    /// The published technique's schedule; `None` when the technique no
    /// longer applies to the trace shape (flows degrade to plain).
    main: Option<Arc<Schedule>>,
    /// The fallback ladder, in park order.
    ladder: Vec<(Technique, Option<Arc<Schedule>>)>,
    /// The unmodified trace schedule (the empty-cell and
    /// technique-declined path).
    plain: Arc<Schedule>,
}

impl CompiledWave {
    fn lower(
        trace: &RecordedTrace,
        snapshot: PublishedTechnique,
        fallback: &[Technique],
    ) -> CompiledWave {
        let plain = Arc::new(Schedule::from_trace(trace));
        let (main, ladder) = match snapshot.evasion.as_deref() {
            Some(evasion) => (
                evasion
                    .technique
                    .effective
                    .apply(&plain, &evasion.ctx)
                    .map(Arc::new),
                fallback
                    .iter()
                    .map(|rung| (rung.clone(), rung.apply(&plain, &evasion.ctx).map(Arc::new)))
                    .collect(),
            ),
            None => (None, Vec::new()),
        };
        CompiledWave {
            generation: snapshot.generation,
            evasion: snapshot.evasion,
            main,
            ladder,
            plain,
        }
    }
}

/// One user's flow on one worker session: apply the published technique,
/// watch for the change signal, degrade onto the fallback ladder if it
/// burns. Runs inside a `Phase::Deploy` span on the worker's journal.
fn run_one_flow<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    user: usize,
    worker: usize,
    compiled: &CompiledWave,
) -> PoolFlowReport {
    let journal = session.journal().clone();
    journal.span_start(session.env.clock().as_micros(), Phase::Deploy);
    journal.metrics.incr(Counter::DeployFlows);
    let report = run_one_flow_inner(session, trace, user, worker, compiled, &journal);
    journal.span_end(session.env.clock().as_micros(), Phase::Deploy);
    report
}

fn run_one_flow_inner<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    user: usize,
    worker: usize,
    compiled: &CompiledWave,
    journal: &Arc<Journal>,
) -> PoolFlowReport {
    let generation = compiled.generation;
    let Some(evasion) = compiled.evasion.as_deref() else {
        // `run_flows` publishes before the first wave, so this only
        // happens when a caller drives flows against an empty cell: send
        // the traffic plain and report a change signal so the driver
        // learns a technique for the next wave.
        let outcome = session.replay_schedule(trace, &compiled.plain, &ReplayOpts::default());
        return PoolFlowReport {
            user,
            worker,
            generation,
            technique: None,
            evaded: false,
            parked_on_fallback: None,
            change_signal: true,
            outcome,
        };
    };

    let judge = |session: &mut Session<S>, schedule: &Schedule| {
        let billed_before = billed_baseline(session, &evasion.signal);
        let outcome = session.replay_schedule(trace, schedule, &ReplayOpts::default());
        let classified = was_classified(session, &evasion.signal, &outcome, billed_before);
        (outcome, classified)
    };

    let main = evasion.technique.effective.clone();
    let (mut outcome, classified) = match compiled.main.as_deref() {
        Some(schedule) => judge(session, schedule),
        // A published technique always applied once (evaluation proved
        // it); replay the trace plain if the trace shape changed under us.
        None => (
            session.replay_schedule(trace, &compiled.plain, &ReplayOpts::default()),
            true,
        ),
    };

    if !classified {
        return PoolFlowReport {
            user,
            worker,
            generation,
            technique: Some(main.clone()),
            evaded: true,
            parked_on_fallback: None,
            change_signal: false,
            outcome,
        };
    }

    // The classifier caught the published technique: flag the change and
    // park this user's traffic on the first ladder rung that still works.
    let mut parked = None;
    for (rung, schedule) in &compiled.ladder {
        let Some(schedule) = schedule.as_deref() else {
            continue;
        };
        let (out, still_classified) = judge(session, schedule);
        outcome = out;
        if !still_classified {
            journal.metrics.incr(Counter::FallbackParks);
            journal.record(
                session.env.clock().as_micros(),
                EventKind::FallbackEngaged {
                    technique: rung.description(),
                },
            );
            parked = Some(rung.clone());
            break;
        }
    }

    PoolFlowReport {
        user,
        worker,
        generation,
        technique: parked.clone().or_else(|| Some(main.clone())),
        evaded: parked.is_some(),
        parked_on_fallback: parked,
        change_signal: true,
        outcome,
    }
}

/// Which replay a [`DeployFlowTask`] is driving.
enum DeployStage {
    /// Empty published cell: the flow runs plain and flags a change.
    Unpublished,
    /// The published technique (`applied: false` means the technique
    /// declined the trace shape and the flow fell back to plain, judged
    /// classified unconditionally — mirroring the closure path).
    Main { applied: bool },
    /// Fallback rung, by index into [`CompiledWave::ladder`].
    Rung(usize),
}

/// One deployed user flow as a reactor [`FlowTask`]: replicates
/// [`run_one_flow`]'s exact sequence — deploy span, published technique,
/// judgment, fallback ladder — as a resumable machine over a private
/// lane. Between replays it moves straight to the next rung's schedule
/// (the closure path has no inter-replay rest either).
struct DeployFlowTask<'a> {
    trace: &'a RecordedTrace,
    compiled: &'a CompiledWave,
    user: usize,
    worker: usize,
    started: bool,
    stage: DeployStage,
    sm: Option<ReplaySm<&'a RecordedTrace, Arc<Schedule>>>,
    billed_before: i64,
    /// The last judged outcome (what the final report carries).
    outcome: Option<ReplayOutcome>,
    parked: Option<Technique>,
    replays: u64,
}

impl<'a> DeployFlowTask<'a> {
    fn new(
        trace: &'a RecordedTrace,
        compiled: &'a CompiledWave,
        user: usize,
        worker: usize,
    ) -> DeployFlowTask<'a> {
        DeployFlowTask {
            trace,
            compiled,
            user,
            worker,
            started: false,
            stage: DeployStage::Unpublished,
            sm: None,
            billed_before: 0,
            outcome: None,
            parked: None,
            replays: 0,
        }
    }

    /// Stand up the next replay on this task's lane. Lane-local replay
    /// numbering (1, 2, …) — the reactor's journal splice rebases it onto
    /// the worker's canonical counter.
    fn start_replay<S: Substrate>(&mut self, session: &mut Session<S>, schedule: Arc<Schedule>) {
        self.billed_before = billed_baseline(session, &self.signal());
        self.replays += 1;
        let lane = LaneAddr {
            client_addr: lane_addr(self.user),
            replay_no: self.replays,
        };
        self.sm = Some(ReplaySm::new(
            self.trace,
            schedule,
            ReplayOpts::default(),
            Some(lane),
        ));
    }

    /// The signal judging this flow. Only meaningful once published
    /// (`Unpublished` flows are never judged).
    fn signal(&self) -> Signal {
        self.compiled
            .evasion
            .as_deref()
            .map(|e| e.signal.clone())
            .unwrap_or(Signal::Blocking)
    }

    /// `evaded_on_main` marks the happy path: the published technique
    /// itself escaped classification (no change signal, no ladder).
    fn report(&mut self, outcome: ReplayOutcome, evaded_on_main: bool) -> PoolFlowReport {
        let main = self
            .compiled
            .evasion
            .as_deref()
            .map(|e| e.technique.effective.clone());
        let (technique, evaded, change_signal) = if matches!(self.stage, DeployStage::Unpublished) {
            (None, false, true)
        } else if evaded_on_main {
            (main, true, false)
        } else {
            (self.parked.clone().or(main), self.parked.is_some(), true)
        };
        PoolFlowReport {
            user: self.user,
            worker: self.worker,
            generation: self.compiled.generation,
            technique,
            evaded,
            parked_on_fallback: self.parked.clone(),
            change_signal,
            outcome,
        }
    }

    /// Move to the first fallback rung at or after `from` whose technique
    /// lowered; `None` return means a replay was started, `Some` is the
    /// final report (ladder exhausted).
    fn next_rung<S: Substrate>(
        &mut self,
        session: &mut Session<S>,
        from: usize,
    ) -> Option<PoolFlowReport> {
        for (i, (_, schedule)) in self.compiled.ladder.iter().enumerate().skip(from) {
            if let Some(schedule) = schedule.clone() {
                self.stage = DeployStage::Rung(i);
                self.start_replay(session, schedule);
                return None;
            }
        }
        // lint: allow(no-panic) invariant: a rung is only exhausted after
        // the main stage judged and stored its outcome.
        let outcome = self.outcome.take().expect("judged outcome before ladder");
        Some(self.report(outcome, false))
    }

    /// Judge the finished replay and either report or stand up the next
    /// one. `None` means another replay was started (poll it now).
    fn advance<S: Substrate>(
        &mut self,
        session: &mut Session<S>,
        outcome: ReplayOutcome,
    ) -> Option<PoolFlowReport> {
        match self.stage {
            DeployStage::Unpublished => Some(self.report(outcome, false)),
            DeployStage::Main { applied } => {
                let classified = if applied {
                    was_classified(session, &self.signal(), &outcome, self.billed_before)
                } else {
                    true
                };
                if !classified {
                    Some(self.report(outcome, true))
                } else {
                    self.outcome = Some(outcome);
                    self.next_rung(session, 0)
                }
            }
            DeployStage::Rung(i) => {
                let still_classified =
                    was_classified(session, &self.signal(), &outcome, self.billed_before);
                self.outcome = Some(outcome);
                if !still_classified {
                    let rung = self.compiled.ladder[i].0.clone();
                    let journal = session.journal().clone();
                    journal.metrics.incr(Counter::FallbackParks);
                    journal.record(
                        session.env.clock().as_micros(),
                        EventKind::FallbackEngaged {
                            technique: rung.description(),
                        },
                    );
                    self.parked = Some(rung);
                    // lint: allow(no-panic) invariant: stored two lines up.
                    let outcome = self.outcome.take().expect("rung outcome stored");
                    Some(self.report(outcome, false))
                } else {
                    self.next_rung(session, i + 1)
                }
            }
        }
    }
}

impl<'a, S: Substrate> FlowTask<S> for DeployFlowTask<'a> {
    type Output = PoolFlowReport;

    fn poll(&mut self, session: &mut Session<S>) -> TaskPoll<PoolFlowReport> {
        if !self.started {
            self.started = true;
            let journal = session.journal().clone();
            journal.span_start(session.env.clock().as_micros(), Phase::Deploy);
            journal.metrics.incr(Counter::DeployFlows);
            match (self.compiled.evasion.as_deref(), self.compiled.main.clone()) {
                (None, _) => {
                    self.stage = DeployStage::Unpublished;
                    self.start_replay(session, Arc::clone(&self.compiled.plain));
                }
                (Some(_), Some(schedule)) => {
                    self.stage = DeployStage::Main { applied: true };
                    self.start_replay(session, schedule);
                }
                (Some(_), None) => {
                    self.stage = DeployStage::Main { applied: false };
                    self.start_replay(session, Arc::clone(&self.compiled.plain));
                }
            }
        }
        loop {
            // lint: allow(no-panic) invariant: poll only runs with a
            // replay standing (started above, or re-armed by advance).
            let sm = self.sm.as_mut().expect("replay standing");
            match sm.poll(session) {
                TaskPoll::Pending(wake) => return TaskPoll::Pending(wake),
                TaskPoll::Done(outcome) => {
                    self.sm = None;
                    if let Some(report) = self.advance(session, outcome) {
                        session
                            .journal()
                            .span_end(session.env.clock().as_micros(), Phase::Deploy);
                        return TaskPoll::Done(report);
                    }
                }
            }
        }
    }

    fn replays_done(&self) -> u64 {
        self.replays
    }
}
