//! Pool-backed deployment (§4.4 at scale): many simulated users' live
//! application flows fanned across a [`SessionPool`]'s workers over one
//! shared sharded DPI flow table, with one adaptation loop for all of
//! them.
//!
//! The single-session [`super::LiberateProxy`] re-learns inline the moment
//! its one flow trips the change signal. A pool cannot do that: N workers
//! may observe the same classifier change in the same wave, and N
//! re-characterizations would multiply the most expensive phase of the
//! pipeline by the worker count. Instead the pool publishes its evasion
//! state once, generation-stamped, behind [`PublishedState`]:
//!
//! - **Workers only read.** Each flow snapshots the published state
//!   (an `Arc` clone — never a torn read), applies the technique, and
//!   reports back the generation it used. A flow whose technique burned
//!   mid-wave degrades onto the configured fallback ladder, in order, so
//!   the user's traffic keeps moving while the pool re-learns.
//! - **The driver only writes, between waves.** After a wave, change
//!   signals reported against the *current* generation trigger exactly one
//!   re-characterization (phase 2 runs level-synchronous across the whole
//!   pool via [`characterize_parallel`]); reports against an older
//!   generation are stale — some earlier wave already paid for the
//!   re-learn — and are ignored, which is how lagging workers self-correct
//!   without coordination.
//!
//! Determinism: workers never write shared deployment state and the
//! driver's writes are serialized between waves, so for a fixed seed and
//! worker count the merged journal is byte-identical run to run (the
//! same contract the engine pins for characterization).

use std::sync::Arc;

use liberate_dpi::profiles::EnvKind;
use liberate_dpi::rules::RuleSet;
use liberate_obs::{Counter, EventKind, Journal, Phase};
use liberate_substrate::Substrate;
use liberate_traces::recorded::RecordedTrace;

use crate::cache::SharedRuleCache;
use crate::characterize::{Characterization, CharacterizeOpts};
use crate::config::LiberateConfig;
use crate::deploy::{complete_pipeline, signal_from_detection, ActiveEvasion};
use crate::detect::{detect_rotating, read_billed_counter, was_classified};
use crate::engine::{characterize_parallel, SessionPool};
use crate::error::{LiberateError, Result};
use crate::evasion::Technique;
use crate::replay::{ReplayOpts, ReplayOutcome, Session};
use crate::schedule::Schedule;
use crate::sim::{OsKind, SimSubstrate};

/// The generation-stamped evasion state the pool publishes to its
/// workers. The technique rides in an `Arc`, so a snapshot hands workers
/// a complete, immutable view — there is no moment at which a reader can
/// see generation `g+1` paired with generation `g`'s technique.
#[derive(Debug, Clone, Default)]
pub struct PublishedTechnique {
    /// Monotonic publish count; 0 means nothing published yet.
    pub generation: u64,
    pub evasion: Option<Arc<ActiveEvasion>>,
}

/// The shared cell holding the current [`PublishedTechnique`]. Cloning
/// the handle shares the cell; [`PublishedState::snapshot`] is the only
/// read path and [`PublishedState::publish`] the only write path.
///
/// Reads go through a [`Seqlock`](crate::seqlock::Seqlock): N workers
/// snapshotting per flow never take a reader lock, and the driver's
/// between-wave publish lands in the idle slot without stalling them.
/// The seqlock's own generation word moves in lockstep with the
/// [`PublishedTechnique::generation`] stamp (one completed publish each),
/// so the two can never disagree.
#[derive(Debug, Clone, Default)]
pub struct PublishedState {
    inner: Arc<crate::seqlock::Seqlock<PublishedTechnique>>,
}

impl PublishedState {
    pub fn new() -> PublishedState {
        PublishedState::default()
    }

    /// The current generation and technique, as one consistent view.
    pub fn snapshot(&self) -> PublishedTechnique {
        PublishedTechnique::clone(&self.inner.read())
    }

    pub fn generation(&self) -> u64 {
        self.inner.read().generation
    }

    /// Atomically install `evasion` under the next generation; returns
    /// the new generation stamp.
    // lint: allow(generation-discipline: publish) the single sanctioned
    // writer: the bump happens inside the seqlock's serialized write
    // path, and every other reader goes through snapshot()/generation().
    pub fn publish(&self, evasion: Arc<ActiveEvasion>) -> u64 {
        // `update` serializes writers, so the bump-and-install is atomic
        // and the returned seqlock stamp equals the new generation.
        self.inner.update(move |state| {
            state.generation += 1;
            state.evasion = Some(evasion);
        })
    }
}

/// What one user's flow did in one deployment wave.
#[derive(Debug, Clone)]
pub struct PoolFlowReport {
    /// The user (job) index within the wave.
    pub user: usize,
    /// The pool worker whose session carried the flow.
    pub worker: usize,
    /// The published generation this flow read at its start.
    pub generation: u64,
    /// The technique that ultimately carried the flow (the published one,
    /// or the fallback that caught it), if any applied.
    pub technique: Option<Technique>,
    /// The flow escaped classification.
    pub evaded: bool,
    /// The fallback-ladder entry that caught the flow after the published
    /// technique burned.
    pub parked_on_fallback: Option<Technique>,
    /// The published technique failed against the live classifier — the
    /// pool's cue to re-characterize (once) after the wave.
    pub change_signal: bool,
    pub outcome: ReplayOutcome,
}

/// One completed call to [`DeploymentPool::run_flows`].
#[derive(Debug)]
pub struct DeployWave {
    /// Per-user reports, in user order.
    pub reports: Vec<PoolFlowReport>,
    /// Whether this wave's change signals triggered a re-characterization
    /// (at most one, regardless of how many workers reported the change).
    pub recharacterized: bool,
    /// The published generation after the wave (and any re-learn).
    pub generation: u64,
}

impl DeployWave {
    /// Every user's flow escaped classification (possibly via fallback).
    pub fn all_evaded(&self) -> bool {
        self.reports.iter().all(|r| r.evaded)
    }

    /// How many flows reported the published technique burned.
    pub fn change_signals(&self) -> usize {
        self.reports.iter().filter(|r| r.change_signal).count()
    }
}

/// The pool-backed deployment subsystem: live flows from many simulated
/// users fanned across [`SessionPool`] workers, one shared
/// [`SharedRuleCache`], one generation-stamped published technique.
pub struct DeploymentPool<S: Substrate = SimSubstrate> {
    pool: SessionPool<S>,
    copts: CharacterizeOpts,
    fallback: Vec<Technique>,
    published: PublishedState,
    cache: Option<(SharedRuleCache, String)>,
    /// Times the pipeline ran (1 = initial; more = classifier changed).
    pub characterizations: u64,
    /// Characterizations skipped thanks to the shared cache.
    pub cache_hits: u64,
}

impl DeploymentPool<SimSubstrate> {
    /// A pool of `workers` deployment sessions against a fresh
    /// environment of `kind`.
    pub fn new(
        kind: EnvKind,
        os: OsKind,
        config: LiberateConfig,
        workers: usize,
        copts: CharacterizeOpts,
    ) -> DeploymentPool {
        DeploymentPool::over(SessionPool::new(kind, os, config, workers), copts)
    }

    /// Script a classifier change: swap the rule set on every worker's
    /// DPI device (they model one middlebox, so all must agree). Flow
    /// state is kept, mirroring a real rule push.
    pub fn hot_swap_rules(&mut self, rules: &RuleSet) {
        for w in 0..self.pool.workers() {
            if let Some(dpi) = self.pool.session_mut(w).env.dpi_mut() {
                dpi.hot_swap_rules(rules.clone());
            }
        }
    }
}

impl<S: Substrate> DeploymentPool<S> {
    /// Wrap an existing session pool (e.g. one built from a shared
    /// blueprint).
    pub fn over(pool: SessionPool<S>, copts: CharacterizeOpts) -> DeploymentPool<S> {
        DeploymentPool {
            pool,
            copts,
            fallback: Vec::new(),
            published: PublishedState::new(),
            cache: None,
            characterizations: 0,
            cache_hits: 0,
        }
    }

    /// Techniques to degrade onto, in order, when the published technique
    /// burns mid-wave.
    pub fn with_fallback_ladder(mut self, ladder: Vec<Technique>) -> DeploymentPool<S> {
        self.fallback = ladder;
        self
    }

    /// Attach a live shared rule cache under the given network name.
    pub fn with_shared_cache(mut self, cache: SharedRuleCache, network: &str) -> DeploymentPool<S> {
        self.cache = Some((cache, network.to_string()));
        self
    }

    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The published-state cell (e.g. for concurrent-read tests or for
    /// wiring external monitors).
    pub fn published(&self) -> &PublishedState {
        &self.published
    }

    pub fn generation(&self) -> u64 {
        self.published.generation()
    }

    /// The currently published technique, if any.
    pub fn active_technique(&self) -> Option<Technique> {
        self.published
            .snapshot()
            .evasion
            .map(|e| e.technique.effective.clone())
    }

    /// Direct access to the underlying pool (tests script classifier
    /// changes through a worker's environment).
    pub fn pool_mut(&mut self) -> &mut SessionPool<S> {
        &mut self.pool
    }

    /// Fold every worker's journal into `journal` (ascending worker
    /// order, deterministic). Call once, after the pool's work is done.
    pub fn merge_journals_into(&self, journal: &Arc<Journal>) {
        self.pool.merge_journals_into(journal);
    }

    /// Drive one wave of live flows: `users` copies of `trace`, user `u`
    /// on worker `u % workers`. Publishes an initial technique first if
    /// none is live yet. After the wave, change signals against the
    /// current generation trigger exactly one re-characterization; the
    /// refreshed technique is published for the next wave.
    pub fn run_flows(&mut self, trace: &RecordedTrace, users: usize) -> Result<DeployWave> {
        if self.published.snapshot().evasion.is_none() {
            self.recharacterize(trace)?;
        }

        let workers = self.pool.workers();
        let published = self.published.clone();
        let fallback = self.fallback.clone();
        // run_wave sends job i to worker i % n, or everything to worker 0
        // when the pool (or wave) is too small to fan out.
        let worker_of = move |user: usize| {
            if workers == 1 || users <= 1 {
                0
            } else {
                user % workers
            }
        };
        let exec = |session: &mut Session<S>, user: usize| {
            run_one_flow(session, trace, user, worker_of(user), &published, &fallback)
        };
        let reports = self.pool.run_wave((0..users).collect(), &exec);

        // Between-wave housekeeping: the wave left one abandoned probe
        // flow per user in the shared table, and nothing ever looks them
        // up again — sweep whatever has gone idle in one batched pass
        // (one lock acquisition per shard) through worker 0, the only
        // actor while the pool is quiescent.
        self.pool.session_mut(0).env.reclaim_flows();

        // Exactly one re-characterization per acknowledged change: every
        // report in this wave read the same generation (the driver is the
        // only writer, and it only writes between waves), so one re-learn
        // covers all of them. A report stamped with an older generation
        // would mean some earlier wave already paid — ignore it and let
        // the worker pick up the newer technique next wave. Monotonic
        // `>=` rather than `==`: if the counter ever advances more than
        // once between a flow's snapshot and this check, an equality test
        // would silently drop the change signal.
        let current = self.published.generation();
        let needs_relearn = reports
            .iter()
            .any(|r| r.change_signal && r.generation >= current);
        let recharacterized = if needs_relearn {
            self.recharacterize(trace)?;
            true
        } else {
            false
        };

        Ok(DeployWave {
            reports,
            recharacterized,
            generation: self.published.generation(),
        })
    }

    /// Fresh shared rules for this trace, if the cache has them and they
    /// verify against the live classifier (worker 0 pays the per-field
    /// verification replays).
    fn shared_rules_for(&mut self, trace: &RecordedTrace) -> Option<Characterization> {
        let (cache, network) = self.cache.clone()?;
        let session = self.pool.session_mut(0);
        let journal = session.journal().clone();
        let t_us = session.env.clock().as_micros();
        let entry = cache.lookup_observed(&network, &trace.app, &journal, t_us)?;
        let signal = entry.signal.to_signal(session, trace);
        let fresh = cache.verify(&network, &trace.app, session, trace, &signal)?;
        if fresh {
            self.cache_hits += 1;
            Some(entry.to_characterization(trace))
        } else {
            None
        }
    }

    /// The single re-characterization wave: detection and the sequential
    /// phases (localization, evaluation) run on worker 0; the blinding
    /// search fans across the whole pool via [`characterize_parallel`].
    /// Ends by atomically publishing the refreshed technique under the
    /// next generation.
    fn recharacterize(&mut self, trace: &RecordedTrace) -> Result<()> {
        let copts = self.copts.clone();
        let rotate_base = copts.rotate_server_ports.then_some(copts.rotate_base);

        // Phase 1: detection, on worker 0.
        let detection = {
            let session = self.pool.session_mut(0);
            detect_rotating(session, trace, rotate_base.map(|b| b.wrapping_add(30_000)))
        };
        if !detection.differentiated {
            return Err(LiberateError::NoDifferentiation);
        }
        let throttle_ratio = self.pool.sessions()[0].config.throttle_ratio;
        let signal = signal_from_detection(&detection, throttle_ratio);

        // Phase 2: consult the shared cache, else the level-synchronous
        // blinding search across every worker.
        let characterization = match self.shared_rules_for(trace) {
            Some(c) => c,
            None => characterize_parallel(&mut self.pool, trace, &signal, &copts),
        };

        // Phases 3–4, on worker 0 — the same code path the sequential
        // proxy runs, so the adapted technique cannot diverge from it.
        let report = complete_pipeline(
            self.pool.session_mut(0),
            trace,
            &copts,
            detection,
            &signal,
            characterization,
        )?;

        // Publish what we learned for the next user on this network.
        if let Some((cache, network)) = self.cache.as_ref() {
            if let Some(c) = report.characterization.as_ref() {
                if c.rounds > 0 {
                    let learned_at = self.pool.sessions()[0].env.clock().as_micros() / 1_000_000;
                    cache.publish(
                        network,
                        &trace.app,
                        crate::cache::CachedRules::from_characterization_with_signal(
                            c,
                            learned_at,
                            crate::cache::CachedSignal::from_signal(&signal),
                        ),
                    );
                }
            }
        }

        let evasion = ActiveEvasion::from_report(&report, trace, &self.pool.sessions()[0])?;
        let description = evasion.technique.effective.description();
        let generation = self.published.publish(Arc::new(evasion));
        self.characterizations += 1;

        let session = self.pool.session_mut(0);
        let journal = session.journal().clone();
        journal.metrics.incr(Counter::RecharacterizeWaves);
        journal.record(
            session.env.clock().as_micros(),
            EventKind::TechniquePublished {
                generation,
                technique: description,
            },
        );
        Ok(())
    }
}

/// One user's flow on one worker session: apply the published technique,
/// watch for the change signal, degrade onto the fallback ladder if it
/// burns. Runs inside a `Phase::Deploy` span on the worker's journal.
fn run_one_flow<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    user: usize,
    worker: usize,
    published: &PublishedState,
    fallback: &[Technique],
) -> PoolFlowReport {
    let journal = session.journal().clone();
    journal.span_start(session.env.clock().as_micros(), Phase::Deploy);
    journal.metrics.incr(Counter::DeployFlows);
    let report = run_one_flow_inner(session, trace, user, worker, published, fallback, &journal);
    journal.span_end(session.env.clock().as_micros(), Phase::Deploy);
    report
}

fn run_one_flow_inner<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    user: usize,
    worker: usize,
    published: &PublishedState,
    fallback: &[Technique],
    journal: &Arc<Journal>,
) -> PoolFlowReport {
    let snapshot = published.snapshot();
    let generation = snapshot.generation;
    let Some(evasion) = snapshot.evasion else {
        // `run_flows` publishes before the first wave, so this only
        // happens when a caller drives flows against an empty cell: send
        // the traffic plain and report a change signal so the driver
        // learns a technique for the next wave.
        let outcome = session.replay_trace(trace, &ReplayOpts::default());
        return PoolFlowReport {
            user,
            worker,
            generation,
            technique: None,
            evaded: false,
            parked_on_fallback: None,
            change_signal: true,
            outcome,
        };
    };

    fn apply_and_judge<S: Substrate>(
        session: &mut Session<S>,
        trace: &RecordedTrace,
        evasion: &ActiveEvasion,
        technique: &Technique,
    ) -> Option<(ReplayOutcome, bool)> {
        let schedule = technique.apply(&Schedule::from_trace(trace), &evasion.ctx)?;
        let billed_before = read_billed_counter(session);
        let outcome = session.replay_schedule(trace, &schedule, &ReplayOpts::default());
        let classified = was_classified(session, &evasion.signal, &outcome, billed_before);
        Some((outcome, classified))
    }

    let main = evasion.technique.effective.clone();
    let (mut outcome, classified) = match apply_and_judge(session, trace, &evasion, &main) {
        Some(judged) => judged,
        // A published technique always applied once (evaluation proved
        // it); replay the trace plain if the trace shape changed under us.
        None => (session.replay_trace(trace, &ReplayOpts::default()), true),
    };

    if !classified {
        return PoolFlowReport {
            user,
            worker,
            generation,
            technique: Some(main.clone()),
            evaded: true,
            parked_on_fallback: None,
            change_signal: false,
            outcome,
        };
    }

    // The classifier caught the published technique: flag the change and
    // park this user's traffic on the first ladder rung that still works.
    let mut parked = None;
    for rung in fallback {
        let Some((out, still_classified)) = apply_and_judge(session, trace, &evasion, rung) else {
            continue;
        };
        outcome = out;
        if !still_classified {
            journal.metrics.incr(Counter::FallbackParks);
            journal.record(
                session.env.clock().as_micros(),
                EventKind::FallbackEngaged {
                    technique: rung.description(),
                },
            );
            parked = Some(rung.clone());
            break;
        }
    }

    PoolFlowReport {
        user,
        worker,
        generation,
        technique: parked.clone().or_else(|| Some(main.clone())),
        evaded: parked.is_some(),
        parked_on_fallback: parked,
        change_signal: true,
        outcome,
    }
}
