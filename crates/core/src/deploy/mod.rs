//! The full lib·erate pipeline and runtime deployment (§4.4, Fig. 3).
//!
//! [`run_pipeline`] chains the four phases — differentiation detection,
//! characterization, middlebox localization, evasion evaluation — and
//! returns the cheapest working technique. [`LiberateProxy`] is the
//! single-session deployment vehicle: it applies the chosen technique to
//! application flows at runtime and re-runs the pipeline when the
//! classifier changes (the adaptation loop of §4.2: "If differentiation
//! occurs even when using a previously successful evasion technique, then
//! lib·erate assumes that matching rules have changed, and repeats the
//! characterization and evasion steps"). [`pool::DeploymentPool`] is the
//! scaled variant: many users' flows fanned across a
//! [`crate::engine::SessionPool`], sharing one adaptation loop through a
//! generation-stamped published technique.

pub mod pool;

pub use pool::{DeployWave, DeploymentPool, PoolFlowReport, PublishedState, PublishedTechnique};

use std::time::Duration;

use liberate_obs::Phase;
use liberate_substrate::Substrate;
use liberate_traces::recorded::RecordedTrace;

use crate::characterize::{characterize, Characterization, CharacterizeOpts};
use crate::detect::{
    detect_rotating, read_billed_counter, was_classified, DetectionOutcome, Signal,
};
use crate::error::{LiberateError, Result};
use crate::evaluate::{find_working_technique, EvaluationInputs, TechniqueResult};
use crate::evasion::EvasionContext;
use crate::probe::{decoy_request, Localization};
use crate::replay::{ReplayOpts, ReplayOutcome, Session};
use crate::schedule::Schedule;
use crate::sim::SimSubstrate;

/// The billed-counter baseline for judging one deployed flow.
/// [`Signal::ZeroRating`] is the only signal whose judgment compares
/// against it; every other signal skips the read entirely. Skipping
/// matters beyond cost: the read draws jitter from the session RNG, and
/// deployed flows must stay RNG-free so the reactor engine can interleave
/// them in any completion order without perturbing the stream the
/// characterizer's probes consume.
pub(crate) fn billed_baseline<S: Substrate>(session: &mut Session<S>, signal: &Signal) -> i64 {
    if matches!(signal, Signal::ZeroRating) {
        read_billed_counter(session)
    } else {
        0
    }
}

/// Everything the pipeline produced, with cost accounting.
#[derive(Debug)]
pub struct PipelineReport {
    pub detection: DetectionOutcome,
    pub characterization: Option<Characterization>,
    pub localization: Option<Localization>,
    /// The cheapest working technique found, if any.
    pub chosen: Option<TechniqueResult>,
    /// Evaluation replays spent before success.
    pub evaluation_tries: u64,
    /// Total replay rounds across all phases.
    pub total_rounds: u64,
    /// Total client bytes consumed by testing.
    pub total_bytes: u64,
    /// Simulated time consumed by testing.
    pub elapsed: Duration,
}

/// Pick the default detection signal for an environment's differentiation
/// style, from what detection observed.
pub fn signal_from_detection(d: &DetectionOutcome, config_ratio: f64) -> Signal {
    if d.blocking {
        Signal::Blocking
    } else if d.zero_rating {
        Signal::ZeroRating
    } else {
        Signal::Throttling {
            control_bps: d.control.avg_bps,
            ratio: config_ratio,
        }
    }
}

/// Run the whole pipeline against one application trace.
pub fn run_pipeline<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    copts: &CharacterizeOpts,
) -> Result<PipelineReport> {
    run_pipeline_with_rules(session, trace, copts, None)
}

/// [`run_pipeline`] with pre-learned rules (e.g. from a shared
/// [`crate::cache::RuleCache`], §4.2): the expensive characterization
/// phase is skipped.
pub fn run_pipeline_with_rules<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    copts: &CharacterizeOpts,
    pre_learned: Option<Characterization>,
) -> Result<PipelineReport> {
    let rounds0 = session.replays;
    let bytes0 = session.bytes_sent_total + session.bytes_received_total;
    let t0 = session.env.clock();

    // Phase 1: detection.
    let rotate_base = copts.rotate_server_ports.then_some(copts.rotate_base);
    let detection = detect_rotating(session, trace, rotate_base.map(|b| b.wrapping_add(30_000)));
    if !detection.differentiated {
        return Err(LiberateError::NoDifferentiation);
    }
    let signal = signal_from_detection(&detection, session.config.throttle_ratio);

    // Phase 2: characterization (skipped when shared rules are supplied).
    let characterization = match pre_learned {
        Some(c) => c,
        None => characterize(session, trace, &signal, copts),
    };

    let mut report =
        complete_pipeline(session, trace, copts, detection, &signal, characterization)?;
    report.total_rounds = session.replays - rounds0;
    report.total_bytes = session.bytes_sent_total + session.bytes_received_total - bytes0;
    report.elapsed = session.env.clock() - t0;
    Ok(report)
}

/// Phases 3–4 of the pipeline — localization and evaluation — given an
/// already-run detection and characterization. The single-session
/// [`run_pipeline_with_rules`] and the pool's re-characterization wave
/// (which runs phase 2 via [`crate::engine::characterize_parallel`]) both
/// funnel through here, so the adaptation logic cannot drift between the
/// two deployment vehicles. Cost fields of the returned report are zero;
/// callers account their own phase-1/2 spend.
pub(crate) fn complete_pipeline<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    copts: &CharacterizeOpts,
    detection: DetectionOutcome,
    signal: &Signal,
    characterization: Characterization,
) -> Result<PipelineReport> {
    if characterization.fields.is_empty() {
        return Err(LiberateError::NoMatchingFields);
    }
    let rotate_base = copts.rotate_server_ports.then_some(copts.rotate_base);

    // Phase 3: localization (via a TTL-limited inert probe carrying the
    // first matching field's packet).
    let matching_packet = trace
        .client_messages()
        .nth(
            characterization
                .client_field_regions(trace)
                .first()
                .map(|r| r.packet)
                .unwrap_or(0),
        )
        .map(|m| m.payload.clone())
        .ok_or_else(|| LiberateError::BadTrace("no client payload".into()))?;
    let carrier = liberate_traces::generator::generate(&liberate_traces::generator::WorkloadSpec {
        server_bytes: 400_000,
        ..Default::default()
    });
    let localization = crate::probe::locate_middlebox_rotating(
        session,
        &carrier,
        &matching_packet,
        signal,
        rotate_base.map(|b| b.wrapping_add(31_000)),
    );

    // Phase 4: evaluation.
    let ctx = EvasionContext {
        matching_fields: characterization.client_field_regions(trace),
        decoy: decoy_request(),
        middlebox_ttl: localization
            .middlebox_ttl
            .unwrap_or(session.env.hops_before_middlebox() + 1),
    };
    let inputs = EvaluationInputs {
        signal: signal.clone(),
        ctx,
        rotate_server_ports: copts.rotate_server_ports,
    };
    let found = find_working_technique(session, trace, &characterization.position, &inputs);
    let (chosen, tries) = match found {
        Some((r, tries)) => (Some(r), tries),
        None => (None, 0),
    };

    Ok(PipelineReport {
        detection,
        characterization: Some(characterization),
        localization: Some(localization),
        chosen,
        evaluation_tries: tries,
        total_rounds: 0,
        total_bytes: 0,
        elapsed: Duration::ZERO,
    })
}

/// The evasion state one deployment vehicle holds for one application:
/// the technique to apply, the context it needs, and the signal that
/// detects when it stops working. Shared by [`LiberateProxy`] (one per
/// proxy) and [`pool::DeploymentPool`] (one, generation-stamped, behind
/// [`pool::PublishedState`]).
#[derive(Debug, Clone)]
pub struct ActiveEvasion {
    pub technique: TechniqueResult,
    pub ctx: EvasionContext,
    pub signal: Signal,
}

impl ActiveEvasion {
    /// Assemble deployable state from a finished pipeline report, exactly
    /// as the proxy's adaptation loop does. Errors when the pipeline
    /// found no working technique.
    pub fn from_report<S: Substrate>(
        report: &PipelineReport,
        trace: &RecordedTrace,
        session: &Session<S>,
    ) -> Result<ActiveEvasion> {
        let chosen = report
            .chosen
            .clone()
            .ok_or(LiberateError::NoWorkingTechnique)?;
        let ctx = EvasionContext {
            matching_fields: report
                .characterization
                .as_ref()
                .map(|c| c.client_field_regions(trace))
                .unwrap_or_default(),
            decoy: decoy_request(),
            middlebox_ttl: report
                .localization
                .as_ref()
                .and_then(|l| l.middlebox_ttl)
                .unwrap_or(session.env.hops_before_middlebox() + 1),
        };
        let signal = signal_from_detection(&report.detection, session.config.throttle_ratio);
        Ok(ActiveEvasion {
            technique: chosen,
            ctx,
            signal,
        })
    }
}

/// Per-flow report from the deployment proxy.
#[derive(Debug)]
pub struct FlowReport {
    pub outcome: ReplayOutcome,
    /// Whether an evasion technique was applied to this flow.
    pub evaded: bool,
    /// Whether this flow triggered a (re-)characterization.
    pub recharacterized: bool,
}

/// The transparent-proxy deployment (Fig. 3, step 3): applications hand
/// their flows to the proxy; the proxy transparently transforms them with
/// the cheapest known-working technique, re-learning when the classifier
/// changes.
pub struct LiberateProxy<S: Substrate = SimSubstrate> {
    pub session: Session<S>,
    copts: CharacterizeOpts,
    cached: Option<ActiveEvasion>,
    /// Times the pipeline ran (1 = initial; more = classifier changed).
    pub characterizations: u64,
    /// Shared characterization store (§4.2) and the network name keying
    /// it. Held as a [`SharedRuleCache`] handle, so several proxies (or a
    /// whole [`pool::DeploymentPool`]) can ride one live store.
    rule_cache: Option<(crate::cache::SharedRuleCache, String)>,
    /// Characterizations skipped thanks to the shared cache.
    pub cache_hits: u64,
}

impl<S: Substrate> LiberateProxy<S> {
    pub fn new(session: Session<S>, copts: CharacterizeOpts) -> LiberateProxy<S> {
        LiberateProxy {
            session,
            copts,
            cached: None,
            characterizations: 0,
            rule_cache: None,
            cache_hits: 0,
        }
    }

    /// Attach an owned rule cache under the given network name. Fresh
    /// entries let this proxy skip its own characterization after a
    /// per-field verification replay (§4.2).
    pub fn with_cache(self, cache: crate::cache::RuleCache, network: &str) -> LiberateProxy<S> {
        self.with_shared_cache(crate::cache::SharedRuleCache::from_cache(cache), network)
    }

    /// Attach a live shared cache handle: publishes from this proxy are
    /// visible to every other holder of the handle immediately, and vice
    /// versa.
    pub fn with_shared_cache(
        mut self,
        cache: crate::cache::SharedRuleCache,
        network: &str,
    ) -> LiberateProxy<S> {
        self.rule_cache = Some((cache, network.to_string()));
        self
    }

    /// Take a snapshot of the (possibly updated) shared cache back for
    /// redistribution, detaching this proxy from it.
    pub fn take_cache(&mut self) -> Option<crate::cache::RuleCache> {
        self.rule_cache.take().map(|(c, _)| c.snapshot())
    }

    /// Whether the proxy currently holds a working technique.
    pub fn active_technique(&self) -> Option<&TechniqueResult> {
        self.cached.as_ref().map(|c| &c.technique)
    }

    /// Fresh shared rules for this flow, if the cache has them and they
    /// verify against the live classifier (per-field blinding replays
    /// using the signal the contributor recorded).
    fn shared_rules_for(&mut self, trace: &RecordedTrace) -> Option<Characterization> {
        let journal = self.session.env.journal().clone();
        let t_us = self.session.env.clock().as_micros();
        let (cache, network) = self.rule_cache.as_ref()?;
        let (cache, network) = (cache.clone(), network.clone());
        let entry = cache.lookup_observed(&network, &trace.app, &journal, t_us)?;
        let signal = entry.signal.to_signal(&mut self.session, trace);
        let fresh = cache.verify(&network, &trace.app, &mut self.session, trace, &signal)?;
        if fresh {
            self.cache_hits += 1;
            Some(entry.to_characterization(trace))
        } else {
            None
        }
    }

    /// Send one application flow, evading as needed.
    pub fn run_flow(&mut self, trace: &RecordedTrace) -> Result<FlowReport> {
        let journal = self.session.env.journal().clone();
        journal.span_start(self.session.env.clock().as_micros(), Phase::Deploy);
        let out = self.run_flow_inner(trace);
        journal.span_end(self.session.env.clock().as_micros(), Phase::Deploy);
        out
    }

    fn run_flow_inner(&mut self, trace: &RecordedTrace) -> Result<FlowReport> {
        // Fast path: apply the cached technique.
        if let Some(cached) = &self.cached {
            let schedule = cached
                .technique
                .effective
                .apply(&Schedule::from_trace(trace), &cached.ctx)
                .ok_or(LiberateError::NoWorkingTechnique)?;
            let billed_before = billed_baseline(&mut self.session, &cached.signal);
            let outcome = self
                .session
                .replay_schedule(trace, &schedule, &ReplayOpts::default());
            let still_classified =
                was_classified(&mut self.session, &cached.signal, &outcome, billed_before);
            if !still_classified {
                return Ok(FlowReport {
                    outcome,
                    evaded: true,
                    recharacterized: false,
                });
            }
            // The classifier caught us: rules changed. Re-learn.
            self.cached = None;
        }

        // Consult the shared cache before paying for characterization:
        // detection must still run (it also yields the signal), but a
        // fresh cache entry replaces the ~70-round blinding search with a
        // per-field verification.
        let pre_learned = self.shared_rules_for(trace);
        let copts = self.copts.clone();
        let report = run_pipeline_with_rules(&mut self.session, trace, &copts, pre_learned)?;
        self.characterizations += 1;
        // Publish what we learned for the next user.
        if let Some((cache, network)) = self.rule_cache.as_ref() {
            if let Some(c) = report.characterization.as_ref() {
                if c.rounds > 0 {
                    let signal = crate::cache::CachedSignal::from_signal(&signal_from_detection(
                        &report.detection,
                        self.session.config.throttle_ratio,
                    ));
                    cache.publish(
                        network,
                        &trace.app,
                        crate::cache::CachedRules::from_characterization_with_signal(
                            c,
                            self.session.env.clock().as_micros() / 1_000_000,
                            signal,
                        ),
                    );
                }
            }
        }
        let evasion = ActiveEvasion::from_report(&report, trace, &self.session)?;

        // Run the flow for real with the chosen technique.
        let schedule = evasion
            .technique
            .effective
            .apply(&Schedule::from_trace(trace), &evasion.ctx)
            .ok_or(LiberateError::NoWorkingTechnique)?;
        let outcome = self
            .session
            .replay_schedule(trace, &schedule, &ReplayOpts::default());
        self.cached = Some(evasion);
        Ok(FlowReport {
            outcome,
            evaded: true,
            recharacterized: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LiberateConfig;
    use crate::sim::OsKind;
    use liberate_dpi::profiles::EnvKind;
    use liberate_traces::apps;

    fn session(kind: EnvKind) -> Session {
        Session::new(kind, OsKind::Linux, LiberateConfig::default())
    }

    #[test]
    fn pipeline_end_to_end_against_gfc() {
        let mut s = session(EnvKind::Gfc);
        let trace = apps::economist_http();
        let copts = CharacterizeOpts {
            rotate_server_ports: true,
            ..Default::default()
        };
        let report = run_pipeline(&mut s, &trace, &copts).expect("pipeline succeeds");
        assert!(report.detection.blocking);
        let c = report.characterization.as_ref().unwrap();
        assert!(!c.fields.is_empty());
        assert_eq!(
            report.localization.as_ref().unwrap().middlebox_ttl,
            Some(10)
        );
        let chosen = report.chosen.expect("GFC is evadable");
        assert_eq!(chosen.cc, Some(true));
        assert!(report.total_rounds > 0);
        assert!(report.total_bytes > 0);
    }

    #[test]
    fn pipeline_refuses_undifferentiated_traffic() {
        let mut s = session(EnvKind::Sprint);
        let err = run_pipeline(
            &mut s,
            &apps::amazon_prime_http(300_000),
            &CharacterizeOpts::default(),
        )
        .unwrap_err();
        assert_eq!(err, LiberateError::NoDifferentiation);
    }

    #[test]
    fn proxy_reuses_cached_technique() {
        let s = session(EnvKind::Iran);
        let mut proxy = LiberateProxy::new(s, CharacterizeOpts::default());
        let trace = apps::facebook_http();

        let first = proxy.run_flow(&trace).expect("first flow learns");
        assert!(first.recharacterized);
        assert!(!first.outcome.blocked());
        assert_eq!(proxy.characterizations, 1);

        let second = proxy.run_flow(&trace).expect("second flow reuses");
        assert!(!second.recharacterized);
        assert!(!second.outcome.blocked());
        assert_eq!(proxy.characterizations, 1, "no re-learning needed");
    }

    #[test]
    fn proxy_adapts_when_rules_change() {
        let s = session(EnvKind::Testbed);
        let mut proxy = LiberateProxy::new(s, CharacterizeOpts::default());
        // Large enough that the testbed's 1.5 Mbps video throttle is
        // visible past its token-bucket burst.
        let trace = apps::amazon_prime_http(1_200_000);

        let first = proxy.run_flow(&trace).expect("learns initial technique");
        assert!(first.recharacterized);
        assert_eq!(proxy.characterizations, 1);
        let initial = proxy.active_technique().unwrap().effective.clone();
        assert_eq!(
            initial.category(),
            crate::evasion::Category::InertInsertion,
            "match-and-forget classifiers get inert insertion first (§5.2)"
        );

        // Countermeasure (§4.3 "Evasion countermeasures"): the operator
        // blacklists lib·erate's decoy class — the innocuous "web" class
        // now receives the video throttle, so decoy-based inert insertion
        // stops helping.
        {
            let dpi = proxy.session.env.dpi_mut().unwrap();
            dpi.config.policies.insert(
                "web".to_string(),
                liberate_dpi::actions::Policy::throttle(1_500_000, 420_000),
            );
            dpi.reset();
        }

        let adapted = proxy.run_flow(&trace).expect("re-learns");
        assert!(adapted.recharacterized, "should notice the rule change");
        assert_eq!(proxy.characterizations, 2);
        let new = proxy.active_technique().unwrap().effective.clone();
        assert_ne!(
            new, initial,
            "the burned technique must be replaced by a different one"
        );
        assert!(!adapted.outcome.blocked());

        // And the replacement keeps working on subsequent flows without
        // further re-learning.
        let third = proxy.run_flow(&trace).expect("cached replacement works");
        assert!(!third.recharacterized);
        assert_eq!(proxy.characterizations, 2);
    }
}

#[cfg(test)]
mod cache_integration_tests {
    use super::*;
    use crate::cache::RuleCache;
    use crate::config::LiberateConfig;
    use crate::sim::OsKind;
    use liberate_dpi::profiles::EnvKind;
    use liberate_traces::apps;

    #[test]
    fn second_proxy_user_rides_the_shared_cache() {
        let trace = apps::facebook_http();
        let copts = CharacterizeOpts::default();

        // User A learns the rules the hard way and publishes.
        let mut a = LiberateProxy::new(
            Session::new(EnvKind::Iran, OsKind::Linux, LiberateConfig::default()),
            copts.clone(),
        )
        .with_cache(RuleCache::new(), "iran");
        a.run_flow(&trace).expect("user A evades");
        assert_eq!(a.cache_hits, 0);
        let rounds_a = a.session.replays;
        let cache = a.take_cache().expect("cache present");
        assert_eq!(cache.len(), 1);

        // User B attaches the distributed cache: the blinding search is
        // replaced by a per-field verification.
        let mut b = LiberateProxy::new(
            Session::new(EnvKind::Iran, OsKind::Linux, LiberateConfig::default()),
            copts,
        )
        .with_cache(cache, "iran");
        let flow = b.run_flow(&trace).expect("user B evades via the cache");
        assert!(!flow.outcome.blocked());
        assert_eq!(b.cache_hits, 1);
        let rounds_b = b.session.replays;
        assert!(
            rounds_b * 2 < rounds_a,
            "cache user spends far fewer rounds: {rounds_b} vs {rounds_a}"
        );
    }
}
