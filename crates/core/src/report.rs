//! Result rendering: the marks used by the paper's tables and a small
//! fixed-width table builder for the experiment binaries.

use crate::evaluate::Reach;

/// Table 3's check mark.
pub const CHECK: &str = "Y";
/// Table 3's cross.
pub const CROSS: &str = ".";
/// Table 3's em-dash ("not applicable / not classified").
pub const DASH: &str = "-";
/// Table 3's overlined check ("arrived, but transformed").
pub const CHECK_TRANSFORMED: &str = "Y~";

/// Render a CC? cell.
pub fn mark_cc(cc: Option<bool>) -> &'static str {
    match cc {
        Some(true) => CHECK,
        Some(false) => CROSS,
        None => DASH,
    }
}

/// Render an RS? cell.
pub fn mark_reach(r: Reach) -> &'static str {
    match r {
        Reach::Yes => CHECK,
        Reach::No => CROSS,
        Reach::Transformed => CHECK_TRANSFORMED,
    }
}

/// Render a boolean with check/cross.
pub fn mark_bool(b: bool) -> &'static str {
    if b {
        CHECK
    } else {
        CROSS
    }
}

/// A minimal fixed-width text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    pub fn new(header: &[&str]) -> TextTable {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Render with column alignment and a separator under the header.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut out = String::new();
            for i in 0..cols {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let pad = widths[i].saturating_sub(cell.chars().count());
                out.push_str(cell);
                out.extend(std::iter::repeat(' ').take(pad));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.extend(std::iter::repeat('-').take(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format bits/second in human units (matches the paper's "1.5 Mbps").
pub fn fmt_bps(bps: f64) -> String {
    if bps >= 1e6 {
        format!("{:.2} Mbps", bps / 1e6)
    } else if bps >= 1e3 {
        format!("{:.1} kbps", bps / 1e3)
    } else {
        format!("{bps:.0} bps")
    }
}

/// Format a byte count in human units.
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1_000_000 {
        format!("{:.1} MB", bytes as f64 / 1e6)
    } else if bytes >= 1_000 {
        format!("{:.1} KB", bytes as f64 / 1e3)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks() {
        assert_eq!(mark_cc(Some(true)), "Y");
        assert_eq!(mark_cc(Some(false)), ".");
        assert_eq!(mark_cc(None), "-");
        assert_eq!(mark_reach(Reach::Transformed), "Y~");
        assert_eq!(mark_bool(true), "Y");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["Technique", "CC?", "RS?"]);
        t.row(vec!["Lower TTL".into(), "Y".into(), ".".into()]);
        t.row(vec![
            "Wrong Checksum (a longer one)".into(),
            ".".into(),
            "Y~".into(),
        ]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Technique"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "CC?" column starts at the same offset everywhere.
        let col = lines[0].find("CC?").unwrap();
        assert_eq!(&lines[2][col..col + 1], "Y");
    }

    #[test]
    fn humanized_units() {
        assert_eq!(fmt_bps(1_480_000.0), "1.48 Mbps");
        assert_eq!(fmt_bps(11_200_000.0), "11.20 Mbps");
        assert_eq!(fmt_bps(300.0), "300 bps");
        assert_eq!(fmt_bytes(18_000_000), "18.0 MB");
        assert_eq!(fmt_bytes(300_000), "300.0 KB");
        assert_eq!(fmt_bytes(42), "42 B");
    }
}

/// A minimal JSON value for publishing experiment datasets (the paper
/// ships "public, open-source tools and datasets"). Hand-rolled to keep
/// the dependency set to the sanctioned crates.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    pub fn n(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Serialize with deterministic field order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod json_tests {
    use super::Json;

    #[test]
    fn renders_all_value_kinds() {
        let v = Json::Obj(vec![
            ("name".into(), Json::s("lib\u{b7}erate")),
            ("rounds".into(), Json::n(86.0)),
            ("rate".into(), Json::n(1.48)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "cells".into(),
                Json::Arr(vec![Json::s("Y"), Json::s("."), Json::s("-")]),
            ),
        ]);
        assert_eq!(
            v.render(),
            "{\"name\":\"lib\u{b7}erate\",\"rounds\":86,\"rate\":1.48,\
             \"ok\":true,\"none\":null,\"cells\":[\"Y\",\".\",\"-\"]}"
        );
    }

    #[test]
    fn escapes_strings() {
        assert_eq!(Json::s("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::s("\u{01}").render(), "\"\\u0001\"");
    }
}
