//! Error types for the lib·erate library.

use std::fmt;

/// Errors surfaced by lib·erate's phases.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LiberateError {
    /// The replay could not complete a TCP handshake (e.g. the path
    /// black-holed the SYN or a penalty RST killed it).
    HandshakeFailed,
    /// No differentiation was detected, so later phases have nothing to
    /// characterize or evade.
    NoDifferentiation,
    /// Characterization could not isolate any matching field.
    NoMatchingFields,
    /// No evasion technique in the taxonomy worked.
    NoWorkingTechnique,
    /// The trace is empty or malformed for the requested operation.
    BadTrace(String),
}

impl fmt::Display for LiberateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiberateError::HandshakeFailed => write!(f, "TCP handshake failed"),
            LiberateError::NoDifferentiation => write!(f, "no differentiation detected"),
            LiberateError::NoMatchingFields => write!(f, "no matching fields found"),
            LiberateError::NoWorkingTechnique => write!(f, "no evasion technique succeeded"),
            LiberateError::BadTrace(s) => write!(f, "bad trace: {s}"),
        }
    }
}

impl std::error::Error for LiberateError {}

pub type Result<T> = std::result::Result<T, LiberateError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            LiberateError::HandshakeFailed.to_string(),
            "TCP handshake failed"
        );
        assert!(LiberateError::BadTrace("empty".into())
            .to_string()
            .contains("empty"));
    }
}
