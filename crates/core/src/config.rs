//! Tunables for lib·erate's phases, with the defaults the paper reports
//! using (§5).

use std::time::Duration;

/// Configuration shared by detection, characterization, and evaluation.
#[derive(Debug, Clone)]
pub struct LiberateConfig {
    /// Maximum packets to prepend before concluding the classifier
    /// inspects every packet ("we use a tunable maximum threshold of
    /// packets (based on our observations, 10)", §5.1).
    pub max_prepend_packets: usize,
    /// Maximum segments to split a matching packet into ("we currently
    /// use a conservative threshold of n = 10", §5.2).
    pub max_split_segments: usize,
    /// Fragments per packet when testing IP fragmentation ("currently
    /// m = 2", §5.2).
    pub fragment_pieces: usize,
    /// Idle gap inserted between replay rounds (testbed rounds take ~5 s,
    /// §6.1).
    pub round_gap: Duration,
    /// Flush-delay ladder probed by the pause-based techniques ("delays
    /// ranging from 10 to 240 seconds", §6.5).
    pub pause_ladder: Vec<Duration>,
    /// Pause inserted after an inert RST to let a shortened result
    /// timeout expire (the testbed drops to 10 s after a RST, §6.1).
    pub rst_flush_pause: Duration,
    /// Throughput ratio below which a replay counts as throttled relative
    /// to its control.
    pub throttle_ratio: f64,
    /// Minimum bytes per replay for a reliable zero-rating counter read
    /// ("at least 200KB of data for each replay eliminates the risk of
    /// false inference", §6.2).
    pub min_zero_rating_bytes: u64,
    /// Maximum TTL probed during middlebox localization.
    pub max_probe_ttl: u8,
    /// Deterministic seed for random payload generation.
    pub seed: u64,
}

impl Default for LiberateConfig {
    fn default() -> Self {
        LiberateConfig {
            max_prepend_packets: 10,
            max_split_segments: 10,
            fragment_pieces: 2,
            round_gap: Duration::from_secs(5),
            pause_ladder: vec![
                Duration::from_secs(10),
                Duration::from_secs(30),
                Duration::from_secs(60),
                Duration::from_secs(130),
                Duration::from_secs(240),
            ],
            rst_flush_pause: Duration::from_secs(11),
            throttle_ratio: 0.6,
            min_zero_rating_bytes: 200_000,
            max_probe_ttl: 20,
            seed: 0x11be_7a7e,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = LiberateConfig::default();
        assert_eq!(c.max_prepend_packets, 10);
        assert_eq!(c.max_split_segments, 10);
        assert_eq!(c.fragment_pieces, 2);
        assert_eq!(*c.pause_ladder.last().unwrap(), Duration::from_secs(240));
        assert_eq!(c.min_zero_rating_bytes, 200_000);
    }
}
