//! Differentiation detection (§4.1, §5.1).
//!
//! lib·erate replays the recorded trace twice — once verbatim and once
//! with every payload bit *inverted* — and compares what the network did
//! to each. Inversion (rather than randomization) is deterministic and
//! guarantees no classification keyword survives in the control, avoiding
//! the accidental matches the paper saw with random payloads.

use liberate_obs::Phase;
use liberate_packet::flow::FlowKey;
use liberate_packet::mutate::invert_bits;
use liberate_substrate::Substrate;
use liberate_traces::recorded::RecordedTrace;

use crate::replay::{ReplayOpts, ReplayOutcome, Session};

/// The observable used to decide "was this replay classified?". Picked per
/// environment, exactly as the paper's case studies do.
#[derive(Debug, Clone)]
pub enum Signal {
    /// Direct middlebox readout — testbed only (§6.1: "the middlebox
    /// shows the result of classification immediately"). Classes whose
    /// policy is a no-op do not count as differentiation.
    Readout,
    /// Blocking: RSTs, a block page, or a dead handshake (GFC §6.5,
    /// Iran §6.6).
    Blocking,
    /// Downlink throughput under `ratio` × the unclassified control's
    /// (AT&T §6.3).
    Throttling { control_bps: f64, ratio: f64 },
    /// The account's billed-data counter advanced far less than the bytes
    /// transferred (T-Mobile zero-rating, §6.2). Reads are noisy; replays
    /// should move at least [`crate::config::LiberateConfig::min_zero_rating_bytes`].
    ZeroRating,
}

/// A deterministic jitter model for the carrier's data-usage counter: the
/// paper found reads may be "slightly out of date, or include data from
/// background traffic", making sub-200 KB replays unreliable.
pub fn counter_jitter<S: Substrate>(session: &mut Session<S>) -> i64 {
    use rand::Rng;
    session.rng.gen_range(-50_000..50_000)
}

/// Read the subscriber's billed-byte counter (with jitter).
pub fn read_billed_counter<S: Substrate>(session: &mut Session<S>) -> i64 {
    let exact = session
        .env
        .billed_bytes()
        .unwrap_or(session.bytes_sent_total);
    exact as i64 + counter_jitter(session)
}

/// Decide whether a finished replay was classified, per `signal`.
pub fn was_classified<S: Substrate>(
    session: &mut Session<S>,
    signal: &Signal,
    outcome: &ReplayOutcome,
    billed_before: i64,
) -> bool {
    match signal {
        Signal::Blocking => outcome.blocked(),
        Signal::Throttling { control_bps, ratio } => {
            outcome.avg_bps > 0.0 && outcome.avg_bps < control_bps * ratio
        }
        Signal::ZeroRating => {
            let billed_after = read_billed_counter(session);
            let delta = (billed_after - billed_before).max(0) as u64;
            let moved = outcome.bytes_sent + outcome.server_payload_bytes;
            // Zero-rated when well under half the moved bytes were billed
            // (the jitter band makes smaller margins unreliable).
            delta + 100_000 < moved
        }
        Signal::Readout => {
            // Protocol filled per-variant inside `classified_with_policy`.
            let key = FlowKey::new(
                outcome.client_addr,
                liberate_dpi::profiles::SERVER_ADDR,
                outcome.client_port,
                outcome.server_port,
                6,
            );
            classified_with_policy(session, key, outcome)
        }
    }
}

fn classified_with_policy<S: Substrate>(
    session: &mut Session<S>,
    key: FlowKey,
    outcome: &ReplayOutcome,
) -> bool {
    // Try both TCP and UDP keys; only classes with effective policies
    // count.
    for proto in [6u8, 17u8] {
        let k = FlowKey {
            protocol: proto,
            ..key
        };
        if session
            .env
            .verdict_for(k)
            .map(|v| v.effective)
            .unwrap_or(false)
        {
            return true;
        }
    }
    let _ = outcome;
    false
}

/// A probe = one replay + one classification judgment. The work-horse of
/// detection, characterization, localization, and evasion evaluation.
pub fn probe<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    opts: &ReplayOpts,
    signal: &Signal,
) -> (ReplayOutcome, bool) {
    let billed_before = read_billed_counter(session);
    let outcome = session.replay_trace(trace, opts);
    let classified = was_classified(session, signal, &outcome, billed_before);
    let gap = session.config.round_gap;
    session.rest(gap);
    (outcome, classified)
}

/// A trace with every payload bit inverted — the detection control.
pub fn inverted_trace(trace: &RecordedTrace) -> RecordedTrace {
    let mut t = trace.clone();
    t.app = format!("{}-inverted", t.app);
    for msg in &mut t.messages {
        invert_bits(&mut msg.payload);
    }
    t
}

/// The detection verdict.
#[derive(Debug, Clone)]
pub struct DetectionOutcome {
    /// Differentiation exists and is content-based (the inverted control
    /// escaped it).
    pub differentiated: bool,
    /// The control was differentiated too: whatever policy exists is not
    /// content-based (out of scope per §3.1).
    pub content_independent: bool,
    pub blocking: bool,
    pub throttling: bool,
    pub zero_rating: bool,
    /// Classified packets carry substantially more latency (§4.1).
    pub latency_difference: bool,
    /// The server's bytes arrived altered while the control's did not
    /// (§4.1 content modification).
    pub content_modification: bool,
    pub original: ReplayOutcome,
    pub control: ReplayOutcome,
}

/// Phase 1: detect DPI-based differentiation by comparing the original
/// replay against its bit-inverted control (Fig. 1, left).
pub fn detect<S: Substrate>(session: &mut Session<S>, trace: &RecordedTrace) -> DetectionOutcome {
    detect_rotating(session, trace, None)
}

/// [`detect`] with per-replay server-port rotation — needed against
/// classifiers with residual server:port penalties like the GFC (§6.5),
/// where the original replay's own blocking would otherwise poison the
/// control.
pub fn detect_rotating<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    rotate_base: Option<u16>,
) -> DetectionOutcome {
    let journal = session.env.journal().clone();
    journal.span_start(session.env.clock().as_micros(), Phase::Detect);

    let port_for = |session: &Session<S>, i: u16| {
        rotate_base.map(|b| {
            b.wrapping_add(i)
                .wrapping_add((session.replays % 100) as u16)
        })
    };

    let opts = ReplayOpts {
        server_port: port_for(session, 0),
        ..Default::default()
    };
    let billed_before = read_billed_counter(session);
    let original = session.replay_trace(trace, &opts);
    let billed_mid = read_billed_counter(session);
    session.rest(session.config.round_gap);

    let control_trace = inverted_trace(trace);
    let control_opts = ReplayOpts {
        server_port: port_for(session, 1),
        ..Default::default()
    };
    let control = session.replay_trace(&control_trace, &control_opts);
    let billed_after = read_billed_counter(session);
    session.rest(session.config.round_gap);

    let orig_billed = (billed_mid - billed_before).max(0) as u64;
    let ctrl_billed = (billed_after - billed_mid).max(0) as u64;
    let ratio = session.config.throttle_ratio;
    let min_bytes = session.config.min_zero_rating_bytes;

    journal.span_end(session.env.clock().as_micros(), Phase::Detect);
    verdict(
        original,
        control,
        orig_billed,
        ctrl_billed,
        ratio,
        min_bytes,
    )
}

/// Judge the original-vs-control pair — the shared back half of
/// [`detect_rotating`] and [`detect_parallel`]. `orig_billed`/`ctrl_billed`
/// are the billed-counter deltas attributed to each replay.
fn verdict(
    original: ReplayOutcome,
    control: ReplayOutcome,
    orig_billed: u64,
    ctrl_billed: u64,
    throttle_ratio: f64,
    min_zero_rating_bytes: u64,
) -> DetectionOutcome {
    // Blocking comparison.
    let blocking = original.blocked() && !control.blocked();
    let content_independent_block = original.blocked() && control.blocked();

    // Throughput comparison (only meaningful when both transferred data).
    let throttling = original.avg_bps > 0.0
        && control.avg_bps > 0.0
        && original.avg_bps < control.avg_bps * throttle_ratio;

    // Zero-rating comparison: billed delta per replay.
    let orig_moved = original.bytes_sent + original.server_payload_bytes;
    let ctrl_moved = control.bytes_sent + control.server_payload_bytes;
    let big_enough = orig_moved >= min_zero_rating_bytes;
    let zero_rating = big_enough
        && orig_billed + 100_000 < orig_moved
        && ctrl_billed + 100_000 >= ctrl_moved.saturating_sub(100_000);

    // Latency comparison: classified flows carrying 3x the control's
    // request-to-response latency plus a 50 ms floor.
    let latency_difference = match (original.request_to_response, control.request_to_response) {
        (Some(o), Some(c)) => o > c * 3 + std::time::Duration::from_millis(50),
        _ => false,
    };

    // Content modification: the original's payload arrived altered while
    // the control's did not.
    let content_modification =
        !original.response_matches && control.response_matches && original.complete;

    DetectionOutcome {
        differentiated: blocking
            || throttling
            || zero_rating
            || latency_difference
            || content_modification,
        content_independent: content_independent_block,
        blocking,
        throttling,
        zero_rating,
        latency_difference,
        content_modification,
        original,
        control,
    }
}

/// [`detect_rotating`] with the original and control replays fanned out
/// as one two-job wave on a [`SessionPool`]: each replay runs on its own
/// worker (own network, own billed counter, shared sharded flow table),
/// so the pair costs one round gap of simulated time instead of two. On
/// a single-worker pool the jobs run back-to-back, degenerating to the
/// sequential behavior.
pub fn detect_parallel<S: Substrate>(
    pool: &mut crate::engine::SessionPool<S>,
    trace: &RecordedTrace,
    rotate_base: Option<u16>,
) -> DetectionOutcome {
    let control_trace = inverted_trace(trace);
    let jobs: Vec<(u16, &RecordedTrace)> = vec![(0, trace), (1, &control_trace)];
    let exec = |session: &mut Session<S>, (slot, t): (u16, &RecordedTrace)| {
        let journal = session.journal().clone();
        journal.span_start(session.env.clock().as_micros(), Phase::Detect);
        let opts = ReplayOpts {
            server_port: rotate_base.map(|b| {
                b.wrapping_add(slot)
                    .wrapping_add((session.replays % 100) as u16)
            }),
            ..Default::default()
        };
        let billed_before = read_billed_counter(session);
        let outcome = session.replay_trace(t, &opts);
        let billed_after = read_billed_counter(session);
        let gap = session.config.round_gap;
        session.rest(gap);
        journal.span_end(session.env.clock().as_micros(), Phase::Detect);
        (outcome, (billed_after - billed_before).max(0) as u64)
    };
    let mut results = pool.run_wave(jobs, &exec);
    // lint: allow(no-panic) contract: run_wave returns one result per job
    let (control, ctrl_billed) = results.pop().expect("two jobs in");
    let (original, orig_billed) = results.pop().expect("two jobs in");
    let (ratio, min_bytes) = {
        let config = &pool.session_mut(0).config;
        (config.throttle_ratio, config.min_zero_rating_bytes)
    };
    verdict(
        original,
        control,
        orig_billed,
        ctrl_billed,
        ratio,
        min_bytes,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LiberateConfig;
    use crate::sim::OsKind;
    use liberate_dpi::profiles::EnvKind;
    use liberate_traces::apps;

    fn session(kind: EnvKind) -> Session {
        Session::new(kind, OsKind::Linux, LiberateConfig::default())
    }

    #[test]
    fn gfc_blocking_detected_as_content_based() {
        let mut s = session(EnvKind::Gfc);
        let d = detect(&mut s, &apps::economist_http());
        assert!(d.differentiated);
        assert!(d.blocking);
        assert!(!d.content_independent);
        assert!(!d.control.blocked(), "inverted control must pass");
    }

    #[test]
    fn iran_blocking_detected() {
        let mut s = session(EnvKind::Iran);
        let d = detect(&mut s, &apps::facebook_http());
        assert!(d.differentiated && d.blocking);
    }

    #[test]
    fn tmus_zero_rating_detected() {
        let mut s = session(EnvKind::TMobile);
        let d = detect(&mut s, &apps::amazon_prime_http(400_000));
        assert!(d.zero_rating, "{d:?}");
        assert!(d.differentiated);
    }

    #[test]
    fn att_throttling_detected() {
        let mut s = session(EnvKind::Att);
        let d = detect(&mut s, &apps::nbcsports_http(600_000));
        assert!(
            d.throttling,
            "orig {} ctrl {}",
            d.original.avg_bps, d.control.avg_bps
        );
        assert!(d.differentiated);
    }

    #[test]
    fn sprint_shows_no_differentiation() {
        let mut s = session(EnvKind::Sprint);
        let d = detect(&mut s, &apps::amazon_prime_http(400_000));
        assert!(!d.differentiated, "{d:?}");
        assert!(!d.content_independent);
    }

    #[test]
    fn control_traces_carry_no_keywords() {
        let t = apps::economist_http();
        let inv = inverted_trace(&t);
        let stream = inv.client_stream();
        assert!(liberate_traces::http::find(&stream, b"economist").is_none());
        // Inversion is an involution.
        let back = inverted_trace(&inv);
        assert_eq!(back.messages[0].payload, t.messages[0].payload);
    }

    #[test]
    fn latency_differentiation_detected() {
        // An operator that deprioritizes video by 400 ms per packet.
        let mut s = session(EnvKind::Testbed);
        {
            let dpi = s.env.dpi_mut().unwrap();
            dpi.config.policies.insert(
                "video".into(),
                liberate_dpi::actions::Policy::delaying(std::time::Duration::from_millis(400)),
            );
        }
        let d = detect(&mut s, &apps::amazon_prime_http(40_000));
        assert!(
            d.latency_difference,
            "{:?} vs {:?}",
            d.original.request_to_response, d.control.request_to_response
        );
        assert!(d.differentiated);
        assert!(!d.blocking && !d.zero_rating);
    }

    #[test]
    fn content_modification_detected() {
        // An operator that rewrites quality markers inside responses.
        let mut s = session(EnvKind::Testbed);
        {
            let dpi = s.env.dpi_mut().unwrap();
            dpi.config.policies.insert(
                "video".into(),
                liberate_dpi::actions::Policy::rewriting(&b"video/mp4"[..], &b"video/lo4"[..]),
            );
        }
        let d = detect(&mut s, &apps::amazon_prime_http(40_000));
        assert!(d.content_modification, "{d:?}");
        assert!(d.differentiated);
        assert!(d.control.response_matches);
    }

    #[test]
    fn parallel_detect_matches_sequential_verdict_in_gfc() {
        let mut s = session(EnvKind::Gfc);
        let seq = detect(&mut s, &apps::economist_http());

        let mut pool = crate::engine::SessionPool::new(
            EnvKind::Gfc,
            OsKind::Linux,
            LiberateConfig::default(),
            2,
        );
        let par = detect_parallel(&mut pool, &apps::economist_http(), None);
        assert_eq!(par.differentiated, seq.differentiated);
        assert_eq!(par.blocking, seq.blocking);
        assert!(!par.content_independent);
        assert!(!par.control.blocked(), "inverted control must pass");
    }

    #[test]
    fn probe_readout_in_testbed() {
        let mut s = session(EnvKind::Testbed);
        let (out, classified) = probe(
            &mut s,
            &apps::amazon_prime_http(50_000),
            &ReplayOpts::default(),
            &Signal::Readout,
        );
        assert!(out.handshake_ok);
        assert!(classified, "video should classify in the testbed");

        let (_, ctrl) = probe(
            &mut s,
            &inverted_trace(&apps::amazon_prime_http(50_000)),
            &ReplayOpts::default(),
            &Signal::Readout,
        );
        assert!(!ctrl);
    }
}
