//! Bilateral evasion (§7 "Detection and bidirectional lib·erate"): when
//! *both* endpoints run lib·erate, the matching fields themselves can be
//! re-encoded in flight — "payload-modification strategies that are not
//! publicly known by the differentiating ISP a priori".
//!
//! The model here is the simplest such strategy: XOR the characterized
//! matching fields (in both directions) with a shared key the endpoints
//! agreed on out of band. Unlike every unilateral technique in Table 3,
//! this defeats even a TCP-terminating transparent proxy: the proxy
//! faithfully reassembles and forwards a stream whose matching fields
//! simply are not there.

use liberate_substrate::Substrate;
use liberate_traces::recorded::RecordedTrace;

use crate::characterize::MatchingField;
use crate::detect::{read_billed_counter, was_classified, Signal};
use crate::replay::{ReplayOpts, ReplayOutcome, Session};

/// A shared-key field-encoding agreement between the two endpoints.
#[derive(Debug, Clone)]
pub struct BilateralCodec {
    /// XOR key applied to every matching-field byte.
    pub key: u8,
    /// The fields to re-encode (from characterization), in both
    /// directions.
    pub fields: Vec<MatchingField>,
}

impl BilateralCodec {
    pub fn new(key: u8, fields: Vec<MatchingField>) -> BilateralCodec {
        BilateralCodec { key, fields }
    }

    /// Encode a trace: the cooperating endpoints exchange these bytes on
    /// the wire and decode on arrival. (The key must not be zero — that
    /// would leave the fields in the clear.)
    pub fn encode(&self, trace: &RecordedTrace) -> RecordedTrace {
        assert_ne!(self.key, 0, "a zero key leaves matching fields exposed");
        let mut out = trace.clone();
        out.app = format!("{}-bilateral", out.app);
        for f in &self.fields {
            if let Some(msg) = out.messages.get_mut(f.message) {
                let end = f.range.end.min(msg.payload.len());
                for b in &mut msg.payload[f.range.start.min(end)..end] {
                    *b ^= self.key;
                }
            }
        }
        out
    }

    /// Decoding is the same XOR (an involution).
    pub fn decode(&self, trace: &RecordedTrace) -> RecordedTrace {
        let mut t = self.encode(trace);
        t.app = trace.app.clone();
        t
    }
}

/// Outcome of a bilateral run.
#[derive(Debug)]
pub struct BilateralReport {
    pub outcome: ReplayOutcome,
    /// The classifier still caught the encoded flow.
    pub classified: bool,
}

/// Run a flow under a bilateral codec: the replay server cooperates by
/// speaking the encoded protocol (it *is* the other lib·erate endpoint).
pub fn run_bilateral<S: Substrate>(
    session: &mut Session<S>,
    trace: &RecordedTrace,
    codec: &BilateralCodec,
    signal: &Signal,
    opts: &ReplayOpts,
) -> BilateralReport {
    let encoded = codec.encode(trace);
    let billed_before = read_billed_counter(session);
    let outcome = session.replay_trace(&encoded, opts);
    let classified = was_classified(session, signal, &outcome, billed_before);
    let gap = session.config.round_gap;
    session.rest(gap);
    BilateralReport {
        outcome,
        classified,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{characterize, CharacterizeOpts};
    use crate::config::LiberateConfig;
    use crate::sim::OsKind;
    use liberate_dpi::profiles::EnvKind;
    use liberate_traces::apps;

    fn learn_fields(
        kind: EnvKind,
        trace: &RecordedTrace,
        signal: &Signal,
        rotate: bool,
    ) -> Vec<MatchingField> {
        let mut s = Session::new(kind, OsKind::Linux, LiberateConfig::default());
        let c = characterize(
            &mut s,
            trace,
            signal,
            &CharacterizeOpts {
                rotate_server_ports: rotate,
                ..Default::default()
            },
        );
        c.fields
    }

    #[test]
    fn codec_is_an_involution_and_hides_keywords() {
        let trace = apps::economist_http();
        let fields = vec![MatchingField {
            message: 0,
            sender: liberate_traces::recorded::Sender::Client,
            range: {
                let p = liberate_traces::http::find(&trace.messages[0].payload, b"economist.com")
                    .unwrap();
                p..p + 13
            },
            bytes: b"economist.com".to_vec(),
        }];
        let codec = BilateralCodec::new(0x5a, fields);
        let enc = codec.encode(&trace);
        assert!(liberate_traces::http::find(&enc.client_stream(), b"economist.com").is_none());
        let dec = codec.decode(&enc);
        assert_eq!(dec.messages, trace.messages);
    }

    #[test]
    fn bilateral_beats_the_att_proxy() {
        // Every unilateral technique fails against AT&T (Table 3); the
        // bilateral codec wins because the proxy forwards a stream whose
        // matching fields are encoded away.
        let trace = apps::nbcsports_http(600_000);

        // Control throughput for the throttling signal.
        let mut s = Session::new(EnvKind::Att, OsKind::Linux, LiberateConfig::default());
        let control = s.replay_trace(
            &crate::detect::inverted_trace(&trace),
            &ReplayOpts::default(),
        );
        let signal = Signal::Throttling {
            control_bps: control.avg_bps,
            ratio: 0.6,
        };

        // Characterization finds client AND server direction fields.
        let fields = learn_fields(EnvKind::Att, &trace, &signal, false);
        assert!(
            fields
                .iter()
                .any(|f| f.sender == liberate_traces::recorded::Sender::Server),
            "server-direction fields found: {fields:?}"
        );

        // Sanity: the plain flow is throttled.
        let billed0 = read_billed_counter(&mut s);
        let plain = s.replay_trace(&trace, &ReplayOpts::default());
        assert!(was_classified(&mut s, &signal, &plain, billed0));

        // Bilateral: full speed.
        let codec = BilateralCodec::new(0xa7, fields);
        let report = run_bilateral(&mut s, &trace, &codec, &signal, &ReplayOpts::default());
        assert!(report.outcome.complete);
        assert!(!report.classified, "{:?}", report.outcome.avg_bps);
        assert!(report.outcome.avg_bps > 2.0 * plain.avg_bps);
    }

    #[test]
    fn bilateral_beats_the_gfc() {
        let trace = apps::economist_http();
        let fields = learn_fields(EnvKind::Gfc, &trace, &Signal::Blocking, true);
        let mut s = Session::new(EnvKind::Gfc, OsKind::Linux, LiberateConfig::default());
        let codec = BilateralCodec::new(0x33, fields);
        let report = run_bilateral(
            &mut s,
            &trace,
            &codec,
            &Signal::Blocking,
            &ReplayOpts::default(),
        );
        assert!(!report.classified);
        assert!(!report.outcome.blocked());
        assert!(report.outcome.complete);
    }

    #[test]
    #[should_panic(expected = "zero key")]
    fn zero_key_rejected() {
        BilateralCodec::new(0, Vec::new()).encode(&apps::control_http());
    }
}
