//! Resumable per-flow work units for the event-driven replay reactor.
//!
//! A [`FlowTask`] is a poll-style state machine over a worker
//! [`Session`]: each `poll` runs one *quiesced segment* — it may inject
//! packets, drain the substrate to idle, and read observations, but it
//! must leave the backend with an empty event heap and an empty client
//! inbox before yielding. That discipline is what lets the reactor
//! interleave thousands of tasks on one worker by swapping per-flow
//! [`liberate_substrate::LaneState`]s around each poll: a quiescent
//! backend carries no cross-task state outside the lane.
//!
//! Yields are declarative: [`Wake::Timer`] asks the driver to advance the
//! task's (virtual) clock before the next poll — the sequential driver
//! calls `env.advance(d)` inline, the reactor parks the task on its
//! timer wheel — and [`Wake::Ready`] asks to be re-polled as soon as the
//! scheduler gets back around, which is how long replays stay fair.

use std::time::Duration;

use liberate_substrate::Substrate;

use crate::replay::Session;

/// Why a task yielded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Advance this task's clock by the given delta, then poll again.
    /// The backend is idle at the yield, so the advance is pure clock
    /// movement wherever it executes.
    Timer(Duration),
    /// Poll again at the scheduler's next opportunity.
    Ready,
}

/// The result of one [`FlowTask::poll`].
#[derive(Debug)]
pub enum TaskPoll<R> {
    /// The task yielded; resume per the [`Wake`].
    Pending(Wake),
    /// The task finished with its output.
    Done(R),
}

/// A resumable flow driven by the reactor (or inline by a sequential
/// driver). `Send` so whole waves of tasks can move to pool worker
/// threads.
pub trait FlowTask<S: Substrate>: Send {
    type Output: Send;

    /// Run one quiesced segment. Must not block the OS thread (no
    /// `std::thread::sleep`, no lock waits on shared state): simulated
    /// waiting is expressed as [`Wake::Timer`] yields.
    fn poll(&mut self, session: &mut Session<S>) -> TaskPoll<Self::Output>;

    /// Replays this task has started so far (lane-local numbering). The
    /// reactor chains these into the canonical replay numbering when it
    /// splices lane journals back into the worker journal.
    fn replays_done(&self) -> u64;

    /// Tasks whose observable behavior depends on session- or
    /// environment-global mutable state (billed counters, shared link
    /// shapers, RNG draws mid-task) return `true` and the reactor runs
    /// them to completion in admission order instead of interleaving.
    fn atomic(&self) -> bool {
        false
    }
}
